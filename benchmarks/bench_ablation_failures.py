"""Ablation — task failures and failure-aware estimation (future work).

The paper's conclusion announces failure-probability estimation as future
work.  This benchmark realizes it: the Section V-B workload is rerun with
task attempts failing (and retrying) with probability ``p``, comparing

* plain RUSH, whose Gaussian DE never hears about failures, against
* failure-aware RUSH, whose DE wraps the Gaussian one in a
  :class:`~repro.estimation.failure.FailureAwareEstimator` that learns
  the failure rate online and inflates demand by the expected
  re-execution work.

Shape: with ``p = 0``, the wrapper is harmless (weak prior); as ``p``
grows, the failure-aware variant's utility should not fall below plain
RUSH's, since its demand model matches the flaky world.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FailureAwareEstimator, GaussianEstimator, RushScheduler, run_simulation
from repro.analysis import format_table
from repro.workload import WorkloadConfig, WorkloadGenerator

from _shared import FULL_SCALE, write_report

FAILURE_PROBS = (0.0, 0.1, 0.25)
SEEDS = (0, 1, 2) if not FULL_SCALE else (0,)


def failure_aware_factory(prior_runtime):
    return FailureAwareEstimator(
        GaussianEstimator(prior_mean=prior_runtime, min_samples=2))


def run_variant(failure_prob: float, aware: bool, seed: int):
    config = WorkloadConfig(
        n_jobs=25 if not FULL_SCALE else 100,
        capacity=8 if not FULL_SCALE else 48,
        mean_interarrival=170.0 if not FULL_SCALE else 130.0,
        budget_ratio=1.5,
        size_gb_range=(0.5, 2.0) if not FULL_SCALE else (1.0, 10.0),
        time_scale=0.25 if not FULL_SCALE else 1.0,
        failure_prob=failure_prob)
    specs = WorkloadGenerator(config, seed=seed).generate()
    scheduler = (RushScheduler(estimator_factory=failure_aware_factory)
                 if aware else RushScheduler())
    return run_simulation(specs, config.capacity, scheduler, seed=seed)


def compute_grid():
    grid = {}
    for p in FAILURE_PROBS:
        for aware in (False, True):
            utilities, failures = [], 0
            for seed in SEEDS:
                result = run_variant(p, aware, seed)
                utilities.extend(result.utilities())
                failures += result.task_failures
            grid[(p, aware)] = (float(np.sum(utilities)),
                                float(np.mean(np.asarray(utilities) <= 1e-9)),
                                failures)
    return grid


def test_failure_aware_estimation(benchmark):
    grid = benchmark.pedantic(compute_grid, rounds=1, iterations=1)

    rows = []
    for p in FAILURE_PROBS:
        plain = grid[(p, False)]
        aware = grid[(p, True)]
        rows.append([p, plain[2], plain[0], aware[0], plain[1], aware[1]])
    table = format_table(
        ["failure prob", "#failures", "plain total U", "aware total U",
         "plain zero-frac", "aware zero-frac"], rows)
    report = ("Ablation: task failures and failure-aware demand estimation "
              f"(seeds={list(SEEDS)})\n\n{table}")
    print("\n" + report)
    write_report("ablation_failures.txt", report)

    # Failures actually happen when p > 0 ...
    assert grid[(0.0, False)][2] == 0
    assert grid[(0.25, False)][2] > 0
    # ... degrade utility ...
    assert grid[(0.25, False)][0] < grid[(0.0, False)][0]
    # ... and the failure-aware DE does not hurt in the flaky worlds.
    for p in (0.1, 0.25):
        assert grid[(p, True)][0] >= 0.9 * grid[(p, False)][0]
