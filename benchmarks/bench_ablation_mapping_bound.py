"""Ablation — Theorem 3's completion bound of the time-slot mapping.

Theorem 3: under the staircase condition (12), the continuous time-slot
mapping completes every job by ``T_i + R_i``.  This benchmark generates
random *feasible* target sets, maps them, and reports the worst observed
overshoot as a fraction of ``R_i`` — it must stay below 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.mapping import MappingJob, map_time_slots

from _shared import FULL_SCALE, write_report

TRIALS = 500 if FULL_SCALE else 150


def feasible_instance(rng: np.random.Generator):
    capacity = int(rng.integers(1, 8))
    n_jobs = int(rng.integers(1, 10))
    jobs = []
    budget_used = 0.0
    clock = 0
    for i in range(n_jobs):
        runtime = float(rng.uniform(0.5, 6.0))
        tasks = int(rng.integers(1, 12))
        demand = tasks * runtime
        # grow the target until the staircase condition holds
        budget_used += demand
        clock = max(clock + int(rng.integers(0, 8)),
                    int(np.ceil(budget_used / capacity)))
        jobs.append(MappingJob(f"j{i}", demand, runtime, clock))
    return capacity, jobs


def worst_overshoot(trials: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    worst = 0.0
    overflows = 0
    for _ in range(trials):
        capacity, jobs = feasible_instance(rng)
        plan = map_time_slots(jobs, capacity)
        overflows += len(plan.overflowed)
        for job in jobs:
            overshoot = (plan.completion(job.job_id)
                         - job.target_completion) / job.runtime
            worst = max(worst, overshoot)
    return worst, overflows


def test_theorem3_bound_holds(benchmark):
    worst, overflows = benchmark.pedantic(
        worst_overshoot, args=(TRIALS,), rounds=1, iterations=1)

    report_table = format_table(
        ["trials", "worst overshoot / R", "forced overflows"],
        [[TRIALS, worst, overflows]], digits=4)
    report = ("Ablation: empirical Theorem 3 bound — completion overshoot "
              f"beyond T_i, in units of R_i\n\n{report_table}\n\n"
              "Theorem 3 guarantees < 1.0 whenever condition (12) holds.")
    print("\n" + report)
    write_report("ablation_mapping_bound.txt", report)

    assert overflows == 0, "feasible instances must never force-overflow"
    assert worst < 1.0 + 1e-9, f"Theorem 3 violated: overshoot {worst} R"
