"""Frozen pre-optimization planner hot path, for benchmark baselines.

This module is a verbatim concatenation of ``src/repro/core/wcde.py``,
``src/repro/core/onion.py`` and ``src/repro/core/planner.py`` as of the
seed commit (c42c515), before the incremental planning engine landed.
``bench_planner_incremental.py`` measures the live planner against this
copy so that speedups are reported against the true pre-PR cold path
rather than against the already-optimized shared modules.

Do not edit: any behaviour fix belongs in ``src/repro/core`` — this file
exists only so the benchmark baseline cannot silently absorb later
optimizations.  Only the cross-file imports were rewritten to keep the
module self-contained (the local ``solve_wcde``/``solve_onion`` replace
the package ones); no logic changed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.core.mapping import ContainerPlan, MappingJob, map_time_slots
from repro.core.rem import rem_min_kl_from_cdf, solve_rem
from repro.estimation.base import DemandEstimate
from repro.estimation.pmf import Pmf
from repro.utility.base import UtilityFunction
from repro.utility.constant import ConstantUtility
from repro.utility.linear import LinearUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.utility.step import StepUtility

__all__ = ["LegacyRushPlanner"]

@dataclass(frozen=True)
class WcdeResult:
    """Outcome of a WCDE solve.

    Attributes
    ----------
    eta_bin:
        The robust demand quantile in *bins*.  Multiply by the estimator's
        bin width to obtain ``eta_i`` in container-time-slots.
    reference_quantile:
        ``Phi^{-1}(theta)`` of the reference — the non-robust answer, and
        the bisection's lower anchor.  ``eta_bin >= reference_quantile``
        always: the reference itself lies inside every KL ball.
    worst_pmf:
        The adversary's boundary distribution: the REM minimizer at
        ``eta_bin - 1``, whose CDF there equals ``theta`` exactly in the
        binding case.  Any infinitesimally stronger perturbation would push
        the quantile to ``eta_bin``, which is why ``eta_bin`` slots must be
        reserved.
    worst_kl:
        Its divergence from the reference.
    iterations:
        Number of bisection steps taken.
    """

    eta_bin: int
    reference_quantile: int
    worst_pmf: Pmf
    worst_kl: float
    iterations: int


def solve_wcde(reference: Pmf, theta: float, delta: float) -> WcdeResult:
    """Solve the WCDE problem by bisection (Algorithm 2).

    Parameters
    ----------
    reference:
        Quantized reference distribution ``phi_i`` reported by the DE unit.
    theta:
        Required completion probability, in ``[0, 1]``.
    delta:
        Entropy threshold ``delta_i >= 0``; larger values concede more
        ground to the adversary and yield more conservative schedules.
    """
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta={theta} outside [0, 1]")
    if delta < 0.0 or math.isnan(delta):
        raise ConfigurationError(f"delta={delta} must be >= 0")

    anchor = reference.quantile(theta)
    ceiling = reference.support_max()

    # Exact semantics: the adversary's quantile exceeds a bin L iff it can
    # push CDF(L) strictly below theta, which costs (arbitrarily close to)
    # the REM value g(L) whenever the reference keeps some mass above L.
    # Hence eta = 1 + max{ L < support_max : g(L) <= delta }, clamped to
    # at least the reference quantile.  Two boundary regimes short-circuit:
    # theta = 1 demands covering the whole support, and delta = 0 leaves
    # the adversary no room at all (strict improvement has positive cost).
    if theta >= 1.0:
        eta = ceiling
        iterations = 0
    # rushlint: disable=RL003 (exact zero sentinel, mirroring the same
    # suppressed comparison in the live WCDE: 1 - theta is exactly 0.0
    # only when theta is exactly 1.0, already short-circuited above)
    elif delta == 0.0 or anchor >= ceiling:
        eta = anchor
        iterations = 0
    else:
        cdf = reference.cdf()

        def feasible(level: int) -> bool:
            return rem_min_kl_from_cdf(float(cdf[level]), theta) <= delta + 1e-12

        low = anchor - 1      # CDF(anchor - 1) < theta, so g = 0: feasible
        high = ceiling        # g(support_max) = inf: infeasible
        iterations = 0
        while high - low > 1:
            mid = (low + high) // 2
            iterations += 1
            if feasible(mid):
                low = mid
            else:
                high = mid
        eta = max(low + 1, anchor)

    boundary = max(eta - 1, 0)
    sol = solve_rem(reference, boundary, theta)
    worst = sol.pmf if sol.pmf is not None else reference
    return WcdeResult(eta_bin=eta, reference_quantile=anchor,
                      worst_pmf=worst, worst_kl=sol.kl, iterations=iterations)


def worst_case_demand(reference: Pmf, theta: float, delta: float) -> int:
    """Convenience wrapper returning only the robust demand bin."""
    return solve_wcde(reference, theta, delta).eta_bin


@dataclass(frozen=True)
class OnionJob:
    """One job as seen by the TAS layer.

    Attributes
    ----------
    job_id:
        Opaque identifier, unique within one solve.
    demand:
        Robust remaining demand ``eta_i`` in container-time-slots.
    utility:
        The job's utility function of *total* completion-time.
    elapsed:
        Slots already spent since submission (0 for a fresh job).  The
        deadline from now for level ``L`` is ``U^{-1}(L) - elapsed``.
    compensation:
        Theorem 3 slack, normally the average container runtime ``R_i``;
        subtracted from every deadline so the continuous mapping's
        ``T_i + R_i`` bound still meets the original deadline.
    """

    job_id: str
    demand: float
    utility: UtilityFunction
    elapsed: float = 0.0
    compensation: float = 0.0

    def __post_init__(self) -> None:
        if self.demand < 0 or not math.isfinite(self.demand):
            raise ConfigurationError(
                f"job {self.job_id!r}: demand must be finite and >= 0, got {self.demand}")
        if self.elapsed < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: elapsed must be >= 0, got {self.elapsed}")
        if self.compensation < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: compensation must be >= 0, got {self.compensation}")


@dataclass(frozen=True)
class JobTarget:
    """The peeled decision for one job.

    ``target_completion`` counts slots from now; the job is expected to be
    done by then under the robust demand.  ``utility_value`` is the utility
    the planner expects at that completion (using total time
    ``elapsed + target_completion``).  ``achievable`` is false for jobs
    whose expected utility is (numerically) zero — the "red rows" of the
    paper's management interface.
    """

    job_id: str
    target_completion: int
    utility_value: float
    layer: int
    achievable: bool


@dataclass(frozen=True)
class OnionResult:
    """Solution of one lexicographic max-min solve."""

    targets: Dict[str, JobTarget]
    layers: int
    feasibility_checks: int
    horizon: int

    def utility_vector(self) -> List[float]:
        """Achieved utilities sorted non-decreasingly (the lex-max-min vector)."""
        return sorted(t.utility_value for t in self.targets.values())


def default_horizon(jobs: Sequence[OnionJob], capacity: int) -> int:
    """A horizon long enough that the bottom utility layer is feasible.

    ``ceil(total_demand / capacity)`` slots suffice to fit all demand, with
    one extra slot of slack for the integer rounding of deadlines.
    """
    total = sum(job.demand for job in jobs)
    return max(1, int(math.ceil(total / max(capacity, 1))) + 1)


class _DeadlineBank:
    """Vectorized ``U_i^{-1}(L)`` across a fixed set of jobs.

    Groups jobs of the built-in utility classes into parameter arrays so a
    level query costs a handful of numpy expressions rather than one
    Python call per job.  Unknown classes are handled by a scalar loop.
    """

    def __init__(self, jobs: Sequence[OnionJob], horizon: int) -> None:
        self._n = len(jobs)
        self._horizon = horizon
        offsets = np.array([job.elapsed + job.compensation for job in jobs])
        self._offsets = offsets
        lin_idx, sig_idx, flat_idx, step_idx, other_idx = [], [], [], [], []
        for i, job in enumerate(jobs):
            u = job.utility
            if isinstance(u, LinearUtility):
                lin_idx.append(i)
            elif isinstance(u, SigmoidUtility):
                sig_idx.append(i)
            elif isinstance(u, ConstantUtility):
                flat_idx.append(i)
            elif isinstance(u, StepUtility):
                step_idx.append(i)
            else:
                other_idx.append(i)
        self._lin = np.array(lin_idx, dtype=int)
        self._sig = np.array(sig_idx, dtype=int)
        self._flat = np.array(flat_idx, dtype=int)
        self._step = np.array(step_idx, dtype=int)
        self._other = other_idx
        self._other_utils = [jobs[i].utility for i in other_idx]

        def params(idx: Sequence[int], attr: str) -> np.ndarray:
            return np.array([getattr(jobs[i].utility, attr) for i in idx], dtype=float)

        self._lin_b = params(lin_idx, "budget")
        self._lin_w = params(lin_idx, "priority")
        self._lin_beta = params(lin_idx, "beta")
        self._sig_b = params(sig_idx, "budget")
        self._sig_w = params(sig_idx, "priority")
        self._sig_beta = params(sig_idx, "beta")
        with np.errstate(over="ignore"):
            self._sig_max = self._sig_w / (1.0 + np.exp(-self._sig_beta * self._sig_b))
        self._flat_w = params(flat_idx, "priority")
        self._step_b = params(step_idx, "budget")
        self._step_w = params(step_idx, "priority")

    def raw_deadlines(self, level: float) -> np.ndarray:
        """``U_i^{-1}(level)`` for every job, before elapsed/compensation."""
        d = np.empty(self._n, dtype=float)
        if self._lin.size:
            vals = np.where(
                level <= 0.0, np.inf,
                np.where(level > self._lin_beta * self._lin_b + self._lin_w + 1e-15,
                         -np.inf,
                         self._lin_b + (self._lin_w - level) / self._lin_beta))
            d[self._lin] = vals
        if self._sig.size:
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.clip(self._sig_w / max(level, 1e-300) - 1.0, 1e-300, None)
                formula = self._sig_b + np.log(ratio) / self._sig_beta
            vals = np.where(level <= 0.0, np.inf,
                            np.where(level > self._sig_max + 1e-15, -np.inf, formula))
            d[self._sig] = vals
        if self._flat.size:
            d[self._flat] = np.where(level <= self._flat_w + 1e-15, np.inf, -np.inf)
        if self._step.size:
            d[self._step] = np.where(
                level <= 0.0, np.inf,
                np.where(level > self._step_w + 1e-15, -np.inf, self._step_b))
        for pos, util in zip(self._other, self._other_utils):
            d[pos] = util.deadline_for(level)
        return d

    def deadlines(self, level: float) -> np.ndarray:
        """Integer slot deadlines from now, capped at the horizon.

        Entries are ``-inf`` when the level is unreachable for the job.
        """
        d = self.raw_deadlines(level) - self._offsets
        d = np.minimum(d, self._horizon)
        finite = np.isfinite(d)
        d[finite] = np.floor(d[finite] + 1e-9)
        return d


class _PeeledLedger:
    """Demand committed to already-peeled jobs, by target completion-time.

    Exposes the peeled ``(T_j, eta_j)`` pairs sorted by time so the
    feasibility test can fold them into the staircase.  Note that the
    capacity condition must be verified at *every* deadline — peeled ones
    included: a peeled job finishing just after an active job's deadline
    still competes for the same early slots.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._demands: List[float] = []
        self._sorted_times = np.empty(0)
        self._sorted_demands = np.empty(0)
        self._cum = np.empty(0)

    def commit(self, completion: float, demand: float) -> None:
        self._times.append(completion)
        self._demands.append(demand)
        order = np.argsort(self._times, kind="stable")
        self._sorted_times = np.asarray(self._times, dtype=float)[order]
        self._sorted_demands = np.asarray(self._demands, dtype=float)[order]
        self._cum = np.cumsum(self._sorted_demands)

    @property
    def times(self) -> np.ndarray:
        return self._sorted_times

    @property
    def demands(self) -> np.ndarray:
        return self._sorted_demands

    def committed_by(self, times: np.ndarray) -> np.ndarray:
        """``G(t)`` for an array of query times (vectorized)."""
        if self._sorted_times.size == 0:
            return np.zeros(times.shape)
        idx = np.searchsorted(self._sorted_times, times, side="right")
        out = np.zeros(times.shape)
        mask = idx > 0
        out[mask] = self._cum[idx[mask] - 1]
        return out

    @property
    def total(self) -> float:
        return float(self._cum[-1]) if self._cum.size else 0.0


def solve_onion(jobs: Sequence[OnionJob], capacity: int, *,
                tolerance: float = 0.01,
                horizon: Optional[int] = None,
                lookahead: int = 4) -> OnionResult:
    """Lexicographic max-min completion-time assignment (Algorithm 3).

    Parameters
    ----------
    jobs:
        The active jobs with their robust demands.
    capacity:
        Cluster capacity ``C`` in containers.
    tolerance:
        Bisection tolerance ``Delta`` on the utility level.
    horizon:
        Scheduling horizon in slots.  Defaults to
        :func:`default_horizon`, which always admits the bottom layer.
    lookahead:
        Maximum bottleneck candidates evaluated when a layer bottoms out
        at the utility floor and several jobs could be the sacrifice (see
        the inline comment); 0 restores the paper's pure greedy rule.

    Raises
    ------
    InfeasiblePlanError
        If even the bottom utility layer does not fit the horizon (only
        possible with an explicit, too-short horizon or zero capacity).
    """
    if capacity <= 0:
        raise InfeasiblePlanError(f"cluster capacity must be positive, got {capacity}")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("job ids must be unique within one solve")
    if horizon is None:
        horizon = default_horizon(jobs, capacity)
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")

    targets: Dict[str, JobTarget] = {}
    active: List[int] = []
    for i, job in enumerate(jobs):
        if job.demand <= 0.0:
            # Nothing left to run: the job completes "now" at full utility.
            value = job.utility.value(job.elapsed)
            targets[job.job_id] = JobTarget(
                job_id=job.job_id, target_completion=0,
                utility_value=value, layer=0, achievable=value > 0.0)
        else:
            active.append(i)

    bank = _DeadlineBank(jobs, horizon)
    ledger = _PeeledLedger()
    demands = np.array([job.demand for job in jobs], dtype=float)
    checks = 0

    def staircase(level: float, active_idx: np.ndarray,
                  extra_times: Sequence[float] = (),
                  extra_demands: Sequence[float] = (),
                  ) -> Tuple[bool, List[int]]:
        """Check the staircase condition (12) at *all* deadlines.

        Active jobs' deadlines come from the utility level; peeled jobs
        (plus any tentative ``extra`` commitments, used by the bottleneck
        lookahead) contribute their frozen targets.  The condition must
        hold at every merged deadline point: a peeled job finishing just
        after an active one still competes for the same early capacity.
        On failure, the active jobs at or before the first violated point
        — the candidate bottlenecks — are returned by global index, in
        deadline order.
        """
        nonlocal checks
        checks += 1
        d_active = bank.deadlines(level)[active_idx]
        d_all = np.concatenate([d_active, ledger.times,
                                np.asarray(extra_times, dtype=float)])
        eta_all = np.concatenate([demands[active_idx], ledger.demands,
                                  np.asarray(extra_demands, dtype=float)])
        is_active = np.zeros(d_all.size, dtype=bool)
        is_active[: d_active.size] = True
        order = np.argsort(d_all, kind="stable")
        d_sorted = d_all[order]
        prefix = np.cumsum(eta_all[order])
        active_sorted = is_active[order]
        with np.errstate(invalid="ignore"):
            slack = capacity * d_sorted - prefix
        violated = np.nonzero(~(slack >= -1e-9))[0]  # catches -inf and NaN
        if violated.size == 0:
            return True, []
        first = int(violated[0])
        active_positions = np.nonzero(active_sorted[: first + 1])[0]
        if not active_positions.size:  # pragma: no cover - defensive
            active_positions = np.nonzero(active_sorted)[0][:1]
        return False, [int(active_idx[order[pos]]) for pos in active_positions]

    def feasibility(level: float, active_idx: np.ndarray
                    ) -> Tuple[bool, Optional[int]]:
        """Condition (12) plus the paper's greedy bottleneck (last in prefix)."""
        ok, prefix = staircase(level, active_idx)
        return ok, (prefix[-1] if prefix else None)

    global_floor = min((job.utility.min_value() for job in jobs), default=0.0)
    global_floor = min(global_floor, 0.0)

    layer = 0
    while active:
        layer += 1
        active_idx = np.array(active, dtype=int)
        ceiling = max(jobs[i].utility.max_value() for i in active)
        ok, _ = feasibility(ceiling, active_idx)
        if ok:
            # Every remaining job attains its ceiling; peel them all.
            deadlines = bank.deadlines(ceiling)[active_idx]
            _peel_batch(jobs, active, list(active_idx), deadlines, ledger,
                        targets, layer, horizon)
            break
        low, high = global_floor, ceiling
        ok, violator = feasibility(low, active_idx)
        if not ok:
            raise InfeasiblePlanError(
                "even the minimum utility layer does not fit the horizon "
                f"(horizon={horizon}, capacity={capacity}); "
                "increase the horizon or drop demand")
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            ok, _ = feasibility(mid, active_idx)
            if ok:
                low = mid
            else:
                high = mid
        ok, candidates = staircase(high, active_idx)
        if not candidates:  # pragma: no cover - defensive
            candidates = [active[0]]
        bottleneck = candidates[-1]  # the paper's greedy pick

        # Sacrifice ambiguity (a refinement beyond the paper's greedy
        # rule): when the layer bottoms out at the utility floor, the
        # peeled job escapes the binding constraint entirely — its
        # floor-level deadline is the horizon — so WHICH prefix member is
        # sacrificed changes what later layers can achieve.  A one-step
        # lookahead picks the candidate whose sacrifice maximizes the next
        # layer's max-min level.  (At interior levels every prefix member
        # is provably capped at L*, so the greedy pick is optimal there.)
        if (lookahead > 0 and len(candidates) > 1
                and low <= global_floor + tolerance):
            shortlist = candidates[-lookahead:]
            best_level = -math.inf
            for candidate in shortlist:
                pin = _clamp_completion(
                    float(bank.deadlines(low)[candidate]), horizon)
                remaining = np.array([i for i in active if i != candidate],
                                     dtype=int)
                level = _lookahead_level(
                    staircase, remaining, [float(pin)],
                    [float(demands[candidate])], global_floor,
                    max((jobs[i].utility.max_value() for i in remaining),
                        default=global_floor),
                    tolerance)
                if level > best_level + 1e-12:
                    best_level = level
                    bottleneck = candidate

        deadline = float(bank.deadlines(low)[bottleneck])
        _peel_one(jobs[bottleneck], deadline, ledger, targets, layer, horizon)
        active.remove(bottleneck)

    return OnionResult(targets=targets, layers=layer,
                       feasibility_checks=checks, horizon=horizon)


def _peel_one(job: OnionJob, deadline: float, ledger: _PeeledLedger,
              targets: Dict[str, JobTarget], layer: int, horizon: int) -> None:
    completion = _clamp_completion(deadline, horizon)
    value = job.utility.value(job.elapsed + completion)
    ledger.commit(completion, job.demand)
    targets[job.job_id] = JobTarget(
        job_id=job.job_id, target_completion=completion,
        utility_value=value, layer=layer, achievable=value > 1e-9)


def _peel_batch(jobs: Sequence[OnionJob], active: List[int], idx: List[int],
                deadlines: np.ndarray, ledger: _PeeledLedger,
                targets: Dict[str, JobTarget], layer: int, horizon: int) -> None:
    for pos, i in enumerate(idx):
        _peel_one(jobs[i], float(deadlines[pos]), ledger, targets, layer, horizon)
    active.clear()


def _clamp_completion(deadline: float, horizon: int) -> int:
    if not math.isfinite(deadline):
        return horizon
    return int(min(max(deadline, 1.0), horizon))


def _lookahead_level(staircase, remaining_idx: np.ndarray,
                     extra_times: List[float], extra_demands: List[float],
                     floor: float, ceiling: float,
                     tolerance: float) -> float:
    """Max-min level the remaining jobs could reach after a tentative peel.

    ``staircase`` is the layer feasibility oracle accepting tentative
    extra commitments; the tentative bottleneck's pin is passed through
    ``extra_times``/``extra_demands``.
    """
    if remaining_idx.size == 0:
        return math.inf
    ok, _ = staircase(ceiling, remaining_idx, extra_times, extra_demands)
    if ok:
        return ceiling
    ok, _ = staircase(floor, remaining_idx, extra_times, extra_demands)
    if not ok:  # pragma: no cover - the pin never breaks the bottom layer
        return floor - 1.0
    low, high = floor, ceiling
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        ok, _ = staircase(mid, remaining_idx, extra_times, extra_demands)
        if ok:
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class PlannerJob:
    """A job snapshot handed to the planner.

    Attributes
    ----------
    job_id:
        Unique identifier within one planning round.
    utility:
        Utility function of *total* completion-time (slots since
        submission).
    estimate:
        The DE unit's current report for the remaining demand.
    elapsed:
        Slots already elapsed since the job's submission.
    delta:
        Optional per-job entropy threshold overriding the planner default,
        matching the per-job ``delta_i`` of the formulation.
    extra_demand:
        Deterministic demand (container-time-slots) added on top of the
        robust quantile — typically the expected remaining work of the
        job's currently *running* tasks, which occupy containers beyond
        the present slot but are not part of the pending-task estimate.
    """

    job_id: str
    utility: UtilityFunction
    estimate: DemandEstimate
    elapsed: float = 0.0
    delta: Optional[float] = None
    extra_demand: float = 0.0


@dataclass(frozen=True)
class JobPlan:
    """The planner's decision for one job.

    ``robust_demand`` is ``eta_i`` (container-time-slots);
    ``reference_demand`` the non-robust theta-quantile of the reference
    distribution, for comparison.  ``target_completion`` is the onion
    target and ``planned_completion`` the completion under the concrete
    container plan (at most ``target + R_i`` when targets were feasible).
    ``achievable`` is false when the expected utility is zero — the
    paper's red-row warning that the job cannot meet any useful deadline.
    """

    job_id: str
    robust_demand: float
    reference_demand: float
    target_completion: int
    planned_completion: float
    predicted_utility: float
    achievable: bool
    layer: int
    wcde_iterations: int


@dataclass
class SchedulePlan:
    """Complete output of one planning round."""

    jobs: Dict[str, JobPlan]
    container_plan: ContainerPlan
    theta: float
    horizon: int
    layers: int
    feasibility_checks: int
    solve_seconds: float
    _order: List[str] = field(default_factory=list, repr=False)

    def next_slot_allocation(self) -> Dict[str, int]:
        """Containers each job should hold in the immediate next slot."""
        return self.container_plan.next_slot_allocation()

    def impossible_jobs(self) -> List[str]:
        """Jobs whose predicted utility is zero (the UI's red rows)."""
        return [job_id for job_id in self._order
                if not self.jobs[job_id].achievable]

    def utility_vector(self) -> List[float]:
        """Predicted utilities sorted non-decreasingly."""
        return sorted(plan.predicted_utility for plan in self.jobs.values())


class LegacyRushPlanner:
    """Stateless solver for one round of the robust scheduling problem.

    Parameters
    ----------
    capacity:
        Cluster capacity ``C`` in containers.
    theta:
        Completion-probability percentile of the robust constraint (3).
    delta:
        Default entropy threshold ``delta_i`` for every job; the paper's
        experiments use values around 0.7.
    tolerance:
        Bisection tolerance ``Delta`` of the onion peeling.
    compensate_runtime:
        Subtract ``R_i`` from each deadline so Theorem 3's mapping bound
        still meets the original deadline (Section III-C).  Disable only
        for experiments isolating the mapping error.
    """

    def __init__(self, capacity: int, *, theta: float = 0.9, delta: float = 0.7,
                 tolerance: float = 0.01, compensate_runtime: bool = True) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta={theta} outside [0, 1]")
        if delta < 0.0:
            raise ConfigurationError(f"delta={delta} must be >= 0")
        if tolerance <= 0.0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        self.capacity = capacity
        self.theta = theta
        self.delta = delta
        self.tolerance = tolerance
        self.compensate_runtime = compensate_runtime

    def robust_demand(self, estimate: DemandEstimate,
                      delta: Optional[float] = None) -> tuple[float, float, int]:
        """WCDE for one job: (eta, reference quantile, iterations), in slots."""
        result = solve_wcde(estimate.pmf, self.theta,
                            self.delta if delta is None else delta)
        return (estimate.demand_at(result.eta_bin),
                estimate.demand_at(result.reference_quantile),
                result.iterations)

    def plan(self, jobs: Sequence[PlannerJob],
             horizon: Optional[int] = None) -> SchedulePlan:
        """Produce a complete schedule plan for the given job snapshot."""
        started = time.perf_counter()
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("job ids must be unique within one plan")

        etas: Dict[str, float] = {}
        refs: Dict[str, float] = {}
        iters: Dict[str, int] = {}
        onion_jobs: List[OnionJob] = []
        for job in jobs:
            eta, ref, n_iter = self.robust_demand(job.estimate, job.delta)
            eta += max(job.extra_demand, 0.0)
            etas[job.job_id] = eta
            refs[job.job_id] = ref
            iters[job.job_id] = n_iter
            compensation = (job.estimate.container_runtime
                            if self.compensate_runtime else 0.0)
            onion_jobs.append(OnionJob(
                job_id=job.job_id, demand=eta, utility=job.utility,
                elapsed=job.elapsed, compensation=compensation))

        if horizon is None:
            total = sum(etas.values())
            max_runtime = max((job.estimate.container_runtime for job in jobs),
                              default=1.0)
            horizon = max(1, int(math.ceil(total / self.capacity))
                          + int(math.ceil(max_runtime)) + 1)

        onion = solve_onion(onion_jobs, self.capacity,
                            tolerance=self.tolerance, horizon=horizon)

        mapping_jobs = []
        for job in jobs:
            target = onion.targets[job.job_id].target_completion
            runtime = job.estimate.container_runtime
            # Tie-break equal targets by the utility recoverable from
            # finishing one task-runtime earlier, so a salvageable late job
            # is packed ahead of a completion-time-insensitive one.
            earlier = max(target - runtime, 0.0)
            recoverable = (job.utility.value(job.elapsed + earlier)
                           - job.utility.value(job.elapsed + target))
            mapping_jobs.append(MappingJob(
                job_id=job.job_id, demand=etas[job.job_id], runtime=runtime,
                target_completion=target, tie_break=recoverable))
        container_plan = map_time_slots(mapping_jobs, self.capacity)

        job_plans: Dict[str, JobPlan] = {}
        for job in jobs:
            target = onion.targets[job.job_id]
            job_plans[job.job_id] = JobPlan(
                job_id=job.job_id,
                robust_demand=etas[job.job_id],
                reference_demand=refs[job.job_id],
                target_completion=target.target_completion,
                planned_completion=container_plan.completion(job.job_id),
                predicted_utility=target.utility_value,
                achievable=target.achievable,
                layer=target.layer,
                wcde_iterations=iters[job.job_id])

        return SchedulePlan(
            jobs=job_plans, container_plan=container_plan, theta=self.theta,
            horizon=onion.horizon, layers=onion.layers,
            feasibility_checks=onion.feasibility_checks,
            solve_seconds=time.perf_counter() - started,
            _order=list(ids))
