"""Ablation — choice of the distribution estimator class.

The paper ships a mean-impulse DE and a Gaussian DE and uses the Gaussian
one for its experiments.  This benchmark compares the shipped classes
plus our empirical-histogram extension on the Figure 3 coverage task,
under two ground truths:

* a *Gaussian* runtime world, where the Gaussian DE is well-specified;
* a *straggler* world (5x-slow tasks with probability 0.08), where the
  Gaussian tail underestimates the truth and the estimators differ.

Shape: the mean-impulse estimator — a point mass, immune to the KL
ball — under-covers everywhere; the Gaussian and empirical estimators
reach the theta bar once warmed up, with the empirical one at least as
good under stragglers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EmpiricalEstimator,
    GaussianEstimator,
    MeanTimeEstimator,
    RushPlanner,
)
from repro.analysis import format_table

from _shared import FULL_SCALE, write_report

REPS = 120 if FULL_SCALE else 50
N_TASKS = 101
WARM_SAMPLES = 50
THETA, DELTA = 0.9, 0.7

ESTIMATORS = {
    "mean-impulse": lambda: MeanTimeEstimator(),
    "gaussian": lambda: GaussianEstimator(min_samples=2),
    "empirical": lambda: EmpiricalEstimator(),
}


def draw_runtimes(rng, world: str, size: int) -> np.ndarray:
    base = rng.normal(60.0, 20.0, size=size).clip(min=1.0)
    if world == "straggler":
        slow = rng.random(size) < 0.08
        base[slow] *= 5.0
    return base


def coverage(world: str, estimator_name: str, reps: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    planner = RushPlanner(capacity=48, theta=THETA, delta=DELTA)
    hits = 0
    for _ in range(reps):
        runtimes = draw_runtimes(rng, world, N_TASKS)
        de = ESTIMATORS[estimator_name]()
        de.observe_many(runtimes[:WARM_SAMPLES])
        estimate = de.estimate(pending_tasks=N_TASKS - WARM_SAMPLES)
        eta, _, _ = planner.robust_demand(estimate)
        if eta >= float(runtimes[WARM_SAMPLES:].sum()):
            hits += 1
    return hits / reps


def compute_grid():
    return {
        (world, name): coverage(world, name, REPS, seed=7)
        for world in ("gaussian", "straggler") for name in ESTIMATORS
    }


def test_estimator_ablation(benchmark):
    grid = benchmark.pedantic(compute_grid, rounds=1, iterations=1)

    rows = [[name, grid[("gaussian", name)], grid[("straggler", name)]]
            for name in ESTIMATORS]
    table = format_table(
        ["estimator", "gaussian world", "straggler world"], rows)
    report = ("Ablation: DE class coverage P(eta >= actual demand), "
              f"theta={THETA}, delta={DELTA}, {WARM_SAMPLES} warm samples"
              f"\n\n{table}")
    print("\n" + report)
    write_report("ablation_estimators.txt", report)

    slack = 2.0 / np.sqrt(REPS)
    # A point-mass estimate concedes nothing to the adversary: it covers
    # the mean, which is ~50% coverage at best.
    assert grid[("gaussian", "mean-impulse")] < THETA - slack
    # Dispersion-aware estimators clear theta in the well-specified world.
    assert grid[("gaussian", "gaussian")] >= THETA - slack
    assert grid[("gaussian", "empirical")] >= THETA - slack
    # Under stragglers the empirical estimator is not worse than Gaussian.
    assert (grid[("straggler", "empirical")]
            >= grid[("straggler", "gaussian")] - slack)
