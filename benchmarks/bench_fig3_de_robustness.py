"""Figure 3 — robustness of the distribution estimation.

Paper setup: a Hadoop job with 100 map tasks and 1 reduce task, each task
lasting N(60 s, 20 s^2); the job is submitted 100 times.  The Gaussian DE
learns from the first ``n`` completed tasks, and the plot reports the
probability that the robust demand ``eta`` (WCDE at theta = 0.9, entropy
threshold ``delta``) covers the job's actual remaining demand.

Paper result: with only 25 samples no ``delta`` reaches the theta = 0.9
bar; from ~35 samples a threshold of 0.7 or more does, and more samples
let smaller thresholds suffice.

This benchmark regenerates the grid as a table
(``benchmarks/out/fig3.txt``) and asserts the same shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GaussianEstimator, RushPlanner
from repro.analysis import format_table

from _shared import FULL_SCALE, write_report

TASK_MEAN, TASK_STD = 60.0, 20.0
N_TASKS = 101
THETA = 0.9
SAMPLE_COUNTS = (25, 35, 45, 55, 65, 75, 85, 95)
DELTAS = (0.1, 0.4, 0.7, 1.0, 1.3)
REPS = 100 if FULL_SCALE else 40


def coverage_probability(samples: int, delta: float, reps: int,
                         seed: int) -> float:
    """P(eta >= actual remaining demand) over ``reps`` fresh jobs."""
    rng = np.random.default_rng(seed)
    planner = RushPlanner(capacity=48, theta=THETA, delta=delta)
    hits = 0
    for _ in range(reps):
        runtimes = rng.normal(TASK_MEAN, TASK_STD, size=N_TASKS).clip(min=1.0)
        de = GaussianEstimator(min_samples=2)
        de.observe_many(runtimes[:samples])
        estimate = de.estimate(pending_tasks=N_TASKS - samples)
        eta, _, _ = planner.robust_demand(estimate)
        if eta >= float(runtimes[samples:].sum()):
            hits += 1
    return hits / reps


def compute_grid() -> dict:
    return {
        (n, delta): coverage_probability(n, delta, REPS, seed=1000 + n)
        for n in SAMPLE_COUNTS for delta in DELTAS
    }


def test_fig3_de_robustness(benchmark):
    grid = benchmark.pedantic(compute_grid, rounds=1, iterations=1)

    rows = [[n] + [grid[(n, d)] for d in DELTAS] for n in SAMPLE_COUNTS]
    table = format_table(["#samples"] + [f"delta={d}" for d in DELTAS], rows)
    report = (f"Figure 3: P(eta covers remaining demand), theta={THETA}, "
              f"{REPS} reps/cell\n\n{table}\n\n"
              "Paper shape: 25 samples insufficient at any delta; "
              ">=35 samples with delta >= 0.7 clears theta.")
    print("\n" + report)
    write_report("fig3.txt", report)

    # Shape assertions (loose: Monte-Carlo noise of ~1/sqrt(REPS)).
    slack = 2.0 / np.sqrt(REPS)
    # Warm estimator + paper's threshold clears the bar...
    for n in (45, 55, 65, 75, 85, 95):
        for delta in (0.7, 1.0, 1.3):
            assert grid[(n, delta)] >= THETA - slack, (n, delta)
    # ...while a cold estimator with a tight threshold does not do better
    # than the warm ones.
    assert grid[(25, 0.1)] <= min(grid[(n, 1.3)] for n in (45, 65, 95)) + slack
    # Coverage is (noisily) monotone in delta for a warm estimator.
    warm = [grid[(65, d)] for d in DELTAS]
    assert warm[-1] >= warm[0] - slack
