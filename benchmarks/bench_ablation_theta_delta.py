"""Ablation — conservatism of the robust layer in theta and delta.

The robust demand ``eta`` should grow monotonically in both knobs: a
higher completion percentile ``theta`` and a wider KL ball ``delta`` both
force the scheduler to reserve more container-time-slots.  The table
quantifies the "insurance premium" relative to the mean demand, which is
how an operator would choose the knobs.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.wcde import solve_wcde
from repro.estimation.pmf import Pmf

from _shared import write_report

THETAS = (0.5, 0.8, 0.9, 0.95, 0.99)
DELTAS = (0.0, 0.1, 0.4, 0.7, 1.0, 1.3)


def conservatism_grid():
    reference = Pmf.from_gaussian(mean=1000.0, std=120.0, tau_max=2000)
    mean = reference.mean()
    return {
        (theta, delta): solve_wcde(reference, theta, delta).eta_bin / mean
        for theta in THETAS for delta in DELTAS
    }


def test_eta_conservatism_grid(benchmark):
    grid = benchmark.pedantic(conservatism_grid, rounds=1, iterations=1)

    rows = [[theta] + [grid[(theta, d)] for d in DELTAS] for theta in THETAS]
    table = format_table(
        ["theta"] + [f"delta={d}" for d in DELTAS], rows, digits=3)
    report = ("Ablation: robust demand eta as a multiple of the mean "
              f"demand (Gaussian reference, cv=0.12)\n\n{table}")
    print("\n" + report)
    write_report("ablation_theta_delta.txt", report)

    # Monotone in delta for every theta.
    for theta in THETAS:
        premiums = [grid[(theta, d)] for d in DELTAS]
        assert premiums == sorted(premiums), theta
    # Monotone in theta for every delta.
    for delta in DELTAS:
        premiums = [grid[(t, delta)] for t in THETAS]
        assert premiums == sorted(premiums), delta
    # delta = 0 at the median is (nearly) the mean demand.
    assert grid[(0.5, 0.0)] == pytest.approx(1.0, abs=0.01)
