"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's figures as a text table
(written under ``benchmarks/out/``) and makes loose shape assertions —
who wins, roughly by how much — rather than matching the paper's absolute
numbers, which came from a physical Hadoop cluster.

Scale is controlled by the ``RUSH_FULL_SCALE`` environment variable:

* unset (default): a scaled-down workload (25 jobs, 8 containers, 4x
  shorter tasks) that keeps the whole suite in CI territory;
* set to ``1``: the paper's parameters — 100 jobs, 48 containers, mean
  inter-arrival 130 s, 1-10 GB datasets.

Simulation results are cached per (ratio, policy, seed) so Figure 4 and
Figure 6 — which the paper derives from the same runs — share them here
as well.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List

from repro import (
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
    run_simulation,
)
from repro.cluster.metrics import SimulationResult
from repro.workload import WorkloadConfig, WorkloadGenerator

FULL_SCALE = os.environ.get("RUSH_FULL_SCALE", "") not in ("", "0")

OUT_DIR = Path(__file__).parent / "out"

#: The policies of Figures 4 and 6 (Fair is our extra baseline).
POLICIES = ("FIFO", "EDF", "RRH", "RUSH")

#: Budget-to-benchmark ratios the paper sweeps.
BUDGET_RATIOS = (2.0, 1.5, 1.0)

#: Seeds averaged per configuration.
SEEDS = (0, 1, 2) if not FULL_SCALE else (0,)


def experiment_config(budget_ratio: float) -> WorkloadConfig:
    """The Section V-B workload at the active scale."""
    if FULL_SCALE:
        return WorkloadConfig(n_jobs=100, capacity=48,
                              mean_interarrival=130.0,
                              budget_ratio=budget_ratio)
    return WorkloadConfig(n_jobs=25, capacity=8, mean_interarrival=170.0,
                          budget_ratio=budget_ratio,
                          size_gb_range=(0.5, 2.0), time_scale=0.25)


def make_policy(name: str):
    factories = {
        "FIFO": FifoScheduler,
        "EDF": EdfScheduler,
        "Fair": FairScheduler,
        "RRH": RrhScheduler,
        "RUSH": RushScheduler,
    }
    return factories[name]()


@lru_cache(maxsize=None)
def run_policy(budget_ratio: float, policy: str, seed: int) -> SimulationResult:
    """One cached simulation run (shared between Figure 4 and Figure 6)."""
    config = experiment_config(budget_ratio)
    specs = WorkloadGenerator(config, seed=seed).generate()
    return run_simulation(specs, config.capacity, make_policy(policy))


def run_ratio(budget_ratio: float) -> Dict[str, List[SimulationResult]]:
    """All policies, all seeds, one budget ratio."""
    return {policy: [run_policy(budget_ratio, policy, seed) for seed in SEEDS]
            for policy in POLICIES}


def pooled_latencies(results: List[SimulationResult]) -> List[float]:
    """Sensitive+critical latencies pooled across seeds (Figure 4's series)."""
    values: List[float] = []
    for result in results:
        values.extend(result.latencies("critical", "sensitive"))
    return values


def pooled_utilities(results: List[SimulationResult]) -> List[float]:
    values: List[float] = []
    for result in results:
        values.extend(result.utilities())
    return values


def write_report(name: str, text: str) -> Path:
    """Persist a figure's text rendering under benchmarks/out/."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
