"""Ablation — speculative execution vs robust scheduling.

The paper positions RUSH against the speculative-execution line of work
(its refs [2], [10]-[12]): duplicates clip the straggler *tail* but give
no completion-time guarantees, while RUSH budgets for uncertainty up
front.  With the :class:`~repro.schedulers.speculative
.SpeculativeScheduler` wrapper both mechanisms are measurable — alone and
combined — on the straggler-heavy Section V-B workload.

Shape: speculation reduces FIFO's latency tail (whisker) noticeably;
RUSH's tail is already controlled; combining them is never much worse
than either alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FifoScheduler,
    RushScheduler,
    SpeculativeScheduler,
    run_simulation,
)
from repro.analysis import boxplot_stats, format_boxplots
from repro.workload import WorkloadConfig, WorkloadGenerator

from _shared import FULL_SCALE, write_report

SEEDS = (0, 1, 2) if not FULL_SCALE else (0,)

VARIANTS = {
    "FIFO": lambda: FifoScheduler(),
    "FIFO+spec": lambda: SpeculativeScheduler(FifoScheduler()),
    "RUSH": lambda: RushScheduler(),
    "RUSH+spec": lambda: SpeculativeScheduler(RushScheduler()),
}


def compute():
    config = WorkloadConfig(
        n_jobs=25 if not FULL_SCALE else 100,
        capacity=8 if not FULL_SCALE else 48,
        mean_interarrival=170.0 if not FULL_SCALE else 130.0,
        budget_ratio=1.5,
        size_gb_range=(0.5, 2.0) if not FULL_SCALE else (1.0, 10.0),
        time_scale=0.25 if not FULL_SCALE else 1.0)
    latencies = {name: [] for name in VARIANTS}
    launches = {name: 0 for name in VARIANTS}
    for seed in SEEDS:
        specs = WorkloadGenerator(config, seed=seed).generate()
        for name, factory in VARIANTS.items():
            result = run_simulation(specs, config.capacity, factory(),
                                    seed=seed)
            latencies[name].extend(result.latencies("critical", "sensitive"))
            launches[name] += result.speculative_launches
    return latencies, launches


def test_speculation_ablation(benchmark):
    latencies, launches = benchmark.pedantic(compute, rounds=1, iterations=1)

    stats = {name: boxplot_stats(values)
             for name, values in latencies.items()}
    lines = [format_boxplots(stats), ""]
    lines.append("speculative launches: " + ", ".join(
        f"{name}={count}" for name, count in launches.items()))
    report = ("Ablation: speculative execution vs robust scheduling "
              f"(sensitive+critical latency, seeds={list(SEEDS)})\n\n"
              + "\n".join(lines))
    print("\n" + report)
    write_report("ablation_speculation.txt", report)

    # Speculation actually fires on the wrapped policies...
    assert launches["FIFO+spec"] > 0
    assert launches["FIFO"] == launches["RUSH"] == 0
    # ...and clips FIFO's straggler tail.
    assert stats["FIFO+spec"].whisker_high <= stats["FIFO"].whisker_high + 1e-9
    # RUSH's tail stays competitive with speculation-assisted FIFO.
    assert stats["RUSH"].q3 <= stats["FIFO"].q3 + 1e-9
