"""Benchmark gate for the incremental planning engine.

Measures the live planner against the frozen pre-PR hot path
(:mod:`_legacy_planner`, a verbatim copy of the seed-commit WCDE + onion
+ planner) in three scenarios:

* ``steady_state`` — replanning an *unchanged* job snapshot, the
  scheduler's common case between scheduling events.  The incremental
  planner presolves every robust demand from its memo and the onion warm
  start collapses every layer to two feasibility probes.  Gate: >= 3x
  faster than the legacy cold path.
* ``fig5_cold`` — one cold plan (empty caches) over the Figure 5 job
  sweep.  Exercises the vectorized WCDE scan, the deadline-bank level
  memo and the intra-solve layer seeding.  Gate: >= 1.5x faster overall.
* ``dirty_replay`` — an event-stream replay where a small fraction of
  jobs observe new samples each round, the realistic mid-ground.
  Reported, not gated.
* ``obs_overhead`` — the same steady-state replanning with the
  ``repro.obs`` span tracer + metrics registry enabled versus the
  default null instruments.  Gate: enabled/disabled wall-clock ratio
  <= 1.10 (the observability layer must stay out of the hot path).
* ``scale_sweep`` — the batch-vectorized solve pipeline at fleet scale:
  one cold plan + one warm replan at 1k jobs (plus 5k and 10k under
  ``RUSH_FULL_SCALE=1``; the CI bench-smoke lane runs 1k only).  The
  legacy baseline is timed at the 1k gate scale only — at 5k+ it would
  dominate the run for no extra information.  Gates: >= 4x cold
  speedup vs legacy at 1k, cold == warm plans bit-identical at every
  scale, and (at 1k) a 2-worker ``ParallelPlanner`` byte-identical to
  the serial path.

Every scenario also asserts *plan equivalence*: the incremental planner
(memo + presolve) reproduces the live cold plan bit-identically, and the
warm-started replan of an unchanged snapshot reproduces its own seeding
plan bit-identically.

Results go to ``BENCH_planner.json`` at the repository root (a tracked
file — the PR's headline numbers) and ``benchmarks/out/planner.txt``.
Run directly (``python benchmarks/bench_planner_incremental.py``) or via
pytest.  ``RUSH_FULL_SCALE=1`` selects the paper-scale job counts.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from repro import (
    GaussianEstimator,
    IncrementalPlanner,
    ParallelPlanner,
    PlannerJob,
    RushPlanner,
    SchedulePlan,
    SigmoidUtility,
    obs,
)
from repro.analysis import format_table

from _legacy_planner import LegacyRushPlanner
from _shared import FULL_SCALE, write_report

ROOT = Path(__file__).resolve().parent.parent

CAPACITY = 48
THETA, DELTA, TOLERANCE = 0.9, 0.7, 0.05

#: Figure 5 cold-sweep job counts.
SWEEP_COUNTS = (20, 100, 500, 1000) if FULL_SCALE else (20, 100, 300)
#: Steady-state / replay snapshot size and round count.
STEADY_JOBS = 500 if FULL_SCALE else 150
STEADY_ROUNDS = 10
#: Fraction of jobs dirtied per replay round.
DIRTY_FRACTION = 0.1

#: Fleet-scale cold/warm sweep: 1k always (the gated scale); 5k and 10k
#: only under RUSH_FULL_SCALE=1.
SCALE_COUNTS = (1000, 5000, 10000) if FULL_SCALE else (1000,)
SCALE_GATE_JOBS = 1000

SPEEDUP_GATE_STEADY = 3.0
SPEEDUP_GATE_COLD = 1.5
SPEEDUP_GATE_SCALE = 4.0
OBS_OVERHEAD_GATE = 1.10


def _make_jobs(n: int, seed: int = 0):
    """Jobs plus their live estimators, for dirty-replay refreshes."""
    rng = np.random.default_rng(seed)
    jobs, estimators, pendings = [], [], []
    for k in range(n):
        de = GaussianEstimator(prior_mean=float(rng.uniform(30, 90)),
                               prior_std=float(rng.uniform(5, 25)))
        de.observe_many(rng.normal(60, 15, size=10).clip(min=1.0))
        pending = int(rng.integers(10, 120))
        jobs.append(PlannerJob(
            f"wc-{k:04d}",
            SigmoidUtility(budget=float(rng.uniform(100, 2000)),
                           priority=float(rng.integers(1, 6)),
                           beta=float(rng.uniform(0.01, 1.0))),
            de.estimate(pending_tasks=pending)))
        estimators.append(de)
        pendings.append(pending)
    return jobs, estimators, pendings


def plans_equal(a: SchedulePlan, b: SchedulePlan) -> bool:
    """Bit-identical planning outcome: etas, targets, next-slot grants."""
    if set(a.jobs) != set(b.jobs):
        return False
    for job_id, pa in a.jobs.items():
        pb = b.jobs[job_id]
        if (pa.robust_demand, pa.reference_demand, pa.target_completion,
                pa.planned_completion, pa.predicted_utility) != \
           (pb.robust_demand, pb.reference_demand, pb.target_completion,
                pb.planned_completion, pb.predicted_utility):
            return False
    return a.next_slot_allocation() == b.next_slot_allocation()


def _time(fn, rounds: int = 3) -> float:
    """Median wall-clock seconds of ``fn()`` over ``rounds`` runs."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _live_planner() -> RushPlanner:
    return RushPlanner(capacity=CAPACITY, theta=THETA, delta=DELTA,
                       tolerance=TOLERANCE)


def _legacy_planner() -> LegacyRushPlanner:
    return LegacyRushPlanner(capacity=CAPACITY, theta=THETA, delta=DELTA,
                             tolerance=TOLERANCE)


def bench_steady_state() -> Dict:
    """Unchanged snapshot replanned STEADY_ROUNDS times, warm vs legacy."""
    jobs, _, _ = _make_jobs(STEADY_JOBS, seed=0)

    legacy = _legacy_planner()
    legacy_seconds = _time(lambda: legacy.plan(jobs)) * STEADY_ROUNDS

    planner = _live_planner()
    incremental = IncrementalPlanner(planner, warm_start=True)
    cold_plan = planner.plan(jobs)          # reference for equivalence
    seed_plan = incremental.plan(jobs)      # warms memo + hints
    assert plans_equal(seed_plan, cold_plan), \
        "incremental first plan diverged from the cold path"

    start = time.perf_counter()
    last = None
    for _ in range(STEADY_ROUNDS):
        last = incremental.plan(jobs)
    warm_seconds = time.perf_counter() - start
    assert plans_equal(last, seed_plan), \
        "warm-started replan of an unchanged snapshot diverged"

    stats = last.stats
    return {
        "jobs": STEADY_JOBS,
        "rounds": STEADY_ROUNDS,
        "legacy_seconds": legacy_seconds,
        "incremental_seconds": warm_seconds,
        "speedup": legacy_seconds / warm_seconds,
        "plans_bit_identical": True,
        "last_round_stats": {
            "wcde_presolved": stats.wcde_presolved,
            "wcde_cache_hits": stats.wcde_cache_hits,
            "wcde_cache_misses": stats.wcde_cache_misses,
            "peels": stats.peels,
            "feasibility_checks": stats.feasibility_checks,
            "warm_start": stats.warm_start,
        },
    }


def bench_fig5_cold() -> Dict:
    """Single cold plan per job count, live vs legacy."""
    rows = []
    for n in SWEEP_COUNTS:
        jobs, _, _ = _make_jobs(n, seed=0)
        legacy_s = _time(lambda: _legacy_planner().plan(jobs))
        live_s = _time(lambda: _live_planner().plan(jobs))
        rows.append({"jobs": n, "legacy_seconds": legacy_s,
                     "live_seconds": live_s,
                     "speedup": legacy_s / live_s})
    total_legacy = sum(r["legacy_seconds"] for r in rows)
    total_live = sum(r["live_seconds"] for r in rows)
    return {"sweep": rows, "total_legacy_seconds": total_legacy,
            "total_live_seconds": total_live,
            "speedup": total_legacy / total_live}


def bench_dirty_replay() -> Dict:
    """Event-stream replay: DIRTY_FRACTION of jobs refresh per round."""
    jobs, estimators, pendings = _make_jobs(STEADY_JOBS, seed=1)
    rng = np.random.default_rng(7)
    n_dirty = max(1, int(STEADY_JOBS * DIRTY_FRACTION))

    def rounds(plan_fn, jobs_seq):
        rng_local = np.random.default_rng(7)
        current = list(jobs_seq)
        start = time.perf_counter()
        for _ in range(STEADY_ROUNDS):
            for idx in rng_local.choice(len(current), n_dirty, replace=False):
                de = estimators[idx]
                de.observe(max(1.0, float(rng.normal(60, 15))))
                old = current[idx]
                pendings[idx] = max(1, pendings[idx] - 1)
                current[idx] = PlannerJob(
                    old.job_id, old.utility,
                    de.estimate(pending_tasks=pendings[idx]))
            plan_fn(current)
        return time.perf_counter() - start

    legacy = _legacy_planner()
    legacy_seconds = rounds(legacy.plan, jobs)

    # Re-seed estimator state so both sides replay the same stream.
    jobs, estimators, pendings = _make_jobs(STEADY_JOBS, seed=1)
    rng = np.random.default_rng(7)
    incremental = IncrementalPlanner(_live_planner(), warm_start=True)
    incremental.plan(jobs)
    live_seconds = rounds(incremental.plan, jobs)

    return {
        "jobs": STEADY_JOBS,
        "rounds": STEADY_ROUNDS,
        "dirty_per_round": n_dirty,
        "legacy_seconds": legacy_seconds,
        "incremental_seconds": live_seconds,
        "speedup": legacy_seconds / live_seconds,
        "presolve_hits": incremental.presolve_hits,
        "presolve_misses": incremental.presolve_misses,
    }


def bench_obs_overhead() -> Dict:
    """Steady-state replanning, observability enabled vs the null default."""
    jobs, _, _ = _make_jobs(STEADY_JOBS, seed=2)

    def steady_seconds() -> float:
        incremental = IncrementalPlanner(_live_planner(), warm_start=True)
        incremental.plan(jobs)              # warm memo + hints
        start = time.perf_counter()
        for _ in range(STEADY_ROUNDS):
            incremental.plan(jobs)
        return time.perf_counter() - start

    disabled = statistics.median(steady_seconds() for _ in range(5))
    obs.enable(trace=True, metrics=True, ledger=True)
    try:
        enabled = statistics.median(steady_seconds() for _ in range(5))
        spans = len(obs.get_tracer().spans)
        metric_names = len(obs.get_metrics().snapshot())
    finally:
        obs.reset()

    return {
        "jobs": STEADY_JOBS,
        "rounds": STEADY_ROUNDS,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": enabled / disabled,
        "spans_recorded": spans,
        "metrics_registered": metric_names,
    }


def bench_scale_sweep() -> Dict:
    """Cold + warm planning at 1k/5k/10k jobs; legacy timed at 1k only."""
    rows = []
    for n in SCALE_COUNTS:
        jobs, _, _ = _make_jobs(n, seed=5)
        # One timing rep above the gate scale: a 10k legacy-free cold
        # solve is tens of seconds and the medians stopped moving.
        reps = 3 if n <= SCALE_GATE_JOBS else 1
        cold_s = _time(lambda: _live_planner().plan(jobs), rounds=reps)

        planner = _live_planner()
        incremental = IncrementalPlanner(planner, warm_start=True)
        cold_plan = planner.plan(jobs)
        seed_plan = incremental.plan(jobs)
        identical = plans_equal(seed_plan, cold_plan)
        start = time.perf_counter()
        warm_plan = incremental.plan(jobs)
        warm_s = time.perf_counter() - start
        identical = identical and plans_equal(warm_plan, seed_plan)

        row = {"jobs": n, "cold_seconds": cold_s, "warm_seconds": warm_s,
               "plans_bit_identical": identical}
        if n == SCALE_GATE_JOBS:
            legacy_s = _time(lambda: _legacy_planner().plan(jobs),
                             rounds=reps)
            row["legacy_cold_seconds"] = legacy_s
            row["cold_speedup_vs_legacy"] = legacy_s / cold_s
            with ParallelPlanner(_live_planner(), workers=2,
                                 warm_start=False) as parallel:
                row["parallel_identical"] = plans_equal(
                    parallel.plan(jobs), cold_plan)
        rows.append(row)
    gate_row = next(r for r in rows if r["jobs"] == SCALE_GATE_JOBS)
    return {"counts": list(SCALE_COUNTS), "sweep": rows,
            "gate_jobs": SCALE_GATE_JOBS,
            "cold_speedup_at_gate": gate_row["cold_speedup_vs_legacy"],
            "parallel_identical": gate_row["parallel_identical"]}


def run_all() -> Dict:
    steady = bench_steady_state()
    cold = bench_fig5_cold()
    replay = bench_dirty_replay()
    overhead = bench_obs_overhead()
    scale = bench_scale_sweep()
    payload = {
        "benchmark": "planner_incremental",
        "full_scale": FULL_SCALE,
        "capacity": CAPACITY,
        "theta": THETA,
        "delta": DELTA,
        "tolerance": TOLERANCE,
        "gates": {"steady_state_min_speedup": SPEEDUP_GATE_STEADY,
                  "fig5_cold_min_speedup": SPEEDUP_GATE_COLD,
                  "scale_cold_min_speedup_at_1k": SPEEDUP_GATE_SCALE,
                  "obs_max_overhead_ratio": OBS_OVERHEAD_GATE},
        "steady_state": steady,
        "fig5_cold": cold,
        "dirty_replay": replay,
        "obs_overhead": overhead,
        "scale_sweep": scale,
    }

    rows = [["steady state (unchanged x%d)" % STEADY_ROUNDS,
             steady["legacy_seconds"], steady["incremental_seconds"],
             steady["speedup"]]]
    for r in cold["sweep"]:
        rows.append(["cold plan, %d jobs" % r["jobs"], r["legacy_seconds"],
                     r["live_seconds"], r["speedup"]])
    rows.append(["dirty replay (%d%% x%d)" % (int(DIRTY_FRACTION * 100),
                                              STEADY_ROUNDS),
                 replay["legacy_seconds"], replay["incremental_seconds"],
                 replay["speedup"]])
    table = format_table(
        ["scenario", "legacy s", "live s", "speedup"], rows, digits=3)
    scale_rows = [[
        "%d jobs" % r["jobs"], r["cold_seconds"], r["warm_seconds"],
        r.get("cold_speedup_vs_legacy", float("nan")),
        "yes" if r["plans_bit_identical"] else "NO"]
        for r in scale["sweep"]]
    scale_table = format_table(
        ["scale sweep", "cold s", "warm s", "vs legacy", "bit-identical"],
        scale_rows, digits=3)
    obs_line = ("Observability overhead (trace+metrics on steady state): "
                "%.3fs -> %.3fs, ratio %.3fx (%d spans, %d metrics)."
                % (overhead["disabled_seconds"], overhead["enabled_seconds"],
                   overhead["overhead_ratio"], overhead["spans_recorded"],
                   overhead["metrics_registered"]))
    report = ("Incremental planning engine vs frozen pre-PR hot path\n\n"
              + table + "\n\n" + scale_table
              + "\n\nGates: steady state >= %.1fx, cold sweep >= %.1fx, "
              "scale sweep >= %.1fx cold at %d jobs, obs overhead <= "
              "%.2fx.  Plans bit-identical in every scenario checked "
              "(2-worker parallel planner included at the gate scale: %s).\n"
              % (SPEEDUP_GATE_STEADY, SPEEDUP_GATE_COLD,
                 SPEEDUP_GATE_SCALE, SCALE_GATE_JOBS, OBS_OVERHEAD_GATE,
                 "identical" if scale["parallel_identical"] else "DIVERGED")
              + obs_line)
    print("\n" + report)
    write_report("planner.txt", report)
    (ROOT / "BENCH_planner.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_incremental_planner_benchmark_gates():
    payload = run_all()
    assert payload["steady_state"]["plans_bit_identical"]
    assert payload["steady_state"]["speedup"] >= SPEEDUP_GATE_STEADY, (
        "steady-state replanning speedup %.2fx below the %.1fx gate"
        % (payload["steady_state"]["speedup"], SPEEDUP_GATE_STEADY))
    assert payload["fig5_cold"]["speedup"] >= SPEEDUP_GATE_COLD, (
        "cold-sweep speedup %.2fx below the %.1fx gate"
        % (payload["fig5_cold"]["speedup"], SPEEDUP_GATE_COLD))
    assert (payload["obs_overhead"]["overhead_ratio"]
            <= OBS_OVERHEAD_GATE), (
        "observability overhead %.3fx above the %.2fx gate"
        % (payload["obs_overhead"]["overhead_ratio"], OBS_OVERHEAD_GATE))
    scale = payload["scale_sweep"]
    assert all(r["plans_bit_identical"] for r in scale["sweep"]), (
        "cold/warm plan divergence in the scale sweep")
    assert scale["parallel_identical"], (
        "2-worker ParallelPlanner diverged from the serial plan")
    assert scale["cold_speedup_at_gate"] >= SPEEDUP_GATE_SCALE, (
        "cold speedup %.2fx at %d jobs below the %.1fx gate"
        % (scale["cold_speedup_at_gate"], SCALE_GATE_JOBS,
           SPEEDUP_GATE_SCALE))


if __name__ == "__main__":
    test_incremental_planner_benchmark_gates()
