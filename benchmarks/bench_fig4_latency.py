"""Figure 4 — latency of time-sensitive and time-critical jobs.

Paper setup: 100 PUMA-mix jobs, Poisson(130 s) arrivals, 48 containers;
latency = runtime - budget; budgets swept at 2.0x / 1.5x / 1.0x each
job's full-cluster benchmarked runtime; boxplots over the sensitive and
critical jobs only (insensitive jobs are deliberately delayed and not
plotted).

Paper result: RUSH keeps the third quartile lowest (below zero on their
testbed, whose benchmarked runtimes include real-cluster overheads that a
clean simulator does not reproduce); FIFO and EDF suffer head-of-line
blocking; RRH over-serves critical jobs at the sensitive class's expense.

This benchmark regenerates the boxplot statistics per ratio
(``benchmarks/out/fig4.txt``) and asserts the ordering shape: RUSH's
median and third quartile beat FIFO's and EDF's at every ratio.
"""

from __future__ import annotations

import pytest

from repro.analysis import boxplot_stats, format_boxplots

from _shared import BUDGET_RATIOS, pooled_latencies, run_ratio, write_report


@pytest.mark.parametrize("ratio", BUDGET_RATIOS)
def test_fig4_latency_boxplots(benchmark, ratio):
    results = benchmark.pedantic(run_ratio, args=(ratio,),
                                 rounds=1, iterations=1)

    stats = {policy: boxplot_stats(pooled_latencies(results[policy]))
             for policy in results}
    table = format_boxplots(stats)
    report = (f"Figure 4 (budget ratio {ratio}): latency of sensitive + "
              f"critical jobs (runtime - budget)\n\n{table}")
    print("\n" + report)
    write_report(f"fig4_ratio{ratio:.1f}.txt", report)

    rush = stats["RUSH"]
    for baseline in ("FIFO", "EDF"):
        other = stats[baseline]
        assert rush.q3 <= other.q3 + 1e-9, (
            f"RUSH q3 {rush.q3} worse than {baseline} q3 {other.q3}")
        assert rush.median <= other.median + 1e-9, (
            f"RUSH median {rush.median} worse than {baseline} "
            f"median {other.median}")
