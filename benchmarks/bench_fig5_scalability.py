"""Figure 5 — resource consumption and execution time of RUSH.

Paper setup: WordCount jobs with random configurations create scheduling
events with 20 to 1000 simultaneous jobs; each experiment repeated 1000
times on an 8-vCPU/8-GB VM.

Paper result: RUSH stays light-weight — ~15% CPU, < 130 MB of memory at
1000 jobs, and the average algorithm runtime grows linearly from 0.32 s
(20 jobs) to 7.34 s (1000 jobs).

Here the measured object is the pure-Python :class:`RushPlanner` — one
full WCDE + onion-peeling + mapping round over ``n`` simultaneous jobs —
with wall-clock time from ``pytest-benchmark`` and peak memory from
``tracemalloc``.  Absolute numbers differ from the Java/YARN prototype;
the asserted shape is sub-quadratic runtime growth and a modest memory
ceiling.
"""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro import GaussianEstimator, PlannerJob, RushPlanner, SigmoidUtility
from repro.analysis import format_table

from _shared import FULL_SCALE, OUT_DIR, write_report

JOB_COUNTS = (20, 100, 500, 1000) if FULL_SCALE else (20, 100, 300)
_REPORT_ROWS: dict = {}


def wordcount_jobs(n: int, seed: int = 0) -> list:
    """``n`` simultaneous WordCount-like jobs with random configurations."""
    rng = np.random.default_rng(seed)
    jobs = []
    for k in range(n):
        de = GaussianEstimator(prior_mean=float(rng.uniform(30, 90)),
                               prior_std=float(rng.uniform(5, 25)))
        de.observe_many(rng.normal(60, 15, size=10).clip(min=1.0))
        jobs.append(PlannerJob(
            f"wc-{k:04d}",
            SigmoidUtility(budget=float(rng.uniform(100, 2000)),
                           priority=float(rng.integers(1, 6)),
                           beta=float(rng.uniform(0.01, 1.0))),
            de.estimate(pending_tasks=int(rng.integers(10, 120)))))
    return jobs


@pytest.mark.parametrize("n_jobs", JOB_COUNTS)
def test_fig5_planner_scalability(benchmark, n_jobs):
    planner = RushPlanner(capacity=48, theta=0.9, delta=0.7, tolerance=0.05)
    jobs = wordcount_jobs(n_jobs)

    tracemalloc.start()
    plan = planner.plan(jobs)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(plan.jobs) == n_jobs

    result = benchmark.pedantic(planner.plan, args=(jobs,),
                                rounds=3, iterations=1)
    assert len(result.jobs) == n_jobs

    seconds = benchmark.stats.stats.mean
    _REPORT_ROWS[n_jobs] = (seconds, peak_bytes / 2**20)
    # The paper's prototype stays under 130 MB at 1000 jobs; allow 4x for
    # the pure-Python object model.
    assert peak_bytes < 520 * 2**20

    if len(_REPORT_ROWS) == len(JOB_COUNTS):
        rows = [[n, _REPORT_ROWS[n][0], _REPORT_ROWS[n][1]]
                for n in JOB_COUNTS]
        table = format_table(
            ["simultaneous jobs", "plan seconds", "peak MiB"], rows, digits=3)
        report = ("Figure 5: RUSH planner runtime and memory vs "
                  f"simultaneous jobs\n\n{table}\n\n"
                  "Paper: 0.32 s -> 7.34 s over 20 -> 1000 jobs "
                  "(linear), < 130 MB.")
        print("\n" + report)
        write_report("fig5.txt", report)
        # Machine-readable twin of the text table, for CI trend tracking.
        payload = {
            "benchmark": "fig5_scalability",
            "full_scale": FULL_SCALE,
            "rows": [{"jobs": n, "plan_seconds": _REPORT_ROWS[n][0],
                      "peak_mib": _REPORT_ROWS[n][1]} for n in JOB_COUNTS],
        }
        (OUT_DIR / "fig5.json").write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")

        # Shape: runtime grows sub-quadratically in the job count.
        n_lo, n_hi = JOB_COUNTS[0], JOB_COUNTS[-1]
        t_lo, t_hi = _REPORT_ROWS[n_lo][0], _REPORT_ROWS[n_hi][0]
        growth = t_hi / max(t_lo, 1e-9)
        assert growth < (n_hi / n_lo) ** 2, (
            f"runtime grew {growth:.1f}x for a {n_hi / n_lo:.0f}x job "
            "increase — super-quadratic")
