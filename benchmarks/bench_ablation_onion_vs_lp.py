"""Ablation — onion peeling vs the linear-programming TAS baseline.

Section III-B claims the TAS problem *could* be solved with LP (the
authors' earlier CORA approach) but that the per-job-per-slot decision
variables make the LP slow as instances grow, motivating onion peeling.

This benchmark solves identical instances with both oracles, checks the
utility vectors agree (Theorem 2 makes the feasibility tests equivalent)
and reports the runtime gap, which should widen with the job count.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.onion import OnionJob, solve_onion
from repro.core.tas_lp import solve_tas_lp
from repro.utility import ConstantUtility, LinearUtility, SigmoidUtility

from _shared import FULL_SCALE, write_report

JOB_COUNTS = (4, 8, 16) if not FULL_SCALE else (4, 8, 16, 32)
_ROWS: dict = {}


def random_instance(n: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        demand = float(rng.integers(5, 60))
        budget = float(rng.integers(10, 80))
        priority = float(rng.integers(1, 6))
        kind = int(rng.integers(3))
        if kind == 0:
            utility = LinearUtility(budget, priority)
        elif kind == 1:
            utility = SigmoidUtility(budget, priority, beta=0.2)
        else:
            utility = ConstantUtility(priority)
        jobs.append(OnionJob(f"j{i}", demand, utility))
    return jobs


@pytest.mark.parametrize("n_jobs", JOB_COUNTS)
def test_onion_matches_lp_and_is_faster(benchmark, n_jobs):
    capacity = 4
    jobs = random_instance(n_jobs, seed=n_jobs)

    t0 = time.perf_counter()
    lp = solve_tas_lp(jobs, capacity, tolerance=1e-3)
    lp_seconds = time.perf_counter() - t0

    onion = benchmark.pedantic(
        lambda: solve_onion(jobs, capacity, tolerance=1e-3),
        rounds=3, iterations=1)
    onion_seconds = benchmark.stats.stats.mean

    for u_lp, u_onion in zip(lp.utility_vector(), onion.utility_vector()):
        assert u_lp == pytest.approx(u_onion, abs=0.05, rel=0.02)

    speedup = lp_seconds / max(onion_seconds, 1e-9)
    _ROWS[n_jobs] = (onion_seconds * 1e3, lp_seconds * 1e3, speedup)
    assert speedup > 1.0, "onion peeling should beat the LP oracle"

    if len(_ROWS) == len(JOB_COUNTS):
        rows = [[n, *_ROWS[n]] for n in JOB_COUNTS]
        table = format_table(
            ["jobs", "onion ms", "LP ms", "LP/onion"], rows, digits=2)
        report = ("Ablation: onion peeling vs LP feasibility oracle "
                  f"(identical answers asserted)\n\n{table}")
        print("\n" + report)
        write_report("ablation_onion_vs_lp.txt", report)
