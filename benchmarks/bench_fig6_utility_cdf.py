"""Figure 6 — CDF of the jobs' achieved utilities.

Paper setup: the same runs as Figure 4; for each budget ratio, the
empirical CDF of all 100 jobs' utilities per scheduler.

Paper result: RUSH shifts the whole CDF to the right (stochastically
dominates), more pronouncedly as budgets tighten, and minimizes the
fraction of jobs stuck at zero utility (at ratio 1.0 the baselines leave
more than half the jobs at zero).

This benchmark regenerates the CDF tables (``benchmarks/out/fig6_*.txt``)
and asserts the dominance shape against FIFO and EDF at low-to-mid
utility levels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ecdf_at, format_cdf_table

from _shared import BUDGET_RATIOS, pooled_utilities, run_ratio, write_report


@pytest.mark.parametrize("ratio", BUDGET_RATIOS)
def test_fig6_utility_cdf(benchmark, ratio):
    results = benchmark.pedantic(run_ratio, args=(ratio,),
                                 rounds=1, iterations=1)
    series = {policy: pooled_utilities(results[policy]) for policy in results}

    top = max(max(values) for values in series.values())
    grid = [round(top * f, 3) for f in (0.0, 0.05, 0.1, 0.2, 0.35, 0.5,
                                        0.75, 1.0)]
    table = format_cdf_table(series, grid)
    report = (f"Figure 6 (budget ratio {ratio}): CDF of job utilities "
              f"(fraction of jobs with utility <= x)\n\n{table}\n\n"
              "Lower rows = better (fewer low-utility jobs).")
    print("\n" + report)
    write_report(f"fig6_ratio{ratio:.1f}.txt", report)

    # Shape: averaged over the low-to-mid utility range, RUSH's CDF sits
    # at or below FIFO's and EDF's (right-shifted distribution).
    probe = [top * f for f in (0.05, 0.1, 0.2, 0.35, 0.5)]
    rush_mass = np.mean([ecdf_at(series["RUSH"], x) for x in probe])
    for baseline in ("FIFO", "EDF"):
        base_mass = np.mean([ecdf_at(series[baseline], x) for x in probe])
        assert rush_mass <= base_mass + 0.02, (
            f"RUSH low-utility mass {rush_mass:.3f} vs "
            f"{baseline} {base_mass:.3f}")
