#!/usr/bin/env python3
"""Scheduler shoot-out on a PUMA-like mixed workload (Section V-B, scaled).

Generates the paper's workload shape — eight heterogeneous job templates,
Poisson arrivals, a 20/60/20 critical/sensitive/insensitive mix, budgets a
fixed multiple of each job's full-cluster benchmark — and runs it under
FIFO, EDF, Fair, RRH and RUSH, printing the latency boxplot (Figure 4) and
the utility distribution (Figure 6) as text tables.

Run:  python examples/mixed_workload.py [--jobs N] [--ratio R] [--seed S]
"""

from __future__ import annotations

import argparse

from repro import (
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
    run_simulation,
)
from repro.analysis import boxplot_stats, format_boxplots, format_cdf_table
from repro.cluster.metrics import lexicographic_compare
from repro.workload import WorkloadConfig, WorkloadGenerator


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=20,
                        help="number of jobs (paper: 100)")
    parser.add_argument("--ratio", type=float, default=1.5,
                        help="budget / benchmarked-runtime ratio (paper: 2, 1.5, 1)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--capacity", type=int, default=8,
                        help="containers (paper: 48)")
    return parser


def main() -> None:
    args = make_parser().parse_args()
    config = WorkloadConfig(
        n_jobs=args.jobs, capacity=args.capacity,
        mean_interarrival=120.0, budget_ratio=args.ratio,
        size_gb_range=(0.5, 2.0), time_scale=0.25)
    specs = WorkloadGenerator(config, seed=args.seed).generate()
    total_work = sum(s.total_work for s in specs)
    span = max(s.arrival for s in specs) or 1
    print(f"{args.jobs} jobs, capacity {args.capacity}, budget ratio "
          f"{args.ratio}, load factor ~{total_work / (args.capacity * span):.2f}\n")

    policies = {
        "FIFO": FifoScheduler(),
        "EDF": EdfScheduler(),
        "Fair": FairScheduler(),
        "RRH": RrhScheduler(),
        "RUSH": RushScheduler(),
    }
    results = {name: run_simulation(specs, args.capacity, sched)
               for name, sched in policies.items()}

    print("Latency of completion-time sensitive and critical jobs "
          "(runtime - budget; negative = early):")
    print(format_boxplots({
        name: boxplot_stats(result.latencies("critical", "sensitive"))
        for name, result in results.items()
    }))

    max_utility = max(max(r.utilities()) for r in results.values())
    grid = [round(max_utility * f, 2) for f in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)]
    print("\nCDF of job utilities (fraction of jobs with utility <= x; "
          "lower is better):")
    print(format_cdf_table({name: r.utilities() for name, r in results.items()},
                           grid=grid))

    print("\nSummary:")
    rush_vec = results["RUSH"].sorted_utilities()
    for name, result in results.items():
        verdict = ""
        if name != "RUSH":
            cmp = lexicographic_compare(rush_vec, result.sorted_utilities())
            verdict = ("RUSH lex-greater" if cmp > 0
                       else "tie" if cmp == 0 else "RUSH lex-smaller")
        print(f"  {name:5s} total utility {result.total_utility():7.1f}   "
              f"zero-utility jobs {result.zero_utility_fraction:5.1%}   "
              f"on-time {result.on_time_fraction:5.1%}   {verdict}")


if __name__ == "__main__":
    main()
