#!/usr/bin/env python3
"""Scheduling in a hostile cluster: failures, stragglers and mitigations.

The paper's whole premise is that shared infrastructure makes runtimes
uncertain.  This example dials the hostility up — task attempts fail with
probability ``p`` and must be re-executed — and compares four responses:

* plain FIFO (pretend nothing is wrong),
* FIFO + speculative execution (the related-work mitigation: race
  duplicates against stragglers),
* plain RUSH (robust percentile demand, but failure-blind), and
* failure-aware RUSH (the paper's future-work extension: the DE unit
  learns the failure rate online and inflates demand accordingly).

Run:  python examples/uncertain_cluster.py [--failure-prob P]
"""

from __future__ import annotations

import argparse

from repro import (
    FailureAwareEstimator,
    FifoScheduler,
    GaussianEstimator,
    RushScheduler,
    SpeculativeScheduler,
    run_simulation,
)
from repro.analysis import boxplot_stats, format_boxplots, format_table
from repro.workload import WorkloadConfig, WorkloadGenerator


def failure_aware_factory(prior_runtime):
    return FailureAwareEstimator(
        GaussianEstimator(prior_mean=prior_runtime, min_samples=2))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--failure-prob", type=float, default=0.15)
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = WorkloadConfig(
        n_jobs=args.jobs, capacity=8, mean_interarrival=170.0,
        budget_ratio=1.5, size_gb_range=(0.5, 2.0), time_scale=0.25,
        failure_prob=args.failure_prob)
    specs = WorkloadGenerator(config, seed=args.seed).generate()
    print(f"{args.jobs} jobs, task failure probability "
          f"{args.failure_prob:.0%}\n")

    policies = {
        "FIFO": lambda: FifoScheduler(),
        "FIFO+spec": lambda: SpeculativeScheduler(FifoScheduler()),
        "RUSH": lambda: RushScheduler(),
        "RUSH+fail-aware": lambda: RushScheduler(
            estimator_factory=failure_aware_factory),
    }
    results = {name: run_simulation(specs, config.capacity, factory(),
                                    seed=args.seed)
               for name, factory in policies.items()}

    print("Latency of sensitive + critical jobs (runtime - budget):")
    print(format_boxplots({
        name: boxplot_stats(r.latencies("critical", "sensitive"))
        for name, r in results.items()
    }))

    rows = []
    for name, result in results.items():
        rows.append([
            name, result.task_failures, result.speculative_launches,
            result.total_utility(), result.zero_utility_fraction,
        ])
    print("\nFailure handling summary:")
    print(format_table(
        ["policy", "task failures", "speculative launches",
         "total utility", "zero-utility frac"], rows))
    print("\nReading: failures inflate every policy's latency; speculation "
          "clips stragglers for FIFO, while the failure-aware DE lets RUSH "
          "budget for re-execution work before it happens.")


if __name__ == "__main__":
    main()
