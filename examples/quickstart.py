#!/usr/bin/env python3
"""Quickstart: one robust planning round with the RUSH planner.

Three clients share a 48-container cluster:

* ``video-index`` is time-critical (steep sigmoid utility),
* ``nightly-etl`` is time-sensitive (gentle sigmoid),
* ``archive-scan`` is completion-time insensitive (constant utility).

Each job's Distribution Estimator has seen a handful of completed-task
runtimes; the planner solves the worst-case distribution estimation
problem per job, peels the lexicographic max-min onion and maps the
targets onto container queues.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConstantUtility,
    GaussianEstimator,
    PlannerJob,
    RushPlanner,
    SigmoidUtility,
)
from repro.analysis import format_table, render_gantt


def build_estimator(mean: float, std: float, samples: int,
                    seed: int) -> GaussianEstimator:
    """A DE unit that has already observed some completed-task runtimes."""
    rng = np.random.default_rng(seed)
    de = GaussianEstimator(prior_mean=mean, prior_std=std)
    de.observe_many(rng.normal(mean, std, size=samples).clip(min=1.0))
    return de


def main() -> None:
    # --- the cluster and the robustness knobs ---------------------------
    planner = RushPlanner(capacity=48, theta=0.9, delta=0.7)

    # --- three jobs with different completion-time requirements ---------
    video_de = build_estimator(mean=60, std=20, samples=40, seed=1)
    etl_de = build_estimator(mean=90, std=25, samples=25, seed=2)
    scan_de = build_estimator(mean=45, std=10, samples=60, seed=3)

    jobs = [
        PlannerJob("video-index",
                   SigmoidUtility(budget=240, priority=5, beta=0.5),
                   video_de.estimate(pending_tasks=80)),
        PlannerJob("nightly-etl",
                   SigmoidUtility(budget=600, priority=3, beta=0.02),
                   etl_de.estimate(pending_tasks=120)),
        PlannerJob("archive-scan",
                   ConstantUtility(priority=2),
                   scan_de.estimate(pending_tasks=200)),
    ]

    plan = planner.plan(jobs)

    # --- inspect the decisions ------------------------------------------
    rows = []
    for job in jobs:
        decision = plan.jobs[job.job_id]
        rows.append([
            job.job_id,
            decision.reference_demand,
            decision.robust_demand,
            decision.target_completion,
            decision.planned_completion,
            decision.predicted_utility,
            "yes" if decision.achievable else "NO (red row)",
        ])
    print("One RUSH planning round (capacity=48, theta=0.9, delta=0.7)\n")
    print(format_table(
        ["job", "ref demand", "robust eta", "target T",
         "planned T", "utility", "achievable"], rows, digits=1))

    print("\nContainers to grant in the next slot:")
    for job_id, count in sorted(plan.next_slot_allocation().items()):
        print(f"  {job_id:14s} {count} container(s)")
    print(f"\nPlanner solved {plan.layers} onion layers with "
          f"{plan.feasibility_checks} feasibility checks in "
          f"{plan.solve_seconds * 1e3:.1f} ms.")
    if plan.impossible_jobs():
        print("Jobs that cannot reach positive utility:",
              ", ".join(plan.impossible_jobs()))

    print("\nContainer plan (first 16 of 48 queues):")
    gantt = render_gantt(plan.container_plan, width=64)
    print("\n".join(gantt.splitlines()[:17] + gantt.splitlines()[-2:]))


if __name__ == "__main__":
    main()
