#!/usr/bin/env python3
"""Robustness of the distribution estimation (the Figure 3 experiment).

A job has 100 map tasks and 1 reduce task whose runtimes are drawn from
N(60, 20^2) — the ground truth the scheduler does not know.  The Gaussian
DE unit learns from the first ``n`` completed tasks, the WCDE layer
inflates the estimate to the worst case within KL distance ``delta``, and
we measure how often the resulting robust demand ``eta`` covers the job's
actual remaining demand.  The paper finds that >= 35 samples and
``delta >= 0.7`` are needed to clear the theta = 0.9 percentile.

Run:  python examples/robustness_sweep.py [--reps R]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import GaussianEstimator, RushPlanner
from repro.analysis import format_table

TASK_MEAN, TASK_STD = 60.0, 20.0
N_TASKS = 101
THETA = 0.9


def coverage(samples: int, delta: float, reps: int, seed: int) -> float:
    """P(eta >= actual remaining demand) over ``reps`` fresh jobs."""
    rng = np.random.default_rng(seed)
    planner = RushPlanner(capacity=48, theta=THETA, delta=delta)
    hits = 0
    for _ in range(reps):
        runtimes = rng.normal(TASK_MEAN, TASK_STD, size=N_TASKS).clip(min=1.0)
        de = GaussianEstimator(min_samples=2)
        de.observe_many(runtimes[:samples])
        pending = N_TASKS - samples
        estimate = de.estimate(pending_tasks=pending)
        eta, _, _ = planner.robust_demand(estimate)
        if eta >= float(runtimes[samples:].sum()):
            hits += 1
    return hits / reps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=60,
                        help="repetitions per cell (paper: 100)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    sample_counts = [25, 35, 45, 55, 65, 75, 85, 95]
    deltas = [0.1, 0.4, 0.7, 1.0, 1.3]
    rows = []
    for n in sample_counts:
        row: list[object] = [n]
        for delta in deltas:
            row.append(coverage(n, delta, args.reps, args.seed + n))
        rows.append(row)

    print(f"P(eta covers the remaining demand), theta = {THETA}, "
          f"{args.reps} repetitions per cell\n")
    print(format_table(["#samples"] + [f"delta={d}" for d in deltas], rows))
    print("\nReading: each cell should exceed theta = 0.9.  With few "
          "samples no entropy threshold rescues the estimate; from ~35 "
          "samples a threshold of 0.7 or more clears the bar, matching "
          "Figure 3 of the paper.")


if __name__ == "__main__":
    main()
