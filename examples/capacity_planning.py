#!/usr/bin/env python3
"""What-if capacity planning with the RUSH planner.

Because the planner is a pure function of (jobs, capacity, robustness
knobs), it doubles as a capacity-planning oracle: sweep the container
count and inspect the predicted lexicographic utility vector to find the
smallest cluster that still serves every time-critical job.

This exercises the planner exactly as the YARN CA unit would, but offline
— no simulation, just repeated robust solves.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import GaussianEstimator, PlannerJob, RushPlanner, SigmoidUtility
from repro.analysis import format_table


def build_jobs(seed: int = 0) -> list[PlannerJob]:
    """A morning batch: five analytics jobs with staggered urgency."""
    rng = np.random.default_rng(seed)
    jobs = []
    profiles = [
        ("fraud-scoring", 120, 5, 0.5, 60, 15, 60),    # critical
        ("ads-report", 300, 4, 0.1, 45, 10, 90),
        ("churn-model", 420, 3, 0.05, 90, 25, 70),
        ("log-rollup", 600, 2, 0.02, 30, 8, 150),
        ("backfill", 900, 1, 0.01, 75, 20, 110),
    ]
    for name, budget, priority, beta, mean, std, pending in profiles:
        de = GaussianEstimator(prior_mean=mean, prior_std=std)
        de.observe_many(rng.normal(mean, std, size=30).clip(min=1.0))
        jobs.append(PlannerJob(
            name, SigmoidUtility(budget=budget, priority=priority, beta=beta),
            de.estimate(pending_tasks=pending)))
    return jobs


def main() -> None:
    jobs = build_jobs()
    capacities = [8, 16, 24, 32, 48, 64]
    rows = []
    for capacity in capacities:
        planner = RushPlanner(capacity=capacity, theta=0.9, delta=0.7)
        plan = planner.plan(jobs)
        vector = plan.utility_vector()
        impossible = plan.impossible_jobs()
        rows.append([
            capacity,
            vector[0],
            vector[len(vector) // 2],
            vector[-1],
            plan.jobs["fraud-scoring"].target_completion,
            ", ".join(impossible) if impossible else "-",
        ])
    print("Capacity sweep under theta=0.9, delta=0.7 "
          "(utilities are planner predictions)\n")
    print(format_table(
        ["containers", "min utility", "median utility", "max utility",
         "fraud-scoring T", "impossible jobs"], rows))

    viable = [c for c, row in zip(capacities, rows) if row[5] == "-"]
    if viable:
        print(f"\nSmallest cluster with no impossible job: "
              f"{viable[0]} containers.")
    else:
        print("\nNo tested capacity serves every job — raise the budget "
              "or add containers.")


if __name__ == "__main__":
    main()
