"""Quantized probability mass functions over demand bins.

The RUSH formulation replaces the continuous demand density
``omega_i(v_i)`` with a discrete PMF obtained by quantizing demand into
integer bins ``l = 0 .. tau_max`` (Section III-A of the paper).  Bin ``l``
represents a total demand of ``l`` quantization units; the estimator that
produced the PMF knows how many container-time-slots one unit is worth
(see :class:`repro.estimation.base.DemandEstimate`).

This module is the numeric foundation for the whole robust layer: the REM
closed-form solver, the WCDE bisection and the distribution estimators all
speak :class:`Pmf`.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.errors import DistributionError

__all__ = ["Pmf", "kl_divergence"]

#: Probabilities smaller than this are treated as exact zeros when
#: validating and when computing KL divergences.
_PROB_ATOL = 1e-12


class Pmf:
    """An immutable probability mass function on bins ``0 .. tau_max``.

    Parameters
    ----------
    probs:
        Bin probabilities.  Must be non-negative.  Unless ``normalize`` is
        true they must already sum to one (within a small tolerance).
    normalize:
        When true, ``probs`` is rescaled to sum to one.  An all-zero vector
        is rejected either way.

    The probability vector is stored as a read-only ``numpy`` array; all
    accessors return copies or read-only views so instances can safely be
    shared between scheduler components.
    """

    __slots__ = ("_probs", "_cdf", "_fingerprint")

    def __init__(self, probs: Iterable[float], *, normalize: bool = False) -> None:
        arr = np.asarray(list(probs) if not isinstance(probs, np.ndarray) else probs,
                         dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise DistributionError("a PMF needs a non-empty 1-D probability vector")
        if np.any(~np.isfinite(arr)):
            raise DistributionError("PMF probabilities must be finite")
        if np.any(arr < -_PROB_ATOL):
            raise DistributionError("PMF probabilities must be non-negative")
        arr = np.clip(arr, 0.0, None)
        total = float(arr.sum())
        if total <= 0.0:
            raise DistributionError("PMF probabilities sum to zero")
        if normalize:
            arr = arr / total
        elif abs(total - 1.0) > 1e-6:
            raise DistributionError(
                f"PMF probabilities sum to {total:.9f}, expected 1 "
                "(pass normalize=True to rescale)")
        else:
            arr = arr / total  # exact renormalization of rounding noise
        arr.setflags(write=False)
        self._probs = arr
        cdf = np.cumsum(arr)
        cdf.setflags(write=False)
        self._cdf = cdf
        self._fingerprint: Optional[bytes] = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def impulse(cls, bin_index: int, *, tau_max: int | None = None) -> "Pmf":
        """A distribution with all mass on ``bin_index``.

        This is the shape reported by the paper's *mean time estimator*,
        which returns "an impulse distribution at the bin equal to the
        multiple of the mean container runtime and the number of pending
        tasks".
        """
        if bin_index < 0:
            raise DistributionError("impulse bin index must be >= 0")
        size = (tau_max if tau_max is not None else bin_index) + 1
        if size <= bin_index:
            raise DistributionError(
                f"tau_max={tau_max} cannot hold an impulse at bin {bin_index}")
        probs = np.zeros(size)
        probs[bin_index] = 1.0
        return cls(probs)

    @classmethod
    def from_samples(cls, samples: Sequence[float], *, tau_max: int | None = None) -> "Pmf":
        """Empirical PMF from raw demand samples (values are bin indices).

        Samples are rounded to the nearest bin and clipped at zero.  When
        ``tau_max`` is omitted the support extends to the largest sample.
        """
        if len(samples) == 0:
            raise DistributionError("cannot build an empirical PMF from zero samples")
        idx = np.rint(np.asarray(samples, dtype=float)).astype(int)
        if np.any(idx < 0):
            raise DistributionError("demand samples must be non-negative")
        top = int(idx.max())
        size = (tau_max if tau_max is not None else top) + 1
        if top >= size:
            raise DistributionError(
                f"tau_max={tau_max} smaller than largest sample bin {top}")
        counts = np.bincount(idx, minlength=size).astype(float)
        return cls(counts, normalize=True)

    @classmethod
    def from_gaussian(cls, mean: float, std: float, *,
                      tau_max: int | None = None,
                      n_sigma: float = 6.0) -> "Pmf":
        """Discretized Gaussian with the given mean and standard deviation.

        The paper's Gaussian estimator invokes the central limit theorem on
        the total demand of the pending tasks, then quantizes.  Bin ``l``
        receives the probability mass of the interval ``(l - 0.5, l + 0.5]``
        under N(mean, std^2); the first and last bins absorb the tails so
        the result is a proper PMF.  ``tau_max`` defaults to
        ``mean + n_sigma * std``.
        """
        if std < 0:
            raise DistributionError("standard deviation must be >= 0")
        if mean < 0:
            raise DistributionError("mean demand must be >= 0")
        if std <= 1e-9 * max(mean, 1.0):
            # effectively deterministic; avoid dividing by a denormal std
            return cls.impulse(int(round(mean)), tau_max=tau_max)
        top = tau_max if tau_max is not None else int(math.ceil(mean + n_sigma * std))
        top = max(top, 1)
        edges = np.arange(top + 2) - 0.5  # bin l covers (l-0.5, l+0.5]
        z = (edges - mean) / (std * math.sqrt(2.0))
        cdf = 0.5 * (1.0 + _erf(z))
        probs = np.diff(cdf)
        probs[0] += cdf[0]          # left tail into bin 0
        probs[-1] += 1.0 - cdf[-1]  # right tail into the last bin
        return cls(probs, normalize=True)

    # -- accessors ------------------------------------------------------

    @property
    def probs(self) -> npt.NDArray[np.float64]:
        """Read-only probability vector, indexed by bin."""
        return self._probs

    @property
    def tau_max(self) -> int:
        """Index of the last bin."""
        return self._probs.size - 1

    def __len__(self) -> int:
        return self._probs.size

    def __getitem__(self, bin_index: int) -> float:
        return float(self._probs[bin_index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pmf):
            return NotImplemented
        if self._probs.size != other._probs.size:
            return False
        return bool(np.allclose(self._probs, other._probs, atol=1e-12))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Pmf(tau_max={self.tau_max}, mean={self.mean():.3f}, "
                f"std={self.std():.3f})")

    def fingerprint(self) -> bytes:
        """Content digest of the exact probability vector.

        Two PMFs share a fingerprint iff their (normalized) probability
        vectors are bit-identical, which makes the digest a safe memo key
        for any pure function of the distribution — notably the WCDE
        solve, whose result is fully determined by ``(fingerprint, theta,
        delta)``.  The digest is computed once and cached; it covers the
        support size, so a padded copy hashes differently.
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.blake2b(
                self._probs.tobytes(), digest_size=16).digest()
        return self._fingerprint

    # -- statistics -----------------------------------------------------

    def mean(self) -> float:
        """Expected bin index."""
        return float(np.dot(self._probs, np.arange(self._probs.size)))

    def var(self) -> float:
        """Variance of the bin index."""
        bins = np.arange(self._probs.size)
        m = self.mean()
        return float(np.dot(self._probs, (bins - m) ** 2))

    def std(self) -> float:
        """Standard deviation of the bin index."""
        return math.sqrt(self.var())

    def cdf(self) -> npt.NDArray[np.float64]:
        """Read-only cumulative distribution, ``cdf()[l] = P(v <= l)``."""
        return self._cdf

    def cdf_at(self, bin_index: int) -> float:
        """``P(v <= bin_index)``; 0 below the support, 1 above it."""
        if bin_index < 0:
            return 0.0
        if bin_index >= self._probs.size:
            return 1.0
        return float(self._cdf[bin_index])

    def quantile(self, theta: float) -> int:
        """Smallest bin ``l`` with ``P(v <= l) >= theta``.

        This is the ``Phi^{-1}(theta)`` of Algorithm 2, used to seed the
        WCDE bisection with a certainly-achievable objective.
        """
        if not 0.0 <= theta <= 1.0:
            raise DistributionError(f"theta={theta} outside [0, 1]")
        # rushlint: disable=RL003 (exact-zero sentinel: the 0-quantile
        # is bin 0 by definition; tolerance would swallow real thetas)
        if theta == 0.0:
            return 0
        # side='left' yields the first index whose CDF is >= theta.
        idx = int(np.searchsorted(self._cdf, theta - 1e-12, side="left"))
        return min(idx, self.tau_max)

    def support_min(self) -> int:
        """Smallest bin with non-zero probability."""
        nz = np.nonzero(self._probs > _PROB_ATOL)[0]
        return int(nz[0])

    def support_max(self) -> int:
        """Largest bin with non-zero probability.

        No distribution within a *finite* KL distance of this PMF can place
        mass above this bin, so it upper-bounds every worst-case quantile.
        """
        nz = np.nonzero(self._probs > _PROB_ATOL)[0]
        return int(nz[-1])

    # -- transformations ------------------------------------------------

    def padded(self, tau_max: int) -> "Pmf":
        """Return a copy whose support is extended with zero bins."""
        if tau_max < self.tau_max:
            raise DistributionError(
                f"cannot pad to tau_max={tau_max} < current {self.tau_max}")
        probs = np.zeros(tau_max + 1)
        probs[: self._probs.size] = self._probs
        return Pmf(probs)

    def rebinned(self, factor: int) -> "Pmf":
        """Coarsen the PMF by merging ``factor`` adjacent bins into one.

        Used when an estimator chooses a coarser quantization to keep the
        WCDE bisection cheap for very large demands.
        """
        if factor < 1:
            raise DistributionError("rebinning factor must be >= 1")
        if factor == 1:
            return self
        size = (self._probs.size + factor - 1) // factor
        probs = np.zeros(size)
        for l, p in enumerate(self._probs):
            probs[l // factor] += p
        return Pmf(probs, normalize=True)

    def mixed_with(self, other: "Pmf", weight: float) -> "Pmf":
        """Convex mixture ``(1 - weight) * self + weight * other``.

        Handy for smoothing an empirical PMF with a prior so the KL ball in
        the WCDE problem has full support.
        """
        if not 0.0 <= weight <= 1.0:
            raise DistributionError(f"mixture weight {weight} outside [0, 1]")
        size = max(self._probs.size, other._probs.size)
        a = self.padded(size - 1) if self._probs.size < size else self
        b = other.padded(size - 1) if other._probs.size < size else other
        return Pmf((1.0 - weight) * a.probs + weight * b.probs, normalize=True)


def kl_divergence(p: Union[Pmf, npt.NDArray[np.float64]],
                  q: Union[Pmf, npt.NDArray[np.float64]]) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in nats.

    This is the "relative entropy" distance of constraint (5) in the paper:
    ``sum_l p_l * ln(p_l / q_l)`` with the conventions ``0 ln 0 = 0`` and
    ``p_l > 0, q_l = 0  =>  +inf``.  The supports are aligned by padding
    the shorter vector with zero bins.
    """
    pv = p.probs if isinstance(p, Pmf) else np.asarray(p, dtype=float)
    qv = q.probs if isinstance(q, Pmf) else np.asarray(q, dtype=float)
    size = max(pv.size, qv.size)
    if pv.size < size:
        pv = np.pad(pv, (0, size - pv.size))
    if qv.size < size:
        qv = np.pad(qv, (0, size - qv.size))
    mask = pv > _PROB_ATOL
    if np.any(qv[mask] <= _PROB_ATOL):
        return math.inf
    return float(np.sum(pv[mask] * np.log(pv[mask] / qv[mask])))


def _erf(x: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Vectorized error function (scipy-free fallback is not needed)."""
    from scipy.special import erf

    return erf(x)
