"""Gaussian estimator — the paper's second DE class.

Learns the sample mean and sample variance of task runtimes and, invoking
the central limit theorem, reports a Gaussian for the total demand of the
pending tasks: mean ``n * m``, variance ``n * s^2`` (Section IV).  This is
the estimator used for every end-to-end experiment in the paper.

Before ``min_samples`` task runtimes have been observed the estimator
falls back to its prior (or to a deliberately wide default spread), which
reproduces the cold-start behaviour Figure 3 studies: with too few samples
the reported distribution simply cannot cover the true demand at the
requested percentile, no matter the entropy threshold.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.pmf import Pmf

__all__ = ["GaussianEstimator"]


class GaussianEstimator(DistributionEstimator):
    """CLT-based demand estimate from task-runtime samples.

    Parameters
    ----------
    prior_mean, prior_std:
        Per-task runtime prior (slots) used while fewer than
        ``min_samples`` samples exist.  ``prior_std`` defaults to
        ``default_cv * prior_mean``.
    min_samples:
        Number of samples needed before the empirical moments are trusted.
    default_cv:
        Coefficient of variation assumed when no spread information is
        available (only the mean is known).
    """

    def __init__(self, prior_mean: float | None = None,
                 prior_std: float | None = None,
                 min_samples: int = 2,
                 default_cv: float = 0.5) -> None:
        super().__init__()
        if prior_mean is not None and prior_mean <= 0:
            raise EstimationError(f"prior_mean must be positive, got {prior_mean}")
        if prior_std is not None and prior_std < 0:
            raise EstimationError(f"prior_std must be >= 0, got {prior_std}")
        if min_samples < 1:
            raise EstimationError(f"min_samples must be >= 1, got {min_samples}")
        if default_cv < 0:
            raise EstimationError(f"default_cv must be >= 0, got {default_cv}")
        self._prior_mean = prior_mean
        self._prior_std = prior_std
        self._min_samples = min_samples
        self._default_cv = default_cv

    def task_moments(self) -> tuple[float, float]:
        """Current (mean, std) belief for a single task runtime in slots."""
        if self.sample_count >= self._min_samples:
            mean = self._sample_mean()
            std = self._sample_std()
            # rushlint: disable=RL003 (exact-zero sentinel: the sample
            # std of identical observations is exactly 0.0, the trigger
            # for the coefficient-of-variation fallback)
            if std == 0.0:
                std = self._default_cv * mean if self.sample_count < 2 else 0.0
            return mean, std
        if self.sample_count > 0 and self._prior_mean is None:
            mean = self._sample_mean()
            return mean, self._default_cv * mean
        if self._prior_mean is None:
            raise EstimationError(
                "GaussianEstimator has no runtime samples and no prior_mean")
        std = (self._prior_std if self._prior_std is not None
               else self._default_cv * self._prior_mean)
        return self._prior_mean, std

    def _report(self, pending_tasks: int) -> DemandEstimate:
        mean, std = self.task_moments()
        if pending_tasks == 0:
            return self._zero_demand_estimate(mean, self.sample_count)
        total_mean = mean * pending_tasks
        total_std = std * math.sqrt(pending_tasks)
        upper = total_mean + 6.0 * total_std
        width = self._choose_bin_width(upper)
        pmf = Pmf.from_gaussian(total_mean / width, total_std / width,
                                tau_max=max(1, int(math.ceil(upper / width))))
        return DemandEstimate(pmf=pmf, bin_width=width,
                              container_runtime=mean,
                              sample_count=self.sample_count)
