"""Empirical (histogram) estimator — an extension beyond the paper.

The paper ships a mean-impulse and a Gaussian DE class and notes that
other techniques "can be implemented as distribution estimation classes
and integrated into our system".  This class is such an integration: it
keeps the raw histogram of observed task runtimes and estimates the total
remaining demand either

* *exactly*, by convolving the per-task histogram ``pending_tasks`` times
  (for small task counts), or
* via the CLT using the *empirical* moments (for large task counts),

which captures skewed runtime distributions (e.g. stragglers) better than
a symmetric Gaussian while staying cheap.

:class:`TraceFittedEstimators` builds on it for *trace replay*: it pools
the realized task durations of a warm-up prefix of a workload per job
class (the spec's ``template`` label — for SWF traces the application
number) and hands every later arrival an :class:`EmpiricalEstimator`
pre-seeded with its class's empirical distribution.  This is the
calibrate-against-real-history loop of ROADMAP item 2; the calibration
ledger scores the resulting completion promises on the held-out suffix.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.pmf import Pmf

if TYPE_CHECKING:  # imported lazily: estimation must not pull in cluster
    from repro.cluster.job import JobSpec

__all__ = ["EmpiricalEstimator", "TraceFittedEstimators", "split_warmup"]


class EmpiricalEstimator(DistributionEstimator):
    """Histogram-based demand estimate with exact small-n convolution.

    Parameters
    ----------
    prior_runtime:
        Per-task runtime (slots) assumed before any sample arrives.
    convolution_limit:
        Largest pending-task count for which the exact n-fold convolution
        of the runtime histogram is computed; beyond it the estimator
        switches to the CLT on empirical moments.
    smoothing:
        Weight of a uniform smoothing mixture applied to the per-task
        histogram so the reference distribution has no spurious zero bins
        inside its range (zero bins make the KL ball degenerate).
    """

    def __init__(self, prior_runtime: float | None = None,
                 convolution_limit: int = 8,
                 smoothing: float = 0.01) -> None:
        super().__init__()
        if prior_runtime is not None and prior_runtime <= 0:
            raise EstimationError(f"prior_runtime must be positive, got {prior_runtime}")
        if convolution_limit < 1:
            raise EstimationError(
                f"convolution_limit must be >= 1, got {convolution_limit}")
        if not 0.0 <= smoothing < 1.0:
            raise EstimationError(f"smoothing must be in [0, 1), got {smoothing}")
        self._prior_runtime = prior_runtime
        self._convolution_limit = convolution_limit
        self._smoothing = smoothing

    def task_pmf(self) -> Pmf:
        """Smoothed per-task runtime histogram (bin width 1 slot)."""
        if self.sample_count == 0:
            if self._prior_runtime is None:
                raise EstimationError(
                    "EmpiricalEstimator has no runtime samples and no prior_runtime")
            return Pmf.impulse(int(round(self._prior_runtime)))
        base = Pmf.from_samples(self._samples)
        # rushlint: disable=RL003 (exact-zero config sentinel: only a
        # literal 0 skips the mixture; tiny smoothing weights are real)
        if self._smoothing == 0.0:
            return base
        lo, hi = base.support_min(), base.support_max()
        uniform = np.zeros(base.tau_max + 1)
        uniform[lo: hi + 1] = 1.0
        return base.mixed_with(Pmf(uniform, normalize=True), self._smoothing)

    def _mean_runtime(self) -> float:
        if self.sample_count > 0:
            return self._sample_mean()
        if self._prior_runtime is None:
            raise EstimationError(
                "EmpiricalEstimator has no runtime samples and no prior_runtime")
        return self._prior_runtime

    def _report(self, pending_tasks: int) -> DemandEstimate:
        runtime = self._mean_runtime()
        if pending_tasks == 0:
            return self._zero_demand_estimate(runtime, self.sample_count)
        task = self.task_pmf()
        if pending_tasks <= self._convolution_limit:
            probs = task.probs
            total = probs
            for _ in range(pending_tasks - 1):
                total = np.convolve(total, probs)
            pmf = Pmf(total, normalize=True)
            width = self._choose_bin_width(pmf.tau_max)
            if width > 1.0:
                pmf = pmf.rebinned(int(width))
            return DemandEstimate(pmf=pmf, bin_width=width,
                                  container_runtime=runtime,
                                  sample_count=self.sample_count)
        mean = task.mean() * pending_tasks
        std = task.std() * math.sqrt(pending_tasks)
        upper = mean + 6.0 * std
        width = self._choose_bin_width(upper)
        pmf = Pmf.from_gaussian(mean / width, std / width,
                                tau_max=max(1, int(math.ceil(upper / width))))
        return DemandEstimate(pmf=pmf, bin_width=width,
                              container_runtime=runtime,
                              sample_count=self.sample_count)


def split_warmup(specs: Sequence[JobSpec],
                 warmup_fraction: float = 0.4) -> Tuple[List[JobSpec], List[JobSpec]]:
    """Split a workload into (warm-up prefix, held-out suffix) by arrival.

    The prefix is what :meth:`TraceFittedEstimators.fit` learns from; the
    suffix is what a replay simulates and the calibration ledger scores.
    At least one job lands on each side whenever ``len(specs) >= 2``.
    """
    if not 0.0 < warmup_fraction < 1.0:
        raise EstimationError(
            f"warmup_fraction must be in (0, 1), got {warmup_fraction}")
    ordered = sorted(specs, key=lambda s: (s.arrival, s.job_id))
    if len(ordered) < 2:
        return list(ordered), []
    cut = int(round(len(ordered) * warmup_fraction))
    cut = min(max(cut, 1), len(ordered) - 1)
    return ordered[:cut], ordered[cut:]


class TraceFittedEstimators:
    """Per-class empirical duration distributions learned from a trace.

    Parameters
    ----------
    class_samples:
        Mapping of job-class label (``JobSpec.template``) to the observed
        per-task durations of that class, in slots.
    max_seed_samples:
        Cap on the samples seeded into each per-job estimator.  Larger
        pools are thinned *deterministically* (evenly spaced over the
        sorted pool), which preserves the distribution's shape while
        keeping the n-fold convolution cheap.
    convolution_limit / smoothing:
        Forwarded to each :class:`EmpiricalEstimator`.
    default_prior:
        Per-task runtime prior for jobs of a class never seen in the
        warm-up prefix (and carrying no ``prior_runtime`` of their own).
    """

    def __init__(self, class_samples: Mapping[str, Sequence[float]], *,
                 max_seed_samples: int = 128,
                 convolution_limit: int = 6,
                 smoothing: float = 0.01,
                 default_prior: float = 10.0) -> None:
        if max_seed_samples < 1:
            raise EstimationError(
                f"max_seed_samples must be >= 1, got {max_seed_samples}")
        if default_prior <= 0:
            raise EstimationError(
                f"default_prior must be positive, got {default_prior}")
        self._max_seed = max_seed_samples
        self._convolution_limit = convolution_limit
        self._smoothing = smoothing
        self._default_prior = default_prior
        self._seeds: Dict[str, Tuple[float, ...]] = {}
        pooled: List[float] = []
        for label in sorted(class_samples):
            samples = [float(s) for s in class_samples[label] if s > 0]
            if not samples:
                continue
            self._seeds[label] = self._thin(samples)
            pooled.extend(samples)
        # The cross-class pool backs jobs of classes absent from the
        # warm-up prefix: a weaker prior than a class fit, but still
        # empirical rather than parametric.
        self._pooled: Tuple[float, ...] = self._thin(pooled) if pooled else ()

    @classmethod
    def fit(cls, warmup_specs: Sequence[JobSpec], *,
            max_seed_samples: int = 128,
            convolution_limit: int = 6,
            smoothing: float = 0.01,
            default_prior: float = 10.0) -> "TraceFittedEstimators":
        """Pool the realized task durations of a warm-up prefix per class."""
        by_class: Dict[str, List[float]] = {}
        for spec in warmup_specs:
            label = spec.template or "untemplated"
            by_class.setdefault(label, []).extend(
                float(d) for d in spec.task_durations)
        return cls(by_class, max_seed_samples=max_seed_samples,
                   convolution_limit=convolution_limit, smoothing=smoothing,
                   default_prior=default_prior)

    def _thin(self, samples: Sequence[float]) -> Tuple[float, ...]:
        ordered = sorted(samples)
        n = len(ordered)
        if n <= self._max_seed:
            return tuple(ordered)
        # Evenly spaced ranks over the sorted pool: a deterministic
        # quantile sketch of the empirical distribution.
        idx = np.linspace(0, n - 1, self._max_seed)
        return tuple(ordered[int(i)] for i in np.round(idx))

    # -- introspection -----------------------------------------------------

    @property
    def classes(self) -> List[str]:
        """Fitted class labels, sorted."""
        return sorted(self._seeds)

    def seed_samples(self, label: str) -> Tuple[float, ...]:
        """The (thinned) duration pool a job of ``label`` is seeded with."""
        return self._seeds.get(label, self._pooled)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class sample count / mean / std of the seeded pools."""
        out: Dict[str, Dict[str, float]] = {}
        for label in self.classes:
            pool = np.asarray(self._seeds[label], dtype=float)
            out[label] = {
                "samples": float(pool.size),
                "mean": float(pool.mean()),
                "std": float(pool.std(ddof=1)) if pool.size > 1 else 0.0,
            }
        return out

    # -- the factory RushScheduler consumes --------------------------------

    def estimator_for(self, spec: JobSpec) -> DistributionEstimator:
        """A fresh DE unit for one job, pre-seeded with its class's fit.

        The job's own completed-task samples accumulate *on top of* the
        trace history, so online observation still sharpens the estimate
        — the fit is a head start, not a straitjacket.
        """
        prior = spec.prior_runtime
        if prior is None or prior <= 0:
            prior = self._default_prior
        estimator = EmpiricalEstimator(
            prior_runtime=prior,
            convolution_limit=self._convolution_limit,
            smoothing=self._smoothing)
        seeds = self.seed_samples(spec.template or "untemplated")
        if seeds:
            estimator.observe_many(seeds)
        return estimator
