"""Empirical (histogram) estimator — an extension beyond the paper.

The paper ships a mean-impulse and a Gaussian DE class and notes that
other techniques "can be implemented as distribution estimation classes
and integrated into our system".  This class is such an integration: it
keeps the raw histogram of observed task runtimes and estimates the total
remaining demand either

* *exactly*, by convolving the per-task histogram ``pending_tasks`` times
  (for small task counts), or
* via the CLT using the *empirical* moments (for large task counts),

which captures skewed runtime distributions (e.g. stragglers) better than
a symmetric Gaussian while staying cheap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.pmf import Pmf

__all__ = ["EmpiricalEstimator"]


class EmpiricalEstimator(DistributionEstimator):
    """Histogram-based demand estimate with exact small-n convolution.

    Parameters
    ----------
    prior_runtime:
        Per-task runtime (slots) assumed before any sample arrives.
    convolution_limit:
        Largest pending-task count for which the exact n-fold convolution
        of the runtime histogram is computed; beyond it the estimator
        switches to the CLT on empirical moments.
    smoothing:
        Weight of a uniform smoothing mixture applied to the per-task
        histogram so the reference distribution has no spurious zero bins
        inside its range (zero bins make the KL ball degenerate).
    """

    def __init__(self, prior_runtime: float | None = None,
                 convolution_limit: int = 8,
                 smoothing: float = 0.01) -> None:
        super().__init__()
        if prior_runtime is not None and prior_runtime <= 0:
            raise EstimationError(f"prior_runtime must be positive, got {prior_runtime}")
        if convolution_limit < 1:
            raise EstimationError(
                f"convolution_limit must be >= 1, got {convolution_limit}")
        if not 0.0 <= smoothing < 1.0:
            raise EstimationError(f"smoothing must be in [0, 1), got {smoothing}")
        self._prior_runtime = prior_runtime
        self._convolution_limit = convolution_limit
        self._smoothing = smoothing

    def task_pmf(self) -> Pmf:
        """Smoothed per-task runtime histogram (bin width 1 slot)."""
        if self.sample_count == 0:
            if self._prior_runtime is None:
                raise EstimationError(
                    "EmpiricalEstimator has no runtime samples and no prior_runtime")
            return Pmf.impulse(int(round(self._prior_runtime)))
        base = Pmf.from_samples(self._samples)
        # rushlint: disable=RL003 (exact-zero config sentinel: only a
        # literal 0 skips the mixture; tiny smoothing weights are real)
        if self._smoothing == 0.0:
            return base
        lo, hi = base.support_min(), base.support_max()
        uniform = np.zeros(base.tau_max + 1)
        uniform[lo: hi + 1] = 1.0
        return base.mixed_with(Pmf(uniform, normalize=True), self._smoothing)

    def _mean_runtime(self) -> float:
        if self.sample_count > 0:
            return self._sample_mean()
        if self._prior_runtime is None:
            raise EstimationError(
                "EmpiricalEstimator has no runtime samples and no prior_runtime")
        return self._prior_runtime

    def _report(self, pending_tasks: int) -> DemandEstimate:
        runtime = self._mean_runtime()
        if pending_tasks == 0:
            return self._zero_demand_estimate(runtime, self.sample_count)
        task = self.task_pmf()
        if pending_tasks <= self._convolution_limit:
            probs = task.probs
            total = probs
            for _ in range(pending_tasks - 1):
                total = np.convolve(total, probs)
            pmf = Pmf(total, normalize=True)
            width = self._choose_bin_width(pmf.tau_max)
            if width > 1.0:
                pmf = pmf.rebinned(int(width))
            return DemandEstimate(pmf=pmf, bin_width=width,
                                  container_runtime=runtime,
                                  sample_count=self.sample_count)
        mean = task.mean() * pending_tasks
        std = task.std() * math.sqrt(pending_tasks)
        upper = mean + 6.0 * std
        width = self._choose_bin_width(upper)
        pmf = Pmf.from_gaussian(mean / width, std / width,
                                tau_max=max(1, int(math.ceil(upper / width))))
        return DemandEstimate(pmf=pmf, bin_width=width,
                              container_runtime=runtime,
                              sample_count=self.sample_count)
