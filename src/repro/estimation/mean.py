"""Mean time estimator — the paper's first DE class.

Reports "an impulse distribution at the bin equal to the multiple of the
mean container runtime and the number of pending tasks" (Section IV).  It
captures no dispersion, so all of RUSH's robustness must come from the
entropy threshold — a useful contrast to the Gaussian estimator in the
ablation benchmarks.  Note that an impulse has a single-point support, so
the WCDE worst case collapses onto the impulse itself regardless of
``delta``: the mean estimator trusts its point estimate completely.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.pmf import Pmf

__all__ = ["MeanTimeEstimator"]


class MeanTimeEstimator(DistributionEstimator):
    """Impulse estimate at ``mean_runtime * pending_tasks``.

    Parameters
    ----------
    prior_runtime:
        Mean task runtime (slots) assumed before any sample arrives, e.g.
        from benchmarking the job template.  Without it, estimating with
        zero samples raises :class:`~repro.errors.EstimationError`.
    """

    def __init__(self, prior_runtime: float | None = None) -> None:
        super().__init__()
        if prior_runtime is not None and prior_runtime <= 0:
            raise EstimationError(
                f"prior_runtime must be positive, got {prior_runtime}")
        self._prior_runtime = prior_runtime

    def mean_runtime(self) -> float:
        """Current belief about the mean task runtime in slots."""
        if self.sample_count > 0:
            return self._sample_mean()
        if self._prior_runtime is not None:
            return self._prior_runtime
        raise EstimationError(
            "MeanTimeEstimator has no runtime samples and no prior_runtime")

    def _report(self, pending_tasks: int) -> DemandEstimate:
        runtime = self.mean_runtime()
        if pending_tasks == 0:
            return self._zero_demand_estimate(runtime, self.sample_count)
        demand = runtime * pending_tasks
        width = self._choose_bin_width(demand)
        bin_index = int(round(demand / width))
        return DemandEstimate(pmf=Pmf.impulse(bin_index), bin_width=width,
                              container_runtime=runtime,
                              sample_count=self.sample_count)
