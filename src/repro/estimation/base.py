"""Distribution estimator (DE) interface.

Each job in RUSH owns a DE unit that watches the runtimes of its completed
tasks and periodically reports (Section IV):

* a quantized reference distribution ``phi_i`` of the job's *remaining*
  total demand ``v_i`` in container-time-slots, and
* the average container runtime ``R_i`` used by the continuous
  time-slot mapping.

Estimates carry an explicit ``bin_width`` so an estimator may coarsen its
quantization for very large demands and keep the WCDE bisection cheap; all
demand figures exposed to callers are already converted back to
container-time-slots.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError, EstimationError
from repro.estimation.pmf import Pmf

__all__ = ["DemandEstimate", "DistributionEstimator"]


@dataclass(frozen=True)
class DemandEstimate:
    """A DE unit's report for one job.

    Attributes
    ----------
    pmf:
        Quantized distribution of the remaining demand; bin ``l`` stands
        for ``l * bin_width`` container-time-slots.
    bin_width:
        Container-time-slots per bin (>= 1 in practice, but any positive
        value is accepted).
    container_runtime:
        The average container runtime ``R_i`` in slots.
    sample_count:
        How many completed-task runtime samples back this estimate.
    """

    pmf: Pmf
    bin_width: float
    container_runtime: float
    sample_count: int

    def __post_init__(self) -> None:
        if self.bin_width <= 0 or not math.isfinite(self.bin_width):
            raise ConfigurationError(f"bin_width must be positive, got {self.bin_width}")
        if self.container_runtime <= 0 or not math.isfinite(self.container_runtime):
            raise ConfigurationError(
                f"container_runtime must be positive, got {self.container_runtime}")
        if self.sample_count < 0:
            raise ConfigurationError(
                f"sample_count must be >= 0, got {self.sample_count}")

    def demand_at(self, bin_index: int) -> float:
        """Container-time-slots represented by ``bin_index``."""
        return bin_index * self.bin_width

    def mean_demand(self) -> float:
        """Expected remaining demand in container-time-slots."""
        return self.pmf.mean() * self.bin_width

    def quantile_demand(self, theta: float) -> float:
        """The theta-quantile of the remaining demand, in slots."""
        return self.pmf.quantile(theta) * self.bin_width

    def fingerprint(self) -> tuple[bytes, float]:
        """Content key of everything a robust-demand solve depends on.

        Two estimates with equal fingerprints yield identical WCDE
        answers (in slots) for any ``(theta, delta)``: the key covers the
        exact reference distribution and the bin width that converts its
        quantiles to container-time-slots.  ``container_runtime`` and
        ``sample_count`` are deliberately excluded — they do not enter
        the solve.
        """
        return (self.pmf.fingerprint(), self.bin_width)


class DistributionEstimator(ABC):
    """Online estimator of one job's remaining-demand distribution.

    The resource manager calls :meth:`observe` whenever one of the job's
    tasks completes, and :meth:`estimate` whenever the scheduler needs a
    fresh report.  Subclasses implement :meth:`_report`; sample bookkeeping
    is shared here.
    """

    #: Bins above this count are coarsened by widening ``bin_width``.
    max_bins: int = 8192

    def __init__(self) -> None:
        self._samples: List[float] = []

    def observe(self, runtime: float) -> None:
        """Record the runtime (in slots) of one completed task."""
        if runtime <= 0 or not math.isfinite(runtime):
            raise EstimationError(f"task runtime must be positive, got {runtime}")
        self._samples.append(float(runtime))

    def observe_many(self, runtimes: Iterable[float]) -> None:
        for runtime in runtimes:
            self.observe(runtime)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the recorded runtime samples."""
        return list(self._samples)

    def estimate(self, pending_tasks: int) -> DemandEstimate:
        """Report the remaining-demand distribution for ``pending_tasks``."""
        if pending_tasks < 0:
            raise EstimationError(f"pending_tasks must be >= 0, got {pending_tasks}")
        return self._report(pending_tasks)

    @abstractmethod
    def _report(self, pending_tasks: int) -> DemandEstimate:
        """Build the estimate; ``pending_tasks`` is guaranteed >= 0."""

    # -- shared helpers ---------------------------------------------------

    def _sample_mean(self) -> float:
        return sum(self._samples) / len(self._samples)

    def _sample_std(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self._sample_mean()
        var = sum((s - mean) ** 2 for s in self._samples) / (n - 1)
        return math.sqrt(var)

    @classmethod
    def _choose_bin_width(cls, demand_upper: float) -> float:
        """Pick a bin width so the PMF support stays within ``max_bins``."""
        if demand_upper <= cls.max_bins:
            return 1.0
        return math.ceil(demand_upper / cls.max_bins)

    @staticmethod
    def _zero_demand_estimate(runtime: float, samples: int) -> DemandEstimate:
        """Estimate for a job with no pending tasks: an impulse at zero."""
        return DemandEstimate(pmf=Pmf.impulse(0), bin_width=1.0,
                              container_runtime=max(runtime, 1e-9),
                              sample_count=samples)
