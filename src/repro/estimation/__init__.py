"""Distribution estimation: PMF toolkit and the DE unit classes."""

from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.empirical import (EmpiricalEstimator,
                                        TraceFittedEstimators, split_warmup)
from repro.estimation.ewma import EwmaGaussianEstimator
from repro.estimation.failure import FailureAwareEstimator
from repro.estimation.gaussian import GaussianEstimator
from repro.estimation.mean import MeanTimeEstimator
from repro.estimation.pmf import Pmf, kl_divergence

__all__ = [
    "Pmf",
    "kl_divergence",
    "DemandEstimate",
    "DistributionEstimator",
    "MeanTimeEstimator",
    "GaussianEstimator",
    "EmpiricalEstimator",
    "TraceFittedEstimators",
    "split_warmup",
    "EwmaGaussianEstimator",
    "FailureAwareEstimator",
]
