"""Failure-aware demand estimation — the paper's stated future work.

The conclusion of the paper announces: "To further improve the robustness
of the scheduler, we plan to include the estimation of task failure
probability in our future work."  This module implements that plan as a
DE-class wrapper, exactly the extension path Section VI describes for new
estimators.

A :class:`FailureAwareEstimator` wraps any base estimator and

* learns the per-attempt failure probability online from the stream of
  completions and failures, with a Beta prior so cold jobs are not
  assumed immortal;
* tracks how much work failed attempts waste before dying;
* inflates the base demand estimate by the expected re-execution work:
  with failure probability ``p`` and mean wasted fraction ``w`` (of one
  task runtime), each logical task costs on average
  ``R * (1 + w * p / (1 - p))`` container-time-slots.

The inflation is applied to the estimate's ``bin_width``, so the whole
distribution — and therefore the WCDE worst case — scales consistently.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator

__all__ = ["FailureAwareEstimator"]


class FailureAwareEstimator(DistributionEstimator):
    """Wrap a base DE unit with online failure-probability estimation.

    Parameters
    ----------
    base:
        Any :class:`~repro.estimation.base.DistributionEstimator`; its
        report is rescaled by the expected re-execution multiplier.
    prior_failures, prior_attempts:
        Beta-prior pseudo-counts for the failure probability; the default
        encodes a weak 5 % prior (0.5 failures in 10 attempts).
    max_failure_rate:
        Upper clamp on the estimated rate, keeping the multiplier finite
        when a job's early attempts all fail.
    """

    def __init__(self, base: DistributionEstimator, *,
                 prior_failures: float = 0.5,
                 prior_attempts: float = 10.0,
                 max_failure_rate: float = 0.9) -> None:
        super().__init__()
        if prior_failures < 0 or prior_attempts <= 0:
            raise EstimationError("Beta prior pseudo-counts must be positive")
        if prior_failures >= prior_attempts:
            raise EstimationError("prior_failures must be < prior_attempts")
        if not 0.0 < max_failure_rate < 1.0:
            raise EstimationError(
                f"max_failure_rate must be in (0, 1), got {max_failure_rate}")
        self._base = base
        self._prior_failures = prior_failures
        self._prior_attempts = prior_attempts
        self._max_rate = max_failure_rate
        self._failures = 0
        self._wasted: List[float] = []

    # -- observations -------------------------------------------------------

    def observe(self, runtime: float) -> None:
        """A task attempt completed; forward the sample to the base DE."""
        super().observe(runtime)
        self._base.observe(runtime)

    def observe_failure(self, wasted_runtime: float) -> None:
        """A task attempt failed after executing ``wasted_runtime`` slots."""
        if wasted_runtime < 0 or not math.isfinite(wasted_runtime):
            raise EstimationError(
                f"wasted_runtime must be finite and >= 0, got {wasted_runtime}")
        self._failures += 1
        self._wasted.append(float(wasted_runtime))

    # -- learned failure model -----------------------------------------------

    @property
    def failure_count(self) -> int:
        return self._failures

    def failure_rate(self) -> float:
        """Posterior-mean failure probability per task attempt."""
        attempts = self.sample_count + self._failures + self._prior_attempts
        rate = (self._failures + self._prior_failures) / attempts
        return min(rate, self._max_rate)

    def mean_wasted_fraction(self, container_runtime: float) -> float:
        """Average work a failed attempt wastes, as a fraction of ``R``.

        Falls back to 0.5 — a uniformly-timed failure point — before any
        failure has been observed.
        """
        if not self._wasted:
            return 0.5
        mean_wasted = sum(self._wasted) / len(self._wasted)
        return min(mean_wasted / max(container_runtime, 1e-9), 1.0)

    def work_multiplier(self, container_runtime: float) -> float:
        """Expected container-slots per logical task, in units of ``R``.

        A logical task needs on average ``p / (1 - p)`` failed attempts
        before its successful one, each wasting ``w * R`` slots:
        ``m = 1 + w * p / (1 - p)``.
        """
        rate = self.failure_rate()
        wasted = self.mean_wasted_fraction(container_runtime)
        return 1.0 + wasted * rate / (1.0 - rate)

    # -- reporting ---------------------------------------------------------

    def _report(self, pending_tasks: int) -> DemandEstimate:
        base = self._base.estimate(pending_tasks)
        if pending_tasks == 0:
            return base
        multiplier = self.work_multiplier(base.container_runtime)
        return DemandEstimate(
            pmf=base.pmf,
            bin_width=base.bin_width * multiplier,
            container_runtime=base.container_runtime,
            sample_count=base.sample_count)
