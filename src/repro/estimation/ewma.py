"""Exponentially-weighted Gaussian estimator — a drift-tolerant DE class.

The paper's related-work section points at online runtime-estimation
techniques (linear regression over job history, etc.) and notes they "can
be implemented as distribution estimation classes and integrated into our
system".  This class is such an integration for the most common
non-stationarity in shared clouds: task runtimes that *drift* as cluster
interference waxes and wanes.  It keeps exponentially-weighted estimates
of the task-runtime mean and variance, so recent samples dominate and the
reported demand distribution tracks the current regime instead of
averaging over stale history like the plain Gaussian estimator.
"""

from __future__ import annotations

import math

from repro.errors import EstimationError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.pmf import Pmf

__all__ = ["EwmaGaussianEstimator"]


class EwmaGaussianEstimator(DistributionEstimator):
    """CLT demand estimate from exponentially-weighted runtime moments.

    Parameters
    ----------
    alpha:
        Weight of the newest sample in ``(0, 1]``; the effective memory
        is roughly ``1 / alpha`` samples.
    prior_mean, prior_std:
        Belief used before the first sample arrives and blended in while
        the weight accumulated is still small.
    min_std_fraction:
        Floor on the reported std as a fraction of the mean, so a quiet
        stretch of identical samples does not collapse the distribution
        into an overconfident impulse.
    """

    def __init__(self, alpha: float = 0.1,
                 prior_mean: float | None = None,
                 prior_std: float | None = None,
                 min_std_fraction: float = 0.05) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise EstimationError(f"alpha must be in (0, 1], got {alpha}")
        if prior_mean is not None and prior_mean <= 0:
            raise EstimationError(f"prior_mean must be positive, got {prior_mean}")
        if prior_std is not None and prior_std < 0:
            raise EstimationError(f"prior_std must be >= 0, got {prior_std}")
        if min_std_fraction < 0:
            raise EstimationError(
                f"min_std_fraction must be >= 0, got {min_std_fraction}")
        self._alpha = alpha
        self._prior_mean = prior_mean
        self._prior_std = prior_std
        self._min_std_fraction = min_std_fraction
        self._ew_mean: float | None = None
        self._ew_var = 0.0

    def observe(self, runtime: float) -> None:
        super().observe(runtime)
        if self._ew_mean is None:
            self._ew_mean = float(runtime)
            prior_std = self._prior_std if self._prior_std is not None else 0.0
            self._ew_var = prior_std ** 2
            return
        # standard EW mean/variance recursion (West 1979)
        delta = float(runtime) - self._ew_mean
        self._ew_mean += self._alpha * delta
        self._ew_var = (1.0 - self._alpha) * (self._ew_var
                                              + self._alpha * delta * delta)

    def task_moments(self) -> tuple[float, float]:
        """Current (mean, std) belief for one task runtime in slots."""
        if self._ew_mean is None:
            if self._prior_mean is None:
                raise EstimationError(
                    "EwmaGaussianEstimator has no samples and no prior_mean")
            std = (self._prior_std if self._prior_std is not None
                   else 0.5 * self._prior_mean)
            return self._prior_mean, std
        mean = self._ew_mean
        std = math.sqrt(max(self._ew_var, 0.0))
        std = max(std, self._min_std_fraction * mean)
        return mean, std

    def _report(self, pending_tasks: int) -> DemandEstimate:
        mean, std = self.task_moments()
        if pending_tasks == 0:
            return self._zero_demand_estimate(mean, self.sample_count)
        total_mean = mean * pending_tasks
        total_std = std * math.sqrt(pending_tasks)
        upper = total_mean + 6.0 * total_std
        width = self._choose_bin_width(upper)
        pmf = Pmf.from_gaussian(total_mean / width, total_std / width,
                                tau_max=max(1, int(math.ceil(upper / width))))
        return DemandEstimate(pmf=pmf, bin_width=width,
                              container_runtime=mean,
                              sample_count=self.sample_count)
