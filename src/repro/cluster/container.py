"""Containers: the homogeneous resource unit of the YARN-like substrate.

The paper packs and apportions cluster resources in homogeneous units
called *containers* (heterogeneous container sizes are explicitly out of
scope).  A container runs at most one task at a time and, per the
continuity constraint, keeps it until completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.cluster.task import Task

__all__ = ["Container"]


@dataclass
class Container:
    """One container slot of the cluster."""

    container_id: int
    task: Optional[Task] = None
    #: First slot at which a revoked container may accept work again.
    #: Set by the container-crash fault injector; 0 means never revoked.
    offline_until: int = 0

    @property
    def is_free(self) -> bool:
        return self.task is None

    def is_available(self, now: int) -> bool:
        """Free *and* not currently revoked by a fault injector."""
        return self.task is None and now >= self.offline_until

    def assign(self, task: Task, now: int) -> None:
        """Launch ``task`` on this container at slot ``now``."""
        if self.task is not None:
            raise SimulationError(
                f"container {self.container_id} already runs {self.task.task_id!r}")
        task.launch(now)
        self.task = task

    def advance(self, now: int) -> Optional[Task]:
        """Progress the running task one slot; return it if it finished."""
        if self.task is None:
            return None
        if self.task.advance(now):
            finished = self.task
            self.task = None
            return finished
        return None
