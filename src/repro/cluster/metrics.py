"""Metrics collection for simulation runs.

Captures exactly the quantities the paper's evaluation reports:

* **latency** — "the difference between the actual job runtime and the
  time budget" (Figure 4); negative latency means the job beat its budget;
* **utility** — the value of the job's utility function at its achieved
  runtime (Figure 6);
* cluster utilization and scheduler-decision accounting, used by the
  overhead study (Figure 5).

Jobs still incomplete when a bounded simulation ends are recorded as
*censored*: their runtime is a lower bound (horizon minus arrival) and
their utility is evaluated at that bound, which — utilities being
non-increasing — upper-bounds the truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.job import JobSpec
from repro.faults.base import FaultEvent

__all__ = ["JobRecord", "SimulationResult", "lexicographic_compare"]


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in one simulation run."""

    job_id: str
    template: str
    sensitivity: str
    priority: float
    arrival: int
    budget: float
    benchmark_runtime: float
    runtime: float
    latency: float
    utility_value: float
    completed: bool

    @classmethod
    def from_spec(cls, spec: JobSpec, completion: Optional[int],
                  horizon: int) -> "JobRecord":
        if completion is not None:
            runtime = float(completion - spec.arrival)
            completed = True
        else:
            runtime = float(max(horizon - spec.arrival, 0))
            completed = False
        latency = runtime - spec.budget if math.isfinite(spec.budget) else math.nan
        return cls(job_id=spec.job_id, template=spec.template,
                   sensitivity=spec.sensitivity, priority=spec.priority,
                   arrival=spec.arrival, budget=spec.budget,
                   benchmark_runtime=spec.benchmark_runtime,
                   runtime=runtime, latency=latency,
                   utility_value=spec.utility.value(runtime),
                   completed=completed)


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run.

    ``timed_out`` marks a run truncated by its slot budget (its censored
    records are lower bounds, not outcomes).  ``fault_events`` is the
    full injected-fault stream of the run, and ``fallbacks`` counts the
    scheduler's degradation-ladder rungs (e.g. ``{"cold_exact": 2}``) —
    both empty for a healthy run.

    ``metrics`` is the :mod:`repro.obs` registry snapshot taken when the
    run ended — ``None`` unless observability was enabled for the run
    (``repro.obs.enable(metrics=True)``), so default runs stay
    byte-identical to pre-observability ones.
    """

    scheduler_name: str
    capacity: int
    slots_simulated: int
    records: List[JobRecord] = field(default_factory=list)
    busy_container_slots: int = 0
    scheduling_decisions: int = 0
    task_failures: int = 0
    speculative_launches: int = 0
    planner_seconds: float = 0.0
    timed_out: bool = False
    fault_events: List[FaultEvent] = field(default_factory=list)
    fallbacks: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[Dict[str, object]] = None

    def metrics_snapshot(self) -> Dict[str, object]:
        """The run's metrics-registry snapshot ({} when obs was off)."""
        return dict(self.metrics) if self.metrics else {}

    # -- selection helpers -------------------------------------------------

    def by_sensitivity(self, *classes: str) -> List[JobRecord]:
        """Records restricted to the given sensitivity classes."""
        wanted = set(classes)
        return [r for r in self.records if r.sensitivity in wanted]

    def latencies(self, *classes: str) -> List[float]:
        """Latency values (runtime - budget), optionally filtered by class."""
        records = self.by_sensitivity(*classes) if classes else self.records
        return [r.latency for r in records if not math.isnan(r.latency)]

    def utilities(self, *classes: str) -> List[float]:
        """Achieved utility values, optionally filtered by class."""
        records = self.by_sensitivity(*classes) if classes else self.records
        return [r.utility_value for r in records]

    # -- aggregates ----------------------------------------------------------

    @property
    def completed_count(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def zero_utility_fraction(self) -> float:
        """Fraction of jobs whose achieved utility is (numerically) zero."""
        if not self.records:
            return 0.0
        zeros = sum(1 for r in self.records if r.utility_value <= 1e-9)
        return zeros / len(self.records)

    @property
    def on_time_fraction(self) -> float:
        """Fraction of budgeted jobs finishing within their budget."""
        budgeted = [r for r in self.records if not math.isnan(r.latency)]
        if not budgeted:
            return 1.0
        return sum(1 for r in budgeted if r.latency <= 0 and r.completed) / len(budgeted)

    @property
    def utilization(self) -> float:
        """Busy container-slots over total container-slots."""
        denom = self.capacity * max(self.slots_simulated, 1)
        return self.busy_container_slots / denom

    def fault_count(self, kind: Optional[str] = None) -> int:
        """Injected-fault events, optionally restricted to one kind."""
        if kind is None:
            return len(self.fault_events)
        return sum(1 for e in self.fault_events if e.kind == kind)

    @property
    def fallback_count(self) -> int:
        """Total degradation-ladder fallbacks the scheduler recorded."""
        return sum(self.fallbacks.values())

    def total_utility(self) -> float:
        return sum(r.utility_value for r in self.records)

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible dump of the run (for external analysis)."""
        import dataclasses

        out = {
            "scheduler": self.scheduler_name,
            "capacity": self.capacity,
            "slots_simulated": self.slots_simulated,
            "busy_container_slots": self.busy_container_slots,
            "scheduling_decisions": self.scheduling_decisions,
            "task_failures": self.task_failures,
            "speculative_launches": self.speculative_launches,
            "planner_seconds": self.planner_seconds,
            "timed_out": self.timed_out,
            "fault_events": [e.to_dict() for e in self.fault_events],
            "fallbacks": dict(self.fallbacks),
            "records": [dataclasses.asdict(r) for r in self.records],
        }
        if self.metrics is not None:
            out["metrics"] = dict(self.metrics)
        return out

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` (NaN-safe JSON)."""
        import json
        import math
        from pathlib import Path

        def clean(obj):
            if isinstance(obj, float) and not math.isfinite(obj):
                return None
            if isinstance(obj, dict):
                return {k: clean(v) for k, v in obj.items()}
            if isinstance(obj, list):
                return [clean(v) for v in obj]
            return obj

        Path(path).write_text(
            json.dumps(clean(self.to_dict()), indent=2, sort_keys=True),
            encoding="utf-8")

    def save_csv(self, path) -> None:
        """Write the per-job records as CSV."""
        import csv
        import dataclasses

        fields = [f.name for f in dataclasses.fields(JobRecord)]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                writer.writerow(dataclasses.asdict(record))

    def min_utility(self) -> float:
        return min((r.utility_value for r in self.records), default=0.0)

    def sorted_utilities(self) -> List[float]:
        """The lexicographic comparison vector (non-decreasing utilities)."""
        return sorted(r.utility_value for r in self.records)


def lexicographic_compare(a: Sequence[float], b: Sequence[float]) -> int:
    """Compare two utility vectors under the paper's lexicographic order.

    Both vectors are sorted non-decreasingly first.  Returns 1 if ``a`` is
    lexicographically greater, -1 if smaller, 0 if equal — the order used
    by the RS objective in Section II.
    """
    sa, sb = sorted(a), sorted(b)
    for x, y in zip(sa, sb):
        if x > y + 1e-12:
            return 1
        if x < y - 1e-12:
            return -1
    if len(sa) != len(sb):  # compare padded with -inf: shorter is greater earlier
        return 1 if len(sa) < len(sb) else -1
    return 0
