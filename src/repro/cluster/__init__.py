"""The YARN-like cluster substrate: jobs, tasks, containers, simulator."""

from repro.cluster.container import Container
from repro.cluster.job import JobSpec, SimJob
from repro.cluster.metrics import JobRecord, SimulationResult, lexicographic_compare
from repro.cluster.simulator import ClusterSimulator, run_simulation
from repro.cluster.task import Task, TaskState

__all__ = [
    "Task",
    "TaskState",
    "Container",
    "JobSpec",
    "SimJob",
    "ClusterSimulator",
    "run_simulation",
    "JobRecord",
    "SimulationResult",
    "lexicographic_compare",
]
