"""Job specifications and their mutable runtime counterparts.

A :class:`JobSpec` is the immutable description the workload generator
produces (and the trace format serializes): arrival slot, the ground-truth
task durations, the utility function and the client-visible metadata
(priority, budget, sensitivity class).  The simulator instantiates a
:class:`SimJob` around it to track execution state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cluster.task import Task, TaskState
from repro.utility.base import UtilityFunction

__all__ = ["JobSpec", "SimJob"]


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job.

    Attributes
    ----------
    job_id:
        Unique identifier.
    arrival:
        Submission slot.
    task_durations:
        Ground-truth duration (slots) of each task.  Schedulers never see
        these directly; they only observe completed-task samples.
    utility:
        Utility function of the job's total completion-time (slots from
        arrival to the finish of its last task).
    priority:
        The client priority ``W`` (informational; the utility already
        encodes it).
    budget:
        Time budget ``B`` in slots; EDF sorts by ``arrival + budget`` and
        the latency metric is ``runtime - budget``.
    benchmark_runtime:
        Runtime of the job benchmarked with the whole cluster to itself
        (Section V-B); budgets are multiples of this.
    sensitivity:
        One of ``"critical"``, ``"sensitive"``, ``"insensitive"``.
    template:
        Name of the workload template the job came from.
    prior_runtime:
        Optional per-task runtime prior (slots) given to DE units before
        any sample exists — the analogue of clients benchmarking their
        application offline.
    failure_prob:
        Probability that any single task attempt fails partway and must
        be re-executed (the paper's stated future-work scenario).  The
        simulator injects failures; schedulers observe them through the
        ``on_task_failed`` hook.
    """

    job_id: str
    arrival: int
    task_durations: Tuple[int, ...]
    utility: UtilityFunction
    priority: float = 1.0
    budget: float = math.inf
    benchmark_runtime: float = math.nan
    sensitivity: str = "sensitive"
    template: str = ""
    prior_runtime: Optional[float] = None
    failure_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: arrival must be >= 0, got {self.arrival}")
        if len(self.task_durations) == 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: needs at least one task")
        if any(d < 1 for d in self.task_durations):
            raise ConfigurationError(
                f"job {self.job_id!r}: task durations must be >= 1 slot")
        if self.sensitivity not in ("critical", "sensitive", "insensitive"):
            raise ConfigurationError(
                f"job {self.job_id!r}: unknown sensitivity {self.sensitivity!r}")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ConfigurationError(
                f"job {self.job_id!r}: failure_prob must be in [0, 1), "
                f"got {self.failure_prob}")

    @property
    def total_work(self) -> int:
        """Ground-truth total demand in container-time-slots."""
        return int(sum(self.task_durations))

    @property
    def deadline(self) -> float:
        """Absolute deadline slot, ``arrival + budget``."""
        return self.arrival + self.budget


class SimJob:
    """Mutable execution state of one job inside the simulator.

    A job consists of *logical* tasks (one per entry of
    ``spec.task_durations``); each logical task may see several *attempts*
    over its lifetime — the original, retries after failures, and
    speculative duplicates raced against a straggling original.  The job
    is complete once every logical task has a completed attempt.
    """

    __slots__ = ("spec", "tasks", "_next_pending", "_running", "_failed",
                 "_pending", "_cancelled", "_completed_logical", "_live",
                 "_logical", "_speculative")

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.tasks: List[Task] = [
            Task(task_id=f"{spec.job_id}/t{k}", job_id=spec.job_id, duration=d)
            for k, d in enumerate(spec.task_durations)
        ]
        self._next_pending = 0
        self._pending = len(self.tasks)
        self._running = 0
        self._failed = 0
        self._cancelled = 0
        self._speculative = 0
        self._completed_logical: set = set()
        self._live: Dict[str, int] = {t.logical_id: 1 for t in self.tasks}
        self._logical = len(spec.task_durations)

    # -- identity passthroughs -------------------------------------------

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def arrival(self) -> int:
        return self.spec.arrival

    @property
    def utility(self) -> UtilityFunction:
        return self.spec.utility

    # -- state queries -----------------------------------------------------

    @property
    def pending_count(self) -> int:
        return self._pending

    @property
    def running_count(self) -> int:
        return self._running

    @property
    def completed_count(self) -> int:
        """Number of *logical* tasks with a completed attempt."""
        return len(self._completed_logical)

    @property
    def failed_count(self) -> int:
        """Number of failed task attempts so far."""
        return self._failed

    @property
    def cancelled_count(self) -> int:
        """Speculative attempts aborted because a sibling finished first."""
        return self._cancelled

    @property
    def speculative_count(self) -> int:
        """Speculative duplicate attempts launched over the job's life."""
        return self._speculative

    @property
    def is_complete(self) -> bool:
        return len(self._completed_logical) == self._logical

    @property
    def completion_time(self) -> Optional[int]:
        """Absolute slot by which every logical task completed."""
        if not self.is_complete:
            return None
        return max(t.finish_time for t in self.tasks
                   if t.state is TaskState.COMPLETED)  # type: ignore[type-var]

    def runtime_samples(self) -> List[float]:
        """Observed runtimes of completed tasks, in completion order.

        These are the samples schedulers may legitimately see; a fault
        injector may have corrupted them away from the ground truth.
        """
        return [t.runtime_sample for t in self.tasks
                if t.state is TaskState.COMPLETED]

    def running_task_ages(self, now: int) -> List[int]:
        """Slots each currently-running task has been executing."""
        return [now - t.start_time for t in self.tasks
                if t.state is TaskState.RUNNING and t.start_time is not None]

    def elapsed(self, now: int) -> int:
        """Slots since submission at time ``now``."""
        return max(0, now - self.spec.arrival)

    # -- state transitions (driven by the simulator) ----------------------

    def next_pending(self) -> Optional[Task]:
        """The next task to launch, or None when none is pending."""
        while self._next_pending < len(self.tasks):
            task = self.tasks[self._next_pending]
            if task.state is TaskState.PENDING:
                return task
            self._next_pending += 1
        return None

    def note_launched(self) -> None:
        # The pending pointer is not advanced here: next_pending() skips
        # non-PENDING tasks lazily, which stays correct when the launched
        # attempt was an appended duplicate rather than the scan head.
        self._pending -= 1
        self._running += 1

    def note_completed(self, task: Task) -> bool:
        """Record a completed attempt; True if its logical task was open.

        A late speculative sibling completing in the same slot as the
        winner returns False — its result is discarded.
        """
        self._running -= 1
        self._live[task.logical_id] -= 1
        if task.logical_id in self._completed_logical:
            return False
        self._completed_logical.add(task.logical_id)
        return True

    def note_failed(self, task: Task) -> Optional[Task]:
        """Record a failed attempt; queue a retry if no sibling survives.

        Returns the queued retry, or None when another attempt of the same
        logical task is still live (a speculative sibling keeps running).
        """
        self._running -= 1
        self._failed += 1
        self._live[task.logical_id] -= 1
        if self._live[task.logical_id] > 0:
            return None
        replacement = task.retry()
        self.tasks.append(replacement)
        self._pending += 1
        self._live[task.logical_id] += 1
        return replacement

    def note_cancelled(self, task: Task) -> None:
        """Record an aborted *running* speculative attempt."""
        self._running -= 1
        self._cancelled += 1
        self._live[task.logical_id] -= 1

    def cancel_pending_duplicates(self, logical_id: str) -> None:
        """Withdraw queued (never launched) duplicates of a logical task."""
        for task in self.tasks:
            if (task.logical_id == logical_id
                    and task.state is TaskState.PENDING):
                task.cancel()
                self._pending -= 1
                self._cancelled += 1
                self._live[logical_id] -= 1

    def speculate(self, logical_id: str, duration: int) -> Task:
        """Queue a speculative duplicate of a running logical task.

        ``duration`` is the duplicate's ground-truth runtime, chosen by
        the caller (typically the job's median task duration: a fresh
        attempt on a healthy container runs at typical speed).
        """
        if logical_id in self._completed_logical:
            raise ConfigurationError(
                f"logical task {logical_id!r} already completed")
        if self._live.get(logical_id, 0) < 1:
            raise ConfigurationError(
                f"logical task {logical_id!r} has no live attempt to race")
        self._speculative += 1
        duplicate = Task(
            task_id=f"{logical_id}~s{self._speculative}",
            job_id=self.spec.job_id, duration=duration,
            logical_id=logical_id)
        self.tasks.append(duplicate)
        self._pending += 1
        self._live[logical_id] += 1
        return duplicate

    def running_attempts(self) -> List[Task]:
        """Currently running attempts (for straggler detection)."""
        return [t for t in self.tasks if t.state is TaskState.RUNNING]

    def has_duplicate(self, logical_id: str) -> bool:
        """Whether more than one attempt of the logical task is live."""
        return self._live.get(logical_id, 0) > 1
