"""Tasks: the atomic unit of work occupying one container.

Following the paper's system model, a job consists of tasks that are "not
heavily correlated"; each task, once placed on a container, occupies it
continuously until it finishes (the continuity constraint of Section
III-C).  Task durations are drawn by the workload generator — the
simulator treats them as opaque ground truth that the schedulers can only
learn about through completed-task runtime samples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError

__all__ = ["TaskState", "Task"]


class TaskState(enum.Enum):
    """Lifecycle of a task inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Task:
    """One task with a fixed (but initially unknown to schedulers) duration.

    ``duration`` is in whole slots and must be >= 1.  ``start_time`` is the
    slot in which the task was launched; ``finish_time`` is the first slot
    boundary by which it is done (``start_time + duration``).
    """

    task_id: str
    job_id: str
    duration: int
    state: TaskState = TaskState.PENDING
    start_time: Optional[int] = None
    finish_time: Optional[int] = None
    remaining: int = field(default=0)
    #: Slots after which the task fails instead of progressing; None means
    #: the task is healthy.  Set by the simulator's failure injector when
    #: the job's spec carries a non-zero failure probability.
    fail_after: Optional[int] = None
    #: How many earlier attempts of the same logical task failed.
    attempt: int = 0
    #: Identity of the logical unit of work this attempt executes.  Retries
    #: and speculative duplicates of one task share a logical id; derived
    #: from the task id when not given.
    logical_id: str = ""
    #: Runtime the *schedulers* observe for this attempt, when it differs
    #: from the ground truth — set by the sample-corruption fault injector.
    #: None means the honest duration is reported.
    observed_duration: Optional[float] = None
    #: The duration this attempt was constructed with, before any fault
    #: injector stretched ``duration`` mid-flight.  Retries restart from
    #: here — otherwise straggler/burst inflation would compound across
    #: crash-retry cycles without bound.
    base_duration: int = 0

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise SimulationError(
                f"task {self.task_id!r}: duration must be >= 1 slot, "
                f"got {self.duration}")
        if self.fail_after is not None and self.fail_after < 1:
            raise SimulationError(
                f"task {self.task_id!r}: fail_after must be >= 1 slot")
        if not self.logical_id:
            self.logical_id = self.task_id.split("#", 1)[0].split("~", 1)[0]
        self.remaining = self.duration
        self.base_duration = self.duration

    def launch(self, now: int) -> None:
        """Transition to RUNNING at slot ``now``."""
        if self.state is not TaskState.PENDING:
            raise SimulationError(
                f"task {self.task_id!r} launched twice (state={self.state})")
        self.state = TaskState.RUNNING
        self.start_time = now
        self.remaining = self.duration

    def advance(self, now: int) -> bool:
        """Consume one slot of work; return True when the task ended.

        A task ends either by completing its full duration or by failing
        at its injected failure point; check :attr:`state` to tell which.
        """
        if self.state is not TaskState.RUNNING:
            raise SimulationError(
                f"task {self.task_id!r} advanced while {self.state}")
        self.remaining -= 1
        executed = self.duration - self.remaining
        if self.fail_after is not None and executed >= self.fail_after:
            self.state = TaskState.FAILED
            self.finish_time = now + 1
            return True
        if self.remaining <= 0:
            self.state = TaskState.COMPLETED
            self.finish_time = now + 1
            return True
        return False

    @property
    def executed(self) -> int:
        """Slots of work this attempt has consumed so far."""
        return self.duration - self.remaining

    @property
    def runtime_sample(self) -> float:
        """The runtime sample visible to schedulers and DE units.

        Ground truth unless a fault injector corrupted the observation;
        metrics always use the true ``duration``.
        """
        if self.observed_duration is not None:
            return float(self.observed_duration)
        return float(self.duration)

    def cancel(self) -> None:
        """Abort a pending or running attempt (a sibling finished first)."""
        if self.state not in (TaskState.PENDING, TaskState.RUNNING):
            raise SimulationError(
                f"task {self.task_id!r} cancelled while {self.state}")
        self.state = TaskState.CANCELLED

    def retry(self) -> "Task":
        """A fresh attempt of this logical task (same ground-truth work)."""
        if self.state is not TaskState.FAILED:
            raise SimulationError(
                f"task {self.task_id!r} retried while {self.state}")
        base = self.task_id.rsplit("#", 1)[0]
        return Task(task_id=f"{base}#{self.attempt + 1}", job_id=self.job_id,
                    duration=self.base_duration, attempt=self.attempt + 1,
                    logical_id=self.logical_id)
