"""The slotted discrete-event cluster simulator.

This is the substrate substituting for the paper's YARN Hadoop cluster.
Time advances in fixed slots (the paper's discrete time model, e.g. one
second per slot).  Within a slot the simulator

1. admits newly arrived jobs,
2. fires *scheduling events* while containers are free and work is
   pending — each event asks the pluggable scheduler for one job and
   launches that job's next task, matching YARN's container-grant loop
   driven by the RUSH CA unit ("the CA unit is triggered whenever there is
   an empty container in the system"),
3. advances every running task by one slot, releasing containers whose
   tasks finished and forwarding the runtime samples to the scheduler
   (feeding the DE units).

Tasks hold their container continuously until completion — the continuity
constraint of Section III-C is structural here, not merely modeled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clock import (CancelEvent, Clock, ClusterEvent, EventSource,
                              SimulatedClock, SubmitEvent)
from repro.errors import SimulationError, SimulationTimeoutError
from repro.cluster.container import Container
from repro.cluster.job import JobSpec, SimJob
from repro.cluster.metrics import JobRecord, SimulationResult
from repro.faults.plan import FaultPlan
from repro.obs import get_ledger, get_metrics, get_tracer
from repro.schedulers.base import Scheduler

__all__ = ["ClusterSimulator", "run_simulation"]

#: Per-slot container-utilization histogram buckets (fraction busy).
_UTILIZATION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Per-slot task-completion histogram buckets.
_COMPLETION_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class ClusterSimulator:
    """A cluster of ``capacity`` homogeneous containers plus one scheduler.

    The simulator exposes the read API schedulers need (``now``,
    ``active_jobs``, per-job state) and owns every state transition, so a
    scheduler cannot corrupt the cluster even if buggy.

    Fault injection is pluggable: pass a
    :class:`~repro.faults.plan.FaultPlan` as ``faults`` to drive any
    combination of injectors; by default the plan contains only the
    legacy per-spec task-failure injector.  A plan without its own seed
    inherits ``seed``, so one ``--seed`` reproduces a faulty run
    end-to-end.  All injections (and any scheduler degradation
    fallbacks) land in :attr:`fault_log`.
    """

    def __init__(self, capacity: int, scheduler: Scheduler,
                 seed: int = 0, faults: Optional[FaultPlan] = None, *,
                 clock: Optional[Clock] = None,
                 events: Optional[EventSource] = None,
                 record_decisions: bool = False) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.scheduler = scheduler
        self.containers = [Container(container_id=k) for k in range(capacity)]
        self._clock: Clock = clock if clock is not None else SimulatedClock()
        self._events = events
        self._record_decisions = record_decisions
        #: Grant stream (slot, kind, job_id) with kind "grant"/"spec" —
        #: recorded only when ``record_decisions`` is set (the service
        #: snapshot/restore equivalence contract pins this stream).
        self.decisions: List[Tuple[int, str, str]] = []
        self._jobs: Dict[str, SimJob] = {}
        self._pending_arrivals: List[SimJob] = []
        self._active: List[SimJob] = []
        self._completed: List[SimJob] = []
        self._cancelled: List[SimJob] = []
        self.faults = faults if faults is not None else FaultPlan.default()
        self.faults.bind(self, fallback_seed=seed)
        self.fault_log = self.faults.log
        self.timed_out = False
        self.busy_container_slots = 0
        self.scheduling_decisions = 0
        self.task_failures = 0
        self.speculative_launches = 0
        scheduler.bind(self)

    # -- read API for schedulers -------------------------------------------

    @property
    def now(self) -> int:
        """The current slot, read from the driving :class:`Clock`."""
        return self._clock.slot

    @property
    def clock(self) -> Clock:
        """The driving clock (identity matters to external pacers)."""
        return self._clock

    @property
    def active_jobs(self) -> List[SimJob]:
        """Arrived, incomplete jobs (the scheduler's candidate set)."""
        return list(self._active)

    def job(self, job_id: str) -> SimJob:
        return self._jobs[job_id]

    @property
    def free_container_count(self) -> int:
        """Containers that could accept work right now (free, not revoked)."""
        return sum(1 for c in self.containers if c.is_available(self.now))

    # -- setup ---------------------------------------------------------------

    def submit(self, spec: JobSpec) -> None:
        """Register a job for arrival at ``spec.arrival``."""
        if spec.job_id in self._jobs:
            raise SimulationError(f"duplicate job id {spec.job_id!r}")
        if spec.arrival < self.now:
            raise SimulationError(
                f"job {spec.job_id!r} arrives at {spec.arrival} "
                f"but the clock is already at {self.now}")
        job = SimJob(spec)
        self._jobs[spec.job_id] = job
        self._pending_arrivals.append(job)
        self._pending_arrivals.sort(key=lambda j: (j.arrival, j.job_id))

    def cancel_job(self, job_id: str, *, missing_ok: bool = False) -> bool:
        """Withdraw a submitted job before it completes.

        Running attempts are aborted and their containers freed this
        slot; queued work is discarded; the scheduler is told through
        :meth:`~repro.schedulers.base.Scheduler.on_job_cancelled`.  A
        cancelled job never appears in the run's records.  With
        ``missing_ok`` an unknown, already-complete or already-cancelled
        target returns ``False`` instead of raising — the lenient mode
        event-sourced cancellations use, because a cancel request may
        race the job's completion.
        """
        job = self._jobs.get(job_id)
        if job is None:
            if missing_ok:
                return False
            raise SimulationError(f"cannot cancel unknown job {job_id!r}")
        if job in self._completed or job in self._cancelled:
            if missing_ok:
                return False
            state = "completed" if job in self._completed else "cancelled"
            raise SimulationError(
                f"cannot cancel job {job_id!r}: already {state}")
        for container in self.containers:
            task = container.task
            if task is not None and task.job_id == job_id:
                task.cancel()
                container.task = None
                job.note_cancelled(task)
        if job in self._active:
            self._active.remove(job)
        else:
            self._pending_arrivals = [
                j for j in self._pending_arrivals if j.job_id != job_id]
        self._cancelled.append(job)
        self.scheduler.on_job_cancelled(job)
        return True

    @property
    def cancelled_jobs(self) -> List[SimJob]:
        """Jobs withdrawn by :meth:`cancel_job`, in cancellation order."""
        return list(self._cancelled)

    @property
    def completed_jobs(self) -> List[SimJob]:
        """Jobs that finished every logical task, in completion order."""
        return list(self._completed)

    def has_job(self, job_id: str) -> bool:
        """Whether a job with this id was ever submitted to the cluster."""
        return job_id in self._jobs

    # -- the slot loop --------------------------------------------------------

    def step(self) -> None:
        """Simulate one slot."""
        get_tracer().set_slot(self.now)
        if self._events is not None:
            for event in self._events.poll(self.now):
                self._apply_event(event)
        self._admit_arrivals()
        self.faults.on_slot()
        self._fire_scheduling_events()
        busy_before = self.busy_container_slots
        completed = self._advance_tasks()
        self._observe_slot(self.busy_container_slots - busy_before, completed)
        self._clock.advance()

    def run(self, max_slots: int = 1_000_000, *,
            raise_on_timeout: bool = False) -> SimulationResult:
        """Run until every submitted job completes or ``max_slots`` elapse.

        A run that exhausts ``max_slots`` with jobs still pending or
        active is *truncated*, never silently complete: the returned
        result carries ``timed_out=True`` (and censored records for the
        unfinished jobs), or — with ``raise_on_timeout=True`` — a
        :class:`~repro.errors.SimulationTimeoutError` is raised instead.
        """
        while (self._pending_arrivals or self._active) and self.now < max_slots:
            self.step()
        self.timed_out = bool(self._pending_arrivals or self._active)
        if self.timed_out and raise_on_timeout:
            unfinished = len(self._pending_arrivals) + len(self._active)
            raise SimulationTimeoutError(
                f"simulation hit max_slots={max_slots} with {unfinished} "
                f"job(s) unfinished")
        return self._result()

    # -- internals -------------------------------------------------------------

    def _apply_event(self, event: ClusterEvent) -> None:
        if isinstance(event, SubmitEvent):
            self.submit(event.spec)
        elif isinstance(event, CancelEvent):
            # Lenient: the cancel may have raced the job's completion.
            self.cancel_job(event.job_id, missing_ok=True)
        else:  # defensive: an EventSource handed us something foreign
            raise SimulationError(f"unknown cluster event {event!r}")

    def _admit_arrivals(self) -> None:
        while self._pending_arrivals and self._pending_arrivals[0].arrival <= self.now:
            job = self._pending_arrivals.pop(0)
            self._active.append(job)
            self.scheduler.on_job_arrival(job)

    def _fire_scheduling_events(self) -> None:
        free = [c for c in self.containers if c.is_available(self.now)]
        while free and any(j.pending_count > 0 for j in self._active):
            job_id = self.scheduler.select_job()
            self.scheduling_decisions += 1
            if job_id is None:
                break  # the scheduler deliberately idles remaining containers
            job = self._jobs.get(job_id)
            if job is None or job not in self._active:
                raise SimulationError(
                    f"scheduler selected unknown or inactive job {job_id!r}")
            task = job.next_pending()
            if task is None:
                raise SimulationError(
                    f"scheduler selected job {job_id!r} with no pending tasks")
            if self._record_decisions:
                self.decisions.append((self.now, "grant", job_id))
            self.faults.on_launch(job, task)
            container = free.pop()
            container.assign(task, self.now)
            job.note_launched()
            self.scheduler.on_task_launched(job, task)
        # Leftover free containers may run speculative duplicates of
        # straggling tasks, if the scheduler asks for them.
        while free:
            request = self.scheduler.select_speculative()
            if request is None:
                break
            job_id, logical_id, duration = request
            job = self._jobs.get(job_id)
            if job is None or job not in self._active:
                raise SimulationError(
                    f"speculation on unknown or inactive job {job_id!r}")
            duplicate = job.speculate(logical_id, duration)
            if self._record_decisions:
                self.decisions.append((self.now, "spec", job_id))
            container = free.pop()
            container.assign(duplicate, self.now)
            job.note_launched()
            self.speculative_launches += 1
            self.scheduler.on_task_launched(job, duplicate)

    def _advance_tasks(self) -> int:
        from repro.cluster.task import TaskState

        completed_tasks = 0
        for container in self.containers:
            if not container.is_free:
                self.busy_container_slots += 1
            finished = container.advance(self.now)
            if finished is None:
                continue
            job = self._jobs[finished.job_id]
            if finished.state is TaskState.FAILED:
                self.task_failures += 1
                job.note_failed(finished)
                self.scheduler.on_task_failed(job, finished)
                continue
            if not job.note_completed(finished):
                continue  # a sibling already completed this logical task
            completed_tasks += 1
            self.faults.on_complete(job, finished)
            self._cancel_siblings(job, finished)
            self.scheduler.on_task_complete(job, finished)
            if job.is_complete:
                self._active.remove(job)
                self._completed.append(job)
                completion = job.completion_time
                get_ledger().realize(
                    job.job_id,
                    self.now if completion is None else int(completion))
                self.scheduler.on_job_complete(job)
        return completed_tasks

    def _observe_slot(self, busy: int, completed_tasks: int) -> None:
        """Feed the per-slot gauges/histograms (no-op unless obs enabled)."""
        metrics = get_metrics()
        if not metrics.active:
            return
        queue_depth = sum(j.pending_count for j in self._active)
        metrics.gauge("rush_sim_queue_depth",
                      help="Pending tasks across active jobs",
                      unit="tasks").set(queue_depth)
        metrics.gauge("rush_sim_busy_containers",
                      help="Containers running a task this slot",
                      unit="containers").set(busy)
        metrics.histogram("rush_sim_utilization",
                          buckets=_UTILIZATION_BUCKETS,
                          help="Per-slot fraction of busy containers",
                          unit="fraction").observe(busy / self.capacity)
        metrics.histogram("rush_sim_slot_completions",
                          buckets=_COMPLETION_BUCKETS,
                          help="Logical task completions per slot",
                          unit="tasks").observe(completed_tasks)
        metrics.counter("rush_sim_tasks_completed_total",
                        help="Logical task completions").inc(completed_tasks)

    def _cancel_siblings(self, job: SimJob, winner) -> None:
        """Abort surviving attempts of a logical task that just completed."""
        for container in self.containers:
            task = container.task
            if (task is not None and task.job_id == winner.job_id
                    and task.logical_id == winner.logical_id):
                task.cancel()
                container.task = None
                job.note_cancelled(task)
        job.cancel_pending_duplicates(winner.logical_id)

    def _result(self) -> SimulationResult:
        cancelled = set(id(job) for job in self._cancelled)
        records = [
            JobRecord.from_spec(job.spec, job.completion_time, self.now)
            for job in self._jobs.values() if id(job) not in cancelled
        ]
        records.sort(key=lambda r: (r.arrival, r.job_id))
        fallbacks = dict(getattr(self.scheduler, "degradation_counts", {}) or {})
        registry = get_metrics()
        return SimulationResult(
            metrics=registry.snapshot() if registry.active else None,
            scheduler_name=self.scheduler.name,
            capacity=self.capacity,
            slots_simulated=self.now,
            records=records,
            busy_container_slots=self.busy_container_slots,
            scheduling_decisions=self.scheduling_decisions,
            task_failures=self.task_failures,
            speculative_launches=self.speculative_launches,
            planner_seconds=getattr(self.scheduler, "planner_seconds", 0.0),
            timed_out=self.timed_out,
            fault_events=self.fault_log.events,
            fallbacks=fallbacks)


def run_simulation(specs: Sequence[JobSpec], capacity: int,
                   scheduler: Scheduler,
                   max_slots: int = 1_000_000,
                   seed: int = 0,
                   faults: Optional[FaultPlan] = None, *,
                   raise_on_timeout: bool = False) -> SimulationResult:
    """Convenience wrapper: submit ``specs`` and run to completion.

    ``seed`` seeds the fault streams; a ``faults`` plan without its own
    seed inherits it, so two calls with identical arguments produce
    identical :class:`SimulationResult`\\ s, injected faults included.
    """
    sim = ClusterSimulator(capacity, scheduler, seed=seed, faults=faults)
    for spec in specs:
        sim.submit(spec)
    return sim.run(max_slots=max_slots, raise_on_timeout=raise_on_timeout)
