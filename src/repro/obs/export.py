"""Exporters: JSONL trace files and Prometheus-style metrics text.

The JSONL format is one span per line, in open (``seq``) order, with
sorted keys — so byte-level diffs between two runs are meaningful and
the golden files under ``tests/golden/`` stay stable.  The Prometheus
text comes straight from :meth:`MetricsRegistry.render_prometheus`; this
module only adds the file plumbing so callers (the CLI, tests) have one
place to write artifacts from.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import NullTracer, SpanTracer

__all__ = ["trace_jsonl_lines", "write_trace_jsonl", "read_trace_jsonl",
           "write_metrics_text", "write_metrics_snapshot"]

_AnyTracer = Union[SpanTracer, NullTracer]
_AnyMetrics = Union[MetricsRegistry, NullMetrics]


def trace_jsonl_lines(tracer: _AnyTracer) -> List[str]:
    """One JSON document per span, seq-ordered, keys sorted."""
    return [json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in tracer.to_dicts()]


def write_trace_jsonl(tracer: _AnyTracer, path: str) -> int:
    """Write the trace; returns the number of spans written."""
    lines = trace_jsonl_lines(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a trace file back into span records (blank lines skipped)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_metrics_text(registry: _AnyMetrics, path: str) -> None:
    """Write the Prometheus text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())


def write_metrics_snapshot(registry: _AnyMetrics, path: str) -> None:
    """Write the JSON snapshot (sorted keys — byte-stable) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
