"""``repro.obs`` — deterministic observability for the RUSH pipeline.

Three instruments, all slot-indexed and wall-clock-free (RL009):

* :class:`~repro.obs.trace.SpanTracer` — nested solver spans ordered by
  a monotonic sequence counter (WCDE bisection, onion layers, mapping,
  degradation fallbacks, cache hits/misses);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms, exported as Prometheus text or a JSON
  snapshot;
* :class:`~repro.obs.ledger.CompletionLedger` — θ-percentile completion
  promises vs realized completions, feeding
  :func:`repro.analysis.calibration.calibration_report`.

Instrumented code pulls the process-wide instruments through
:func:`get_tracer` / :func:`get_metrics` / :func:`get_ledger`.  By
default all three are null objects, so the instrumentation costs one
attribute call and the PR-1 planner benchmark gate is unaffected; a run
opts in with :func:`enable` (or :func:`install` for custom instances)
and returns to the no-op state with :func:`reset`::

    from repro import obs

    handle = obs.enable(trace=True, metrics=True, ledger=True)
    result = run_simulation(...)
    obs.export.write_trace_jsonl(handle.tracer, "out.jsonl")
    obs.reset()

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric catalog.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

from repro.obs import export
from repro.obs.ledger import (NULL_LEDGER, CompletionLedger, LedgerEntry,
                              NullLedger)
from repro.obs.metrics import (NULL_METRICS, Counter, Gauge, Histogram,
                               MetricsRegistry, NullMetrics)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "Span", "SpanTracer", "NullTracer", "NULL_TRACER",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetrics",
    "NULL_METRICS",
    "LedgerEntry", "CompletionLedger", "NullLedger", "NULL_LEDGER",
    "ObsHandle", "get_tracer", "get_metrics", "get_ledger",
    "enable", "install", "reset", "export",
]

AnyTracer = Union[SpanTracer, NullTracer]
AnyMetrics = Union[MetricsRegistry, NullMetrics]
AnyLedger = Union[CompletionLedger, NullLedger]


class ObsHandle(NamedTuple):
    """The three instruments active after an :func:`enable`/:func:`install`."""

    tracer: AnyTracer
    metrics: AnyMetrics
    ledger: AnyLedger


_tracer: AnyTracer = NULL_TRACER
_metrics: AnyMetrics = NULL_METRICS
_ledger: AnyLedger = NULL_LEDGER


def get_tracer() -> AnyTracer:
    """The process-wide tracer (the null tracer unless enabled)."""
    return _tracer


def get_metrics() -> AnyMetrics:
    """The process-wide metrics registry (null unless enabled)."""
    return _metrics


def get_ledger() -> AnyLedger:
    """The process-wide completion ledger (null unless enabled)."""
    return _ledger


def install(tracer: Optional[AnyTracer] = None,
            metrics: Optional[AnyMetrics] = None,
            ledger: Optional[AnyLedger] = None) -> ObsHandle:
    """Install specific instrument instances; ``None`` leaves one as-is."""
    global _tracer, _metrics, _ledger
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    if ledger is not None:
        _ledger = ledger
    return ObsHandle(_tracer, _metrics, _ledger)


def enable(trace: bool = True, metrics: bool = True,
           ledger: bool = True) -> ObsHandle:
    """Switch on fresh instruments for the selected subsystems.

    Subsystems not selected are reset to their null objects, so
    ``enable(metrics=True, trace=False, ledger=False)`` measures metrics
    overhead in isolation.
    """
    global _tracer, _metrics, _ledger
    _tracer = SpanTracer() if trace else NULL_TRACER
    _metrics = MetricsRegistry() if metrics else NULL_METRICS
    _ledger = CompletionLedger() if ledger else NULL_LEDGER
    return ObsHandle(_tracer, _metrics, _ledger)


def reset() -> None:
    """Return to the default no-op state (used by tests and the CLI)."""
    global _tracer, _metrics, _ledger
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS
    _ledger = NULL_LEDGER
