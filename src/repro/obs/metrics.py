"""Counters, gauges, and fixed-bucket histograms for the RUSH pipeline.

A deliberately small, dependency-free metrics substrate: metrics are
registered lazily (get-or-create by name), labels are positional tuples
declared up front, and a :meth:`MetricsRegistry.snapshot` is a plain
sorted dict — byte-identical across two same-seed runs, which is what
the golden-file tests compare.

Histograms use *fixed* bucket upper bounds chosen at registration; there
is no adaptive resizing, so bucket counts are reproducible and the sum
of bucket counts always equals the observation count (a tested
invariant).  Rendering follows the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` / ``name{label="v"} value``) closely enough to
scrape, without depending on ``prometheus_client``.

Like the tracer, this module never reads a clock (lint rule RL009):
rates and latencies are expressed in solver iterations and simulation
slots, not seconds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetrics", "NULL_METRICS"]

_LabelKey = Tuple[str, ...]


def _format_value(value: float) -> str:
    """Prometheus-style number: integral floats print without ``.0``."""
    as_int = int(value)
    if float(as_int) == value:  # rushlint: disable=RL003 (exact integrality test on our own accumulator)
        return str(as_int)
    return repr(value)


class _Metric:
    """Shared bookkeeping: name, label schema, per-labelset storage."""

    kind: str = ""

    def __init__(self, name: str, help: str = "", unit: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.unit = unit
        self.label_names = tuple(label_names)

    def _key(self, label_values: Tuple[str, ...]) -> _LabelKey:
        if len(label_values) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name} expects {len(self.label_names)} "
                f"label value(s) {self.label_names}, got {label_values!r}")
        return tuple(str(v) for v in label_values)

    def _label_suffix(self, key: _LabelKey) -> str:
        if not key:
            return ""
        pairs = ", ".join(f'{name}="{value}"'
                          for name, value in zip(self.label_names, key))
        return "{" + pairs + "}"


class Counter(_Metric):
    """Monotonically increasing count (events, solves, cache hits)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, unit, label_names)
        self._values: Dict[_LabelKey, float] = {}

    def labels(self, *label_values: str) -> "_BoundCounter":
        return _BoundCounter(self, self._key(tuple(label_values)))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (labelled metrics use .labels())."""
        self._inc((), amount)

    def _inc(self, key: _LabelKey, amount: float) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (amount={amount})")
        key = self._key(key) if key else self._key(())
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *label_values: str) -> float:
        return self._values.get(self._key(tuple(label_values)), 0.0)

    def snapshot_values(self) -> List[List[Any]]:
        return [[list(k), v] for k, v in sorted(self._values.items())]

    def render(self) -> List[str]:
        return [f"{self.name}{self._label_suffix(k)} {_format_value(v)}"
                for k, v in sorted(self._values.items())]


class _BoundCounter:
    __slots__ = ("_metric", "_label_key")

    def __init__(self, metric: Counter, label_key: _LabelKey) -> None:
        self._metric = metric
        self._label_key = label_key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._label_key, amount)


class Gauge(_Metric):
    """A value that goes up and down (queue depth, busy containers)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, unit, label_names)
        self._values: Dict[_LabelKey, float] = {}

    def labels(self, *label_values: str) -> "_BoundGauge":
        return _BoundGauge(self, self._key(tuple(label_values)))

    def set(self, value: float) -> None:
        self._set((), value)

    def _set(self, key: _LabelKey, value: float) -> None:
        self._values[self._key(key) if key else self._key(())] = float(value)

    def value(self, *label_values: str) -> float:
        return self._values.get(self._key(tuple(label_values)), 0.0)

    def snapshot_values(self) -> List[List[Any]]:
        return [[list(k), v] for k, v in sorted(self._values.items())]

    def render(self) -> List[str]:
        return [f"{self.name}{self._label_suffix(k)} {_format_value(v)}"
                for k, v in sorted(self._values.items())]


class _BoundGauge:
    __slots__ = ("_metric", "_label_key")

    def __init__(self, metric: Gauge, label_key: _LabelKey) -> None:
        self._metric = metric
        self._label_key = label_key

    def set(self, value: float) -> None:
        self._metric._set(self._label_key, value)


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        # one slot per finite bound plus the implicit +Inf overflow
        self.bucket_counts = [0] * (n_buckets + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, bounds: Tuple[float, ...]) -> None:
        idx = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.total += float(value)
        self.count += 1


class Histogram(_Metric):
    """Fixed-bucket histogram; bounds are upper-inclusive, +Inf implicit."""

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float], help: str = "",
                 unit: str = "", label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, unit, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {self.name} needs strictly increasing, "
                f"non-empty buckets, got {buckets!r}")
        self.buckets = bounds
        self._states: Dict[_LabelKey, _HistogramState] = {}

    def labels(self, *label_values: str) -> "_BoundHistogram":
        return _BoundHistogram(self, self._key(tuple(label_values)))

    def observe(self, value: float) -> None:
        self._observe((), value)

    def _observe(self, key: _LabelKey, value: float) -> None:
        full_key = self._key(key) if key else self._key(())
        state = self._states.get(full_key)
        if state is None:
            state = self._states[full_key] = _HistogramState(len(self.buckets))
        state.observe(float(value), self.buckets)

    def state(self, *label_values: str) -> Optional[_HistogramState]:
        return self._states.get(self._key(tuple(label_values)))

    def snapshot_values(self) -> List[List[Any]]:
        out: List[List[Any]] = []
        for key, state in sorted(self._states.items()):
            out.append([list(key), {
                "buckets": list(state.bucket_counts),
                "bounds": list(self.buckets),
                "sum": state.total,
                "count": state.count,
            }])
        return out

    def render(self) -> List[str]:
        lines: List[str] = []
        for key, state in sorted(self._states.items()):
            cumulative = 0
            for bound, n in zip(self.buckets, state.bucket_counts):
                cumulative += n
                suffix = self._bucket_suffix(key, _format_value(bound))
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            cumulative += state.bucket_counts[-1]
            lines.append(
                f"{self.name}_bucket{self._bucket_suffix(key, '+Inf')} "
                f"{cumulative}")
            plain = self._label_suffix(key)
            lines.append(f"{self.name}_sum{plain} {_format_value(state.total)}")
            lines.append(f"{self.name}_count{plain} {state.count}")
        return lines

    def _bucket_suffix(self, key: _LabelKey, le: str) -> str:
        pairs = [f'{name}="{value}"'
                 for name, value in zip(self.label_names, key)]
        pairs.append(f'le="{le}"')
        return "{" + ", ".join(pairs) + "}"


class _BoundHistogram:
    __slots__ = ("_metric", "_label_key")

    def __init__(self, metric: Histogram, label_key: _LabelKey) -> None:
        self._metric = metric
        self._label_key = label_key

    def observe(self, value: float) -> None:
        self._metric._observe(self._label_key, value)


class MetricsRegistry:
    """Get-or-create metric store with deterministic snapshots."""

    active: bool = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: Type[_Metric], name: str,
                       **kwargs: Any) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name} already registered as {existing.kind}")
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", unit: str = "",
                labels: Sequence[str] = ()) -> Counter:
        metric = self._get_or_create(Counter, name, help=help, unit=unit,
                                     label_names=labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", unit: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, help=help, unit=unit,
                                     label_names=labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, buckets: Sequence[float], help: str = "",
                  unit: str = "", labels: Sequence[str] = ()) -> Histogram:
        metric = self._get_or_create(Histogram, name, buckets=buckets,
                                     help=help, unit=unit, label_names=labels)
        assert isinstance(metric, Histogram)
        return metric

    def metrics(self) -> List[_Metric]:
        """Registered metrics sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready dump of every registered metric."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "unit": metric.unit,
                "labels": list(metric.label_names),
                "values": metric.snapshot_values(),
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: List[str] = []
        for metric in self.metrics():
            help_text = metric.help
            if metric.unit:
                help_text = (f"{help_text} [{metric.unit}]" if help_text
                             else f"[{metric.unit}]")
            if help_text:
                lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self._metrics.clear()


class _NullBound:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def labels(self, *label_values: str) -> "_NullBound":
        return self


_NULL_BOUND = _NullBound()


class NullMetrics:
    """No-op registry installed by default; every path costs one call."""

    active: bool = False

    def counter(self, name: str, help: str = "", unit: str = "",
                labels: Sequence[str] = ()) -> _NullBound:
        return _NULL_BOUND

    def gauge(self, name: str, help: str = "", unit: str = "",
              labels: Sequence[str] = ()) -> _NullBound:
        return _NULL_BOUND

    def histogram(self, name: str, buckets: Sequence[float], help: str = "",
                  unit: str = "", labels: Sequence[str] = ()) -> _NullBound:
        return _NULL_BOUND

    def metrics(self) -> List[_Metric]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def render_prometheus(self) -> str:
        return ""

    def clear(self) -> None:
        return None


NULL_METRICS = NullMetrics()
