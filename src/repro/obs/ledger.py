"""Predicted-vs-actual completion-time ledger.

PCS-style accountability for the planner: every time RUSH commits to a
plan it promises each job a θ-percentile completion slot; the ledger
records that promise (:meth:`CompletionLedger.predict`) and, when the
simulator later retires the job, the realized completion slot
(:meth:`CompletionLedger.realize`).  ``repro.analysis.calibration``
turns the ledger into a calibration report: if the θ=0.9 predictions
cover fewer than ~90% of realized completions, the estimator or the
robustness margin is miscalibrated.

Both the *first* prediction (made at admission, before any task samples
arrive) and the *last* prediction (the freshest replan) are kept — the
gap between their errors measures how much online estimation helps.

All times are simulation slots; this package never reads a clock
(lint rule RL009).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["LedgerEntry", "CompletionLedger", "NullLedger", "NULL_LEDGER"]


@dataclass
class LedgerEntry:
    """One job's promise/outcome record (mutable while the run proceeds)."""

    job_id: str
    theta: float
    first_plan_slot: int
    first_predicted: float
    last_plan_slot: int = 0
    last_predicted: float = 0.0
    predictions: int = 0
    actual: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "theta": self.theta,
            "first_plan_slot": self.first_plan_slot,
            "first_predicted": self.first_predicted,
            "last_plan_slot": self.last_plan_slot,
            "last_predicted": self.last_predicted,
            "predictions": self.predictions,
            "actual": self.actual,
        }


@dataclass
class CompletionLedger:
    """Accumulates per-job predictions and realized completions."""

    active: bool = True
    _entries: Dict[str, LedgerEntry] = field(default_factory=dict)

    def predict(self, job_id: str, plan_slot: int, predicted_completion: float,
                theta: float) -> None:
        """Record a θ-percentile completion promise made at ``plan_slot``.

        Predictions arriving after the job already realized are ignored —
        they would be bookkeeping artifacts of a replan racing the final
        task, not real promises.
        """
        entry = self._entries.get(job_id)
        if entry is None:
            entry = LedgerEntry(
                job_id=job_id, theta=float(theta),
                first_plan_slot=int(plan_slot),
                first_predicted=float(predicted_completion))
            self._entries[job_id] = entry
        elif entry.actual is not None:
            return
        entry.last_plan_slot = int(plan_slot)
        entry.last_predicted = float(predicted_completion)
        entry.predictions += 1

    def realize(self, job_id: str, completion_slot: int) -> None:
        """Record the realized completion; unknown jobs are ignored.

        (A job can complete without ever being planned — e.g. under a
        non-planning policy — in which case there is no promise to score.)
        """
        entry = self._entries.get(job_id)
        if entry is not None and entry.actual is None:
            entry.actual = int(completion_slot)

    def entries(self) -> List[LedgerEntry]:
        """Entries in first-prediction order (a copy of the references)."""
        return list(self._entries.values())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.entries()]

    def clear(self) -> None:
        self._entries.clear()


class NullLedger:
    """No-op ledger installed by default."""

    active: bool = False

    def predict(self, job_id: str, plan_slot: int, predicted_completion: float,
                theta: float) -> None:
        return None

    def realize(self, job_id: str, completion_slot: int) -> None:
        return None

    def entries(self) -> List[LedgerEntry]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        return None


NULL_LEDGER = NullLedger()
