"""Deterministic, slot-indexed span tracing.

The tracer answers "what did the solver do, in what order, nested how?"
without ever consulting a clock.  Ordering comes from a single monotonic
sequence counter shared by span opens, span closes, and point events;
"when" comes from the simulation slot the caller advances via
:meth:`SpanTracer.set_slot`.  Two runs with the same seed therefore
produce byte-identical traces — the property the golden-file tests pin.

Spans nest via an explicit stack: :meth:`SpanTracer.span` opens a child
of the innermost open span and is used as a context manager, so Python's
``with`` unwinding keeps the tree well-nested even when a solver raises
mid-span (the exception type is noted on the span payload before it
closes).

No ``time``/``datetime`` import appears anywhere in this package — that
is lint rule RL009, not just style: wall-clock values in a trace would
break replay determinism and the cold/incremental equivalence tests that
diff traces across runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER", "json_safe"]

_Payload = Dict[str, Any]


def json_safe(value: Any) -> Union[None, bool, int, float, str,
                                   List[Any], Dict[str, Any]]:
    """Coerce a payload value to something ``json.dumps`` handles.

    numpy scalars expose ``item()``; containers recurse (dict keys are
    stringified); anything else falls back to ``str`` so a stray object
    can never poison a trace.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    return str(value)


class Span:
    """One traced region: open/close sequence numbers plus a payload.

    ``seq`` is assigned at open, ``end_seq`` at close; both come from the
    tracer's single counter, so for any two spans A and B either their
    ``[seq, end_seq]`` intervals nest or they are disjoint (well-nested
    trees — a tested invariant).  ``slot``/``end_slot`` record the
    simulation slot at open/close time.
    """

    __slots__ = ("name", "seq", "end_seq", "slot", "end_slot", "depth",
                 "parent_seq", "payload", "_tracer")

    def __init__(self, tracer: "SpanTracer", name: str, seq: int, slot: int,
                 depth: int, parent_seq: Optional[int],
                 payload: _Payload) -> None:
        self.name = name
        self.seq = seq
        self.end_seq: Optional[int] = None
        self.slot = slot
        self.end_slot: Optional[int] = None
        self.depth = depth
        self.parent_seq = parent_seq
        self.payload = payload
        self._tracer = tracer

    @property
    def closed(self) -> bool:
        return self.end_seq is not None

    def note(self, **payload: Any) -> "Span":
        """Attach extra payload fields; chainable inside a ``with`` body."""
        self.payload.update(payload)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.payload.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record; keys are stable and payload values coerced."""
        return {
            "name": self.name,
            "seq": self.seq,
            "end_seq": self.end_seq,
            "slot": self.slot,
            "end_slot": self.end_slot,
            "depth": self.depth,
            "parent_seq": self.parent_seq,
            "payload": {k: json_safe(v)
                        for k, v in sorted(self.payload.items())},
        }


class SpanTracer:
    """Collects spans in document order with a monotonic sequence counter."""

    active: bool = True

    def __init__(self) -> None:
        self._seq = 0
        self._slot = 0
        self._stack: List[Span] = []
        self._spans: List[Span] = []

    # -- time base --------------------------------------------------------

    @property
    def slot(self) -> int:
        return self._slot

    def set_slot(self, slot: int) -> None:
        """Advance the slot-indexed time base (the simulator drives this)."""
        self._slot = int(slot)

    # -- recording --------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def span(self, name: str, **payload: Any) -> Span:
        """Open a span nested under the innermost open span."""
        # ``payload`` is the fresh per-call kwargs dict, so the Span can
        # own it directly — no defensive copy on the hot path.
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, self._next_seq(), self._slot,
                    depth=len(self._stack),
                    parent_seq=None if parent is None else parent.seq,
                    payload=payload)
        self._spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if span.closed:
            return
        # ``with`` unwinding closes children before parents; pop every
        # still-open descendant first so the tree stays well-nested even
        # if a caller forgot a context manager somewhere below.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop().end_seq = self._seq
        if self._stack:
            self._stack.pop()
        span.end_seq = self._next_seq()
        span.end_slot = self._slot

    def event(self, name: str, **payload: Any) -> Span:
        """A point event: a zero-width span (``end_seq == seq``)."""
        seq = self._seq = self._seq + 1
        stack = self._stack
        span = Span(self, name, seq, self._slot,
                    depth=len(stack),
                    parent_seq=stack[-1].seq if stack else None,
                    payload=payload)
        span.end_seq = seq
        span.end_slot = span.slot
        self._spans.append(span)
        return span

    # -- inspection -------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All recorded spans in open order (a copy)."""
        return list(self._spans)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self._spans]

    def clear(self) -> None:
        self._seq = 0
        self._slot = 0
        self._stack.clear()
        self._spans.clear()


class _NullSpan:
    """Inert stand-in returned by :class:`NullTracer`; safe to note/exit."""

    __slots__ = ()

    def note(self, **payload: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer installed by default; instrumentation costs one call."""

    active: bool = False
    slot: int = 0

    def set_slot(self, slot: int) -> None:
        return None

    def span(self, name: str, **payload: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **payload: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def spans(self) -> List[Span]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()
