"""Constant utility class from Section IV of the paper.

A constant utility describes a completion-time *insensitive* job: it is
worth its priority ``W`` no matter when it finishes.  Under lexicographic
max-min fairness such jobs are natural donors of capacity — delaying them
costs nothing, which is exactly how RUSH protects time-critical jobs in
the paper's experiments.
"""

from __future__ import annotations

import math

from repro.utility.base import UtilityFunction

__all__ = ["ConstantUtility"]


class ConstantUtility(UtilityFunction):
    """``U(T) = priority`` for every completion-time ``T``."""

    __slots__ = ("priority",)

    def __init__(self, priority: float) -> None:
        self.priority = self._require_non_negative("priority", priority)

    def value(self, completion_time: float) -> float:
        return self.priority

    def max_value(self) -> float:
        return self.priority

    def min_value(self) -> float:
        return self.priority

    def deadline_for(self, level: float) -> float:
        return math.inf if level <= self.priority else -math.inf

    def __repr__(self) -> str:
        return f"ConstantUtility(priority={self.priority})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstantUtility):
            return NotImplemented
        return self.priority == other.priority

    def __hash__(self) -> int:
        return hash(("ConstantUtility", self.priority))
