"""Utility functions of job completion-time (Section IV of the paper)."""

from repro.utility.base import UtilityFunction
from repro.utility.config import (
    register_utility_class,
    utility_from_config,
    utility_from_xml,
    utility_to_config,
)
from repro.utility.constant import ConstantUtility
from repro.utility.linear import LinearUtility
from repro.utility.piecewise import PiecewiseUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.utility.step import StepUtility

__all__ = [
    "UtilityFunction",
    "LinearUtility",
    "SigmoidUtility",
    "ConstantUtility",
    "StepUtility",
    "PiecewiseUtility",
    "utility_from_config",
    "utility_to_config",
    "utility_from_xml",
    "register_utility_class",
]
