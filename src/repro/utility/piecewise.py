"""General piece-wise linear utility defined by breakpoints.

This generalizes :class:`repro.utility.linear.LinearUtility` to an
arbitrary non-increasing polyline, which lets tests and power users encode
service-level agreements with several tiers ("full value within an hour,
half value within two, nothing after four").
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utility.base import UtilityFunction

__all__ = ["PiecewiseUtility"]


class PiecewiseUtility(UtilityFunction):
    """Non-increasing polyline through ``(time, utility)`` breakpoints.

    Before the first breakpoint the utility is flat at the first value;
    after the last breakpoint it is flat at the last value.  Breakpoint
    times must be strictly increasing and utilities non-increasing.
    """

    __slots__ = ("_times", "_values")

    def __init__(self, points: Iterable[Tuple[float, float]]) -> None:
        pts = sorted((float(t), float(u)) for t, u in points)
        if len(pts) < 1:
            raise ConfigurationError("PiecewiseUtility needs at least one breakpoint")
        times = [t for t, _ in pts]
        values = [u for _, u in pts]
        if len(set(times)) != len(times):
            raise ConfigurationError("breakpoint times must be strictly increasing")
        if any(t < 0 for t in times):
            raise ConfigurationError("breakpoint times must be non-negative")
        if any(b > a for a, b in zip(values, values[1:])):
            raise ConfigurationError("breakpoint utilities must be non-increasing")
        if any(not math.isfinite(u) or u < 0 for u in values):
            raise ConfigurationError("breakpoint utilities must be finite and >= 0")
        self._times: Sequence[float] = tuple(times)
        self._values: Sequence[float] = tuple(values)

    @property
    def breakpoints(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._times, self._values))

    def value(self, completion_time: float) -> float:
        times, values = self._times, self._values
        if completion_time <= times[0]:
            return values[0]
        if completion_time >= times[-1]:
            return values[-1]
        j = bisect.bisect_right(times, completion_time)
        t0, t1 = times[j - 1], times[j]
        u0, u1 = values[j - 1], values[j]
        frac = (completion_time - t0) / (t1 - t0)
        return u0 + frac * (u1 - u0)

    def max_value(self) -> float:
        return self._values[0]

    def min_value(self) -> float:
        return self._values[-1]

    def deadline_for(self, level: float) -> float:
        if level <= self.min_value():
            return math.inf
        if level > self.max_value():
            return -math.inf
        times, values = self._times, self._values
        # Walk segments to the first one that crosses below `level`.
        for j in range(1, len(times)):
            if values[j] < level:
                u0, u1 = values[j - 1], values[j]
                t0, t1 = times[j - 1], times[j]
                if u0 == u1:  # pragma: no cover - flat segment cannot cross
                    continue
                return t0 + (u0 - level) / (u0 - u1) * (t1 - t0)
        # level is attained exactly at the final flat tail's start.
        return times[-1]

    def __repr__(self) -> str:
        return f"PiecewiseUtility({list(self.breakpoints)!r})"
