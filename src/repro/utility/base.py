"""Time-dependent utility functions.

RUSH measures each client's satisfaction with a non-increasing utility
function ``U_i(T_i)`` of the job's completion-time (Section II).  The onion
peeling algorithm additionally needs the *inverse*: given a target utility
level ``L``, the latest completion-time that still attains at least ``L``
(Section III-B).  This module defines the abstract interface; the concrete
classes the paper ships (piece-wise linear, sigmoid, constant) live in the
sibling modules, and users may subclass :class:`UtilityFunction` to
describe their own quality-of-service requirements, exactly like the
paper's job configuration interface encourages.

Completion-times are measured in time slots since job submission.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

__all__ = ["UtilityFunction"]


class UtilityFunction(ABC):
    """A non-increasing function from completion-time to utility.

    Implementations must guarantee ``value(t1) >= value(t2)`` whenever
    ``t1 <= t2`` — satisfaction never increases with delay.  The planner
    relies on this monotonicity for the correctness of its bisection
    searches.
    """

    @abstractmethod
    def value(self, completion_time: float) -> float:
        """Utility attained when the job completes at ``completion_time``."""

    @abstractmethod
    def max_value(self) -> float:
        """The best achievable utility, ``value(0)``."""

    @abstractmethod
    def min_value(self) -> float:
        """The infimum of the utility as the completion-time grows."""

    def deadline_for(self, level: float) -> float:
        """Latest completion-time that still attains utility >= ``level``.

        Returns ``math.inf`` when every completion-time attains the level
        (the job imposes no constraint at this utility layer) and
        ``-math.inf`` when no completion-time does (the level is above the
        job's ceiling).  Concrete classes override this with a closed form;
        this default performs a monotone bisection on :meth:`value` so
        user-defined utilities work out of the box.
        """
        if level <= self.min_value():
            return math.inf
        if level > self.max_value():
            return -math.inf
        lo, hi = 0.0, 1.0
        while self.value(hi) >= level:
            hi *= 2.0
            if hi > 1e15:  # pragma: no cover - defensive; min_value should bound this
                return math.inf
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.value(mid) >= level:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-9 * max(1.0, hi):
                break
        return lo

    # -- shared validation helpers --------------------------------------

    @staticmethod
    def _require_positive(name: str, value: float) -> float:
        if not (value > 0) or not math.isfinite(value):
            raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
        return float(value)

    @staticmethod
    def _require_non_negative(name: str, value: float) -> float:
        if value < 0 or not math.isfinite(value):
            raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
        return float(value)
