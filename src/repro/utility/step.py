"""Hard-deadline (step) utility — an extension beyond the paper's classes.

The paper ships piece-wise linear, sigmoid and constant classes and
"encourages users to submit their own".  A step utility is the natural
fourth member: full priority on time, zero afterwards, i.e. a *hard*
deadline in the classical real-time-systems sense.  It is also the
``beta -> inf`` limit of :class:`repro.utility.sigmoid.SigmoidUtility`,
which makes it a useful oracle in tests.
"""

from __future__ import annotations

import math

from repro.utility.base import UtilityFunction

__all__ = ["StepUtility"]


class StepUtility(UtilityFunction):
    """``U(T) = priority`` if ``T <= budget`` else ``0``."""

    __slots__ = ("budget", "priority")

    def __init__(self, budget: float, priority: float) -> None:
        self.budget = self._require_non_negative("budget", budget)
        self.priority = self._require_positive("priority", priority)

    def value(self, completion_time: float) -> float:
        return self.priority if completion_time <= self.budget else 0.0

    def max_value(self) -> float:
        return self.priority

    def min_value(self) -> float:
        return 0.0

    def deadline_for(self, level: float) -> float:
        if level <= 0.0:
            return math.inf
        if level > self.priority:
            return -math.inf
        return self.budget

    def __repr__(self) -> str:
        return f"StepUtility(budget={self.budget}, priority={self.priority})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepUtility):
            return NotImplemented
        return (self.budget, self.priority) == (other.budget, other.priority)

    def __hash__(self) -> int:
        return hash(("StepUtility", self.budget, self.priority))
