"""Job configuration interface.

The paper's RUSH-YARN prototype accepts each job's requirements — time
budget ``B``, priority ``W``, sensitivity ``beta`` and the utility class —
as an XML file submitted through a configuration interface (Section IV).
This module reproduces that interface: utilities can be built from plain
dictionaries (the programmatic path) or parsed from the same kind of XML
document (the operator path).

Example XML document::

    <job>
      <utility class="sigmoid">
        <budget>600</budget>
        <priority>5</priority>
        <beta>0.8</beta>
      </utility>
    </job>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Dict, Mapping

from repro.errors import ConfigurationError
from repro.utility.base import UtilityFunction
from repro.utility.constant import ConstantUtility
from repro.utility.linear import LinearUtility
from repro.utility.piecewise import PiecewiseUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.utility.step import StepUtility

__all__ = [
    "utility_from_config",
    "utility_from_xml",
    "utility_to_config",
    "register_utility_class",
]

_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], UtilityFunction]] = {}


def register_utility_class(name: str,
                           builder: Callable[[Mapping[str, Any]], UtilityFunction]) -> None:
    """Register a custom utility class under ``name``.

    This is the library equivalent of the paper's invitation for users to
    "submit their own utility classes": after registration the class can be
    referenced from configuration dictionaries and XML job files.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("utility class name must be non-empty")
    _BUILDERS[key] = builder


def _build_linear(params: Mapping[str, Any]) -> UtilityFunction:
    return LinearUtility(budget=float(params["budget"]),
                         priority=float(params.get("priority", 1.0)),
                         beta=float(params.get("beta", 1.0)))


def _build_sigmoid(params: Mapping[str, Any]) -> UtilityFunction:
    return SigmoidUtility(budget=float(params["budget"]),
                          priority=float(params.get("priority", 1.0)),
                          beta=float(params.get("beta", 0.5)))


def _build_constant(params: Mapping[str, Any]) -> UtilityFunction:
    return ConstantUtility(priority=float(params.get("priority", 1.0)))


def _build_step(params: Mapping[str, Any]) -> UtilityFunction:
    return StepUtility(budget=float(params["budget"]),
                       priority=float(params.get("priority", 1.0)))


def _build_piecewise(params: Mapping[str, Any]) -> UtilityFunction:
    points = params.get("points")
    if not points:
        raise ConfigurationError("piecewise utility needs a 'points' list")
    return PiecewiseUtility(points)


register_utility_class("linear", _build_linear)
register_utility_class("sigmoid", _build_sigmoid)
register_utility_class("constant", _build_constant)
register_utility_class("step", _build_step)
register_utility_class("piecewise", _build_piecewise)


def utility_from_config(config: Mapping[str, Any]) -> UtilityFunction:
    """Build a utility function from a configuration mapping.

    The mapping must contain a ``class`` key naming a registered utility
    class; the remaining keys are passed to that class's builder.
    """
    try:
        name = str(config["class"]).strip().lower()
    except KeyError:
        raise ConfigurationError("utility config needs a 'class' key") from None
    builder = _BUILDERS.get(name)
    if builder is None:
        known = ", ".join(sorted(_BUILDERS))
        raise ConfigurationError(f"unknown utility class {name!r}; known: {known}")
    try:
        return builder(config)
    except KeyError as exc:
        raise ConfigurationError(
            f"utility class {name!r} is missing required parameter {exc}") from None
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"bad parameter for utility class {name!r}: {exc}") from None


def utility_to_config(utility: UtilityFunction) -> Dict[str, Any]:
    """Serialize a built-in utility back to its configuration mapping.

    Round-trips with :func:`utility_from_config` for the shipped classes;
    raises :class:`ConfigurationError` for unknown custom classes.
    """
    if isinstance(utility, LinearUtility):
        return {"class": "linear", "budget": utility.budget,
                "priority": utility.priority, "beta": utility.beta}
    if isinstance(utility, SigmoidUtility):
        return {"class": "sigmoid", "budget": utility.budget,
                "priority": utility.priority, "beta": utility.beta}
    if isinstance(utility, ConstantUtility):
        return {"class": "constant", "priority": utility.priority}
    if isinstance(utility, StepUtility):
        return {"class": "step", "budget": utility.budget,
                "priority": utility.priority}
    if isinstance(utility, PiecewiseUtility):
        return {"class": "piecewise", "points": list(utility.breakpoints)}
    raise ConfigurationError(
        f"cannot serialize utility of type {type(utility).__name__}")


def utility_from_xml(document: str) -> UtilityFunction:
    """Parse the paper's XML job-requirement format into a utility.

    ``document`` is the XML text.  The utility element may appear at the
    root or nested under a ``<job>`` element; its class is given by the
    ``class`` attribute and each parameter by a child element whose text is
    the value.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed job XML: {exc}") from None
    node = root if root.tag == "utility" else root.find("utility")
    if node is None:
        raise ConfigurationError("job XML has no <utility> element")
    name = node.get("class")
    if name is None:
        raise ConfigurationError("<utility> element needs a class attribute")
    params: Dict[str, Any] = {"class": name}
    for child in node:
        if child.tag == "points":
            params["points"] = [
                (float(pt.get("time")), float(pt.get("value")))
                for pt in child.findall("point")
            ]
        else:
            params[child.tag] = (child.text or "").strip()
    return utility_from_config(params)
