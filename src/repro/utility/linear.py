"""Piece-wise linear utility class from Section IV of the paper.

Given a completion-time ``T``, the linear class produces
``max(beta * (B - T) + W, 0)``: the job is worth ``beta * B + W`` when it
finishes instantly, decays linearly at rate ``beta`` and bottoms out at
zero once it is hopelessly late.  It models completion-time *sensitive*
jobs whose value erodes steadily with delay.
"""

from __future__ import annotations

import math

from repro.utility.base import UtilityFunction

__all__ = ["LinearUtility"]


class LinearUtility(UtilityFunction):
    """``U(T) = max(beta * (budget - T) + priority, 0)``.

    Parameters
    ----------
    budget:
        Time budget ``B`` in slots; the utility equals ``priority`` exactly
        at the budget.
    priority:
        Priority value ``W`` — the utility still awarded at the budget.
    beta:
        Sensitivity ``beta > 0``: utility lost per slot of delay.
    """

    __slots__ = ("budget", "priority", "beta")

    def __init__(self, budget: float, priority: float, beta: float = 1.0) -> None:
        self.budget = self._require_non_negative("budget", budget)
        self.priority = self._require_non_negative("priority", priority)
        self.beta = self._require_positive("beta", beta)

    def value(self, completion_time: float) -> float:
        return max(self.beta * (self.budget - completion_time) + self.priority, 0.0)

    def max_value(self) -> float:
        return self.beta * self.budget + self.priority

    def min_value(self) -> float:
        return 0.0

    def deadline_for(self, level: float) -> float:
        if level <= 0.0:
            return math.inf
        if level > self.max_value():
            return -math.inf
        # Solve beta * (B - T) + W = level for T.
        return self.budget + (self.priority - level) / self.beta

    def zero_utility_time(self) -> float:
        """First completion-time at which the utility hits zero."""
        return self.budget + self.priority / self.beta

    def __repr__(self) -> str:
        return (f"LinearUtility(budget={self.budget}, priority={self.priority}, "
                f"beta={self.beta})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearUtility):
            return NotImplemented
        return (self.budget, self.priority, self.beta) == (
            other.budget, other.priority, other.beta)

    def __hash__(self) -> int:
        return hash(("LinearUtility", self.budget, self.priority, self.beta))
