"""Sigmoid utility class from Section IV of the paper.

The sigmoid class models jobs whose value stays near the full priority
``W`` while the completion-time is within the budget ``B`` and then drops,
with the sensitivity coefficient ``beta`` controlling how steep the drop
is: a large ``beta`` describes a time-*critical* job (utility collapses
right after the budget), a small ``beta`` a time-*sensitive* one (gradual
decay).

.. note::
   The paper prints the formula as ``W / (1 + e^{beta (B - T)})``, which
   *increases* with ``T`` and contradicts the paper's own requirement that
   utilities be non-increasing (Section II).  We implement the evident
   intent, ``W / (1 + e^{beta (T - B)})``, which is worth ``W/2`` exactly
   at the budget and decays beyond it.  This erratum is recorded in
   DESIGN.md.
"""

from __future__ import annotations

import math

from repro.utility.base import UtilityFunction

__all__ = ["SigmoidUtility"]


class SigmoidUtility(UtilityFunction):
    """``U(T) = priority / (1 + exp(beta * (T - budget)))``."""

    __slots__ = ("budget", "priority", "beta")

    def __init__(self, budget: float, priority: float, beta: float = 0.5) -> None:
        self.budget = self._require_non_negative("budget", budget)
        self.priority = self._require_positive("priority", priority)
        self.beta = self._require_positive("beta", beta)

    def value(self, completion_time: float) -> float:
        z = self.beta * (completion_time - self.budget)
        if z > 700.0:  # exp would overflow; the utility is numerically zero
            return 0.0
        return self.priority / (1.0 + math.exp(z))

    def max_value(self) -> float:
        return self.value(0.0)

    def min_value(self) -> float:
        return 0.0

    def deadline_for(self, level: float) -> float:
        if level <= 0.0:
            return math.inf
        if level > self.max_value():
            return -math.inf
        if level >= self.priority:  # only possible when level == max == priority edge
            return 0.0
        # Solve priority / (1 + exp(beta (T - B))) = level for T.
        return self.budget + math.log(self.priority / level - 1.0) / self.beta

    def __repr__(self) -> str:
        return (f"SigmoidUtility(budget={self.budget}, priority={self.priority}, "
                f"beta={self.beta})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SigmoidUtility):
            return NotImplemented
        return (self.budget, self.priority, self.beta) == (
            other.budget, other.priority, other.beta)

    def __hash__(self) -> int:
        return hash(("SigmoidUtility", self.budget, self.priority, self.beta))
