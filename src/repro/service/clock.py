"""The real-time clock: wall time enters the system here, and only here.

Everything under ``repro`` outside this package is deterministic — a
pure function of (inputs, seed) with slot-indexed time, enforced by the
rushlint RL002/RL012 rules over the deterministic packages.  The
``service`` package is the sanctioned carve-out: a daemon must pace its
slots against real time and report calendar timestamps to operators.
:class:`RealTimeClock` is the single component that reads clocks —
monotonic time for slot pacing, ``time.time()`` for reporting — and it
still implements the same :class:`repro.core.clock.Clock` protocol the
simulated clock does, so the scheduling core underneath remains
bit-identical for a given slot sequence.  Nothing in ``core``,
``cluster``, ``schedulers`` or the service engine may import this
module's clocks back into a decision path; the lint carve-out test
(``tests/test_clock.py``) pins that the exemption does not leak.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["RealTimeClock"]


class RealTimeClock:
    """An asyncio-paced slot clock over the monotonic timeline.

    Implements the :class:`repro.core.clock.Clock` protocol (``slot``,
    ``advance``) exactly like :class:`~repro.core.clock.SimulatedClock`
    — ``advance()`` just increments the integer and never sleeps, so
    the simulator core cannot tell the clocks apart.  The *pacing*
    lives in :meth:`wait_for_next_slot`, which the daemon's slot loop
    awaits between ticks: each slot boundary sits ``slot_seconds``
    after the previous one on the monotonic timeline, without drift
    accumulation (boundaries are computed from the origin, not from
    "now + interval").

    After a snapshot restore the engine fast-forwards ``slot`` far past
    real time; :meth:`rebase` re-anchors the origin so the loop resumes
    pacing from the present instead of spinning to catch up.
    """

    def __init__(self, slot_seconds: float, *, start: int = 0) -> None:
        if slot_seconds <= 0:
            raise ValueError(
                f"slot_seconds must be positive, got {slot_seconds}")
        self.slot_seconds = float(slot_seconds)
        self._start = int(start)
        self._slot = int(start)
        self._origin = time.monotonic()
        #: Wall-clock daemon start time (reporting only, never decisions).
        self.started_at = time.time()

    @property
    def slot(self) -> int:
        return self._slot

    def advance(self) -> int:
        self._slot += 1
        return self._slot

    def rebase(self) -> None:
        """Re-anchor pacing so the *next* boundary is one slot from now."""
        self._start = self._slot
        self._origin = time.monotonic()

    async def wait_for_next_slot(self) -> None:
        """Sleep until the next slot boundary on the monotonic timeline.

        Always awaits, even when the boundary is already past: a loop
        running behind schedule must still yield to the event loop each
        iteration, or catching up would starve every other handler.
        """
        boundary = (self._slot - self._start + 1) * self.slot_seconds
        delay = self._origin + boundary - time.monotonic()
        await asyncio.sleep(max(delay, 0.0))

    def wall_time(self) -> float:
        """The current wall-clock timestamp (status reporting only)."""
        return time.time()

    def uptime_seconds(self) -> float:
        """Monotonic seconds since the clock was created or rebased."""
        return time.monotonic() - self._origin
