"""Snapshot and restore of the service's full scheduling state.

The engine's behaviour is a pure function of (config, journal): every
external input is journaled with the slot it became due, and everything
below the journal — planner, estimators, utility ledger, fault streams —
is deterministic given the slot sequence.  So a snapshot does not
serialize the planner's matrices or the estimators' sample buffers at
all; it freezes the *inputs* (config + journal + current slot) and
restore rebuilds the state by replaying them through a fresh engine.
That is both simpler and stronger than pickling internals: the restored
daemon provably re-derives the same decisions, and the snapshot carries
a digest of the decision stream so restore can verify the equivalence
instead of assuming it.

Format (JSON-able)::

    {"format": "rush-service-snapshot", "version": 1,
     "config": {...},        # ServiceConfig.to_dict()
     "slot": 42,             # the slot the engine had reached
     "auto_seq": 7,          # auto-id counter, so new ids never collide
     "journal": [...],       # ordered submit/cancel entries
     "decisions_digest": "<sha256 of the decision stream>"}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.clock import Clock
from repro.errors import ConfigurationError, ServiceError
from repro.service.engine import ServiceConfig, ServiceEngine

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "take_snapshot",
           "restore_engine", "save_snapshot", "load_snapshot"]

SNAPSHOT_FORMAT = "rush-service-snapshot"
SNAPSHOT_VERSION = 1


class SnapshotError(ServiceError):
    """A snapshot is malformed or replay failed to reproduce its state."""

    code = "snapshot-error"
    status = 500


def take_snapshot(engine: ServiceEngine) -> Dict[str, Any]:
    """Freeze the engine's inputs; cheap, read-only, any time."""
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "config": engine.config.to_dict(),
        "slot": engine.slot,
        "auto_seq": engine._auto_seq,
        "journal": [dict(entry) for entry in engine.journal],
        "decisions_digest": engine.decisions_digest(),
    }


def restore_engine(snapshot: Mapping[str, Any], *,
                   clock: Optional[Clock] = None,
                   verify: bool = True) -> ServiceEngine:
    """Rebuild an engine from a snapshot by replaying its journal.

    The replay interleaves journal entries with ticks exactly as the
    original run did — each entry is applied while the clock sits at the
    slot it was originally accepted in, so tenant quotas, event ordering
    and fault streams all re-derive identically.  With ``verify`` the
    rebuilt decision stream is checked against the snapshot's digest; a
    mismatch raises :class:`SnapshotError` rather than resuming from a
    silently divergent state.

    ``clock`` may be a real-time clock (its ``advance`` never sleeps, so
    replay is instant); the daemon rebases it afterwards.
    """
    if not isinstance(snapshot, Mapping):
        raise SnapshotError("snapshot must be a JSON object")
    if snapshot.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"not a service snapshot (format {snapshot.get('format')!r})")
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}")
    try:
        config = ServiceConfig.from_dict(snapshot["config"])
        target_slot = int(snapshot["slot"])
        auto_seq = int(snapshot.get("auto_seq", 0))
        journal = list(snapshot.get("journal") or [])
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from None

    engine = ServiceEngine(config, clock=clock)
    for entry in journal:
        try:
            due = int(entry["due"])
        except (KeyError, TypeError, ValueError):
            raise SnapshotError(
                f"journal entry without a due slot: {entry!r}") from None
        if due < engine.slot:
            raise SnapshotError(
                f"journal is out of order: entry due {due} after "
                f"slot {engine.slot}")
        while engine.slot < due:
            engine.tick()
        engine.replay_entry(entry)
    while engine.slot < target_slot:
        engine.tick()
    engine._auto_seq = max(engine._auto_seq, auto_seq)

    if verify:
        expected = snapshot.get("decisions_digest")
        actual = engine.decisions_digest()
        if expected is not None and actual != expected:
            raise SnapshotError(
                "replay diverged from the snapshotted run: decision "
                f"digest {actual[:12]}… != expected {str(expected)[:12]}…")
    return engine


def save_snapshot(engine: ServiceEngine, path: Union[str, Path]) -> None:
    """Write a snapshot atomically and durably to ``path``.

    Routed through the journal's write-then-rename-then-fsync helper —
    the single sanctioned write path under ``repro.service`` (RL015).
    """
    # Imported lazily: journal.py imports this module at the top level.
    from repro.service.journal import atomic_write_text

    blob = json.dumps(take_snapshot(engine), sort_keys=True, indent=2)
    atomic_write_text(Path(path), blob + "\n")


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a snapshot file; malformed JSON raises :class:`SnapshotError`."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from None
    if not isinstance(data, dict):
        raise SnapshotError(f"snapshot {path} is not a JSON object")
    return data
