"""Multi-tenant admission layered on the capacity-scheduler queues.

The daemon serves several clients ("tenants") from one cluster.  Tenancy
has two halves here:

* **Admission** — every submission maps to a tenant; a tenant may carry
  a ``max_active`` quota on concurrently live (queued or running) jobs,
  refused with the typed 429 :class:`~repro.errors.TenantQuotaError`.
* **Capacity** — under the ``capacity`` policy the tenant shares *are*
  the queue shares of the existing
  :class:`~repro.schedulers.capacity.CapacityScheduler`: each tenant
  becomes a queue with its guaranteed fraction, borrowing idle capacity
  exactly as the YARN baseline does.  Under planning policies (RUSH),
  tenancy stays an admission/accounting layer and the planner optimizes
  across tenants globally — the paper's robust objective is already
  job-level, so per-tenant fairness is delegated to quotas.

The registry is deterministic state: it is rebuilt identically from the
journal on snapshot restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.job import JobSpec
from repro.errors import (BadRequestError, ConfigurationError,
                          TenantQuotaError)
from repro.schedulers.capacity import CapacityScheduler

__all__ = ["TenantSpec", "TenantRegistry", "DEFAULT_TENANT"]

DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's frozen configuration.

    ``share`` is its guaranteed capacity fraction (the queue share under
    the capacity policy; shares must sum to 1 across tenants).
    ``max_active`` bounds concurrently live jobs; ``None`` means
    unlimited.
    """

    name: str
    share: float = 1.0
    max_active: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not 0.0 < self.share <= 1.0:
            raise ConfigurationError(
                f"tenant {self.name!r}: share must be in (0, 1], "
                f"got {self.share}")
        if self.max_active is not None and self.max_active < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: max_active must be >= 1, "
                f"got {self.max_active}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "share": self.share,
                "max_active": self.max_active}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpec":
        try:
            max_active = data.get("max_active")
            return cls(name=str(data["name"]),
                       share=float(data.get("share", 1.0)),
                       max_active=(int(max_active)
                                   if max_active is not None else None))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed tenant spec: {exc}") from None


class TenantRegistry:
    """Job→tenant bookkeeping plus quota admission.

    Live counts move on the engine's lifecycle notifications (admit,
    complete, cancel), so quota decisions depend only on the journaled
    event sequence — never on wall time.
    """

    def __init__(self, tenants: Sequence[TenantSpec] = ()) -> None:
        specs = list(tenants) or [TenantSpec(name=DEFAULT_TENANT)]
        names = [t.name for t in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate tenant names in {names}")
        total = sum(t.share for t in specs)
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"tenant shares must sum to 1, got {total}")
        self._tenants: Dict[str, TenantSpec] = {t.name: t for t in specs}
        self._owner: Dict[str, str] = {}
        self._live: Dict[str, int] = {name: 0 for name in self._tenants}
        self._submitted: Dict[str, int] = {name: 0 for name in self._tenants}

    @property
    def names(self) -> List[str]:
        return sorted(self._tenants)

    @property
    def default_tenant(self) -> str:
        if DEFAULT_TENANT in self._tenants:
            return DEFAULT_TENANT
        return self.names[0]

    def spec(self, name: str) -> TenantSpec:
        try:
            return self._tenants[name]
        except KeyError:
            raise BadRequestError(
                f"unknown tenant {name!r}; known: "
                f"{', '.join(self.names)}") from None

    def tenant_of(self, job_id: str) -> Optional[str]:
        return self._owner.get(job_id)

    # -- admission ------------------------------------------------------

    def admit(self, tenant: Optional[str], job_id: str) -> str:
        """Claim a live-job slot for ``job_id``; returns the tenant name."""
        name = tenant if tenant is not None else self.default_tenant
        spec = self.spec(name)
        if (spec.max_active is not None
                and self._live[name] >= spec.max_active):
            raise TenantQuotaError(
                f"tenant {name!r} is at its max_active quota "
                f"({spec.max_active} live job(s)); retry later")
        self._owner[job_id] = name
        self._live[name] += 1
        self._submitted[name] += 1
        return name

    def release(self, job_id: str) -> None:
        """A job left the live set (completed or cancelled)."""
        name = self._owner.get(job_id)
        if name is not None:
            self._live[name] = max(0, self._live[name] - 1)

    # -- scheduler integration -----------------------------------------

    def capacity_scheduler(self) -> CapacityScheduler:
        """The tenant queues as a YARN-style capacity scheduler.

        The ``queue_for`` closure reads this registry, so jobs admitted
        later (with ids unknown at construction) still route to their
        tenant's queue.
        """
        shares = {name: spec.share for name, spec in self._tenants.items()}

        def queue_for(spec: JobSpec) -> str:
            return self._owner.get(spec.job_id, self.default_tenant)

        return CapacityScheduler(queue_shares=shares, queue_for=queue_for)

    # -- reporting ------------------------------------------------------

    def status(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names:
            spec = self._tenants[name]
            out[name] = {
                "share": spec.share,
                "max_active": spec.max_active,
                "live_jobs": self._live[name],
                "submitted_total": self._submitted[name],
            }
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [self._tenants[name].to_dict() for name in self.names]


def tenants_from_dicts(data: Sequence[Mapping[str, Any]]
                       ) -> Tuple[TenantSpec, ...]:
    """Parse a tenant list from JSON (CLI --tenants / snapshot config)."""
    return tuple(TenantSpec.from_dict(item) for item in data)
