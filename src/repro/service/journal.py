"""The durable write-ahead journal behind ``rush serve --journal-dir``.

PR 8's snapshot machinery made the daemon restart-safe *if someone
snapshotted*; this module makes it crash-safe by construction.  Every
externally-visible event — ``submit``, ``cancel``, each ``tick`` slot —
is framed, appended and fsynced to a segment file *before* the engine
applies it, so an accepted request is durable by the time its HTTP
response leaves the socket.  Recovery is the same replay the snapshot
path already proves correct: the engine's behaviour is a pure function
of (config, journal), so scanning the log and re-applying it through a
fresh :class:`~repro.service.engine.ServiceEngine` re-derives the exact
pre-crash decision stream — and periodic checkpoint records carrying
the decision-stream digest let recovery *verify* that instead of
assuming it.

On-disk layout (one directory)::

    anchor.json          # a rush-service-snapshot + "journal_seq": N
    wal-00000001.log     # segment: 8-byte magic, then framed records
    wal-00000042.log     # later segment, named by its first seq

Record framing: ``<u32 payload-length> <u32 crc32(payload)>`` followed
by the canonical-JSON payload ``{"seq": n, ...event}``.  Appends go
through exactly one helper (:meth:`JournalWriter.append` — lint rule
RL015 pins that nothing else under ``repro.service`` opens files for
writing), and each append is a single ``write`` + ``fsync``, so a crash
can only ever tear the final record.  Recovery truncates a torn tail
(metered as ``rush_journal_recovery_truncated_bytes``); any *other*
framing damage — a CRC mismatch, a sequence gap, a checkpoint whose
digest the replay cannot reproduce — raises
:class:`JournalCorruptError` naming the file and byte offset, because
resuming from a silently wrong log is worse than not resuming.

Compaction is snapshot-anchored: when a segment fills, the writer
rotates, writes a fresh anchor (config + in-memory journal + slot +
``journal_seq``) via an atomic write-then-rename, and deletes the
segments the anchor now covers.  Recovery restores the anchor through
:func:`repro.service.snapshot.restore_engine` and replays only the
records with ``seq`` greater than the anchor's.

All file I/O goes through an injectable
:class:`~repro.faults.disk.JournalFileOps` layer so the disk-fault
species in :mod:`repro.faults.disk` (torn write, partial fsync,
``ENOSPC``, duplicated tail) exercise this exact code with no
monkeypatching.  Duplicated tail records — a crashed retry that landed
twice — are deduplicated by sequence number during replay.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError, ServiceError
from repro.obs import get_metrics, get_tracer
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.snapshot import load_snapshot, restore_engine, take_snapshot

if False:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.core.clock import Clock

__all__ = [
    "ANCHOR_NAME",
    "JournalCorruptError",
    "JournalWriteError",
    "JournalWriter",
    "RealFileOps",
    "SEGMENT_MAGIC",
    "atomic_write_text",
    "open_journal",
    "recover_engine",
]

SEGMENT_MAGIC = b"RUSHWAL1"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"
ANCHOR_NAME = "anchor.json"

#: Frame header: payload length and crc32(payload), little-endian u32s.
_HEADER = struct.Struct("<II")

#: Rotate to a fresh segment once the current one exceeds this size.
DEFAULT_SEGMENT_MAX_BYTES = 256 * 1024

#: Append a decision-digest checkpoint record every N records.
DEFAULT_CHECKPOINT_EVERY = 32


class JournalWriteError(ServiceError):
    """An append could not be made durable (disk full, I/O error).

    Raised *before* the engine applies the event, so the in-memory and
    on-disk states stay consistent and the client may safely retry —
    with an idempotency key, even after an ambiguous failure.
    """

    code = "journal-unavailable"
    status = 503


class JournalCorruptError(ServiceError):
    """The journal cannot be trusted; recovery refuses to proceed.

    Always names the segment ``path`` and byte ``offset`` of the first
    unusable record — a torn *tail* is handled by truncation instead,
    so reaching this error means mid-log damage or replay divergence,
    and the operator must intervene rather than resume silently.
    """

    code = "journal-corrupt"
    status = 500

    def __init__(self, message: str, *, path: Union[str, Path, None] = None,
                 offset: Optional[int] = None) -> None:
        self.path = str(path) if path is not None else None
        self.offset = offset
        where = ""
        if self.path is not None:
            where = f" [{self.path}"
            where += f" @ byte {offset}]" if offset is not None else "]"
        super().__init__(message + where)


class RealFileOps:
    """The production file-op layer: plain ``os``-level durability.

    This class and :meth:`JournalWriter.append` are the only sanctioned
    write paths under ``repro.service`` (lint rule RL015); everything
    else — snapshots included — routes through here so the fsync
    discipline and the disk-fault injection seam cover every byte the
    service persists.  Satisfies
    :class:`repro.faults.disk.JournalFileOps`.
    """

    def open_append(self, path: str) -> IO[bytes]:
        return open(path, "ab")

    def write(self, fobj: IO[bytes], data: bytes) -> int:
        return fobj.write(data)

    def fsync(self, fobj: IO[bytes]) -> None:
        fobj.flush()
        os.fsync(fobj.fileno())

    def close(self, fobj: IO[bytes]) -> None:
        fobj.close()

    def write_bytes(self, path: str, data: bytes) -> None:
        with open(path, "wb") as fobj:
            fobj.write(data)
            fobj.flush()
            os.fsync(fobj.fileno())

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        os.truncate(path, size)

    def fsync_dir(self, path: str) -> None:
        """Persist directory entries (new/renamed files); best-effort."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX directory handles
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str, *,
                      file_ops: Optional[Any] = None) -> None:
    """Write-then-rename with an fsync on both file and directory.

    The durable variant of the snapshot module's old tmp+rename: after
    this returns, a crash leaves either the old content or the new —
    never a torn mixture.  All service-side whole-file writes (snapshot
    persistence, the journal anchor) go through here.
    """
    ops = file_ops if file_ops is not None else RealFileOps()
    target = Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp")
    ops.write_bytes(str(tmp), text.encode("utf-8"))
    ops.replace(str(tmp), str(target))
    ops.fsync_dir(str(target.parent))


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _encode_record(seq: int, entry: Mapping[str, Any]) -> bytes:
    body = dict(entry)
    body["seq"] = int(seq)
    payload = json.dumps(body, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_paths(directory: Path) -> List[Path]:
    names = [n for n in os.listdir(directory)
             if n.startswith(SEGMENT_PREFIX) and n.endswith(SEGMENT_SUFFIX)]
    return [directory / n for n in sorted(names)]


def _segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:08d}{SEGMENT_SUFFIX}"


def _scan_segments(directory: Path, ops: Any
                   ) -> Tuple[List[Tuple[str, int, Dict[str, Any]]], int]:
    """Parse every record in every segment, in order.

    Returns ``(records, truncated_bytes)`` where each record is
    ``(path, offset, payload_dict)``.  A torn frame at the physical
    tail of the *final* segment is truncated away (that is the one
    place a single-write-plus-fsync discipline can tear); torn or
    corrupt frames anywhere else raise :class:`JournalCorruptError`
    with the byte offset.
    """
    records: List[Tuple[str, int, Dict[str, Any]]] = []
    truncated = 0
    paths = _segment_paths(directory)
    for index, path in enumerate(paths):
        is_last = index == len(paths) - 1
        data = path.read_bytes()
        if len(data) < len(SEGMENT_MAGIC):
            if is_last and SEGMENT_MAGIC.startswith(data):
                truncated += len(data)
                ops.truncate(str(path), 0)
                continue
            raise JournalCorruptError(
                "segment header is damaged", path=path, offset=0)
        if data[:len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise JournalCorruptError(
                f"bad segment magic {data[:8]!r}", path=path, offset=0)
        offset = len(SEGMENT_MAGIC)
        while offset < len(data):
            frame_end = offset + _HEADER.size
            if frame_end > len(data):
                offset = _truncate_tail(path, data, offset, is_last, ops)
                truncated += len(data) - offset
                break
            length, crc = _HEADER.unpack_from(data, offset)
            frame_end += length
            if frame_end > len(data):
                offset = _truncate_tail(path, data, offset, is_last, ops)
                truncated += len(data) - offset
                break
            payload = data[offset + _HEADER.size:frame_end]
            if zlib.crc32(payload) != crc:
                raise JournalCorruptError(
                    "record CRC mismatch", path=path, offset=offset)
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise JournalCorruptError(
                    "record payload is not valid JSON despite a valid "
                    "CRC", path=path, offset=offset) from None
            if not isinstance(record, dict) or "seq" not in record:
                raise JournalCorruptError(
                    "record payload is missing its sequence number",
                    path=path, offset=offset)
            records.append((str(path), offset, record))
            offset = frame_end
    return records, truncated


def _truncate_tail(path: Path, data: bytes, offset: int, is_last: bool,
                   ops: Any) -> int:
    if not is_last:
        raise JournalCorruptError(
            "torn record in a non-final segment", path=path, offset=offset)
    ops.truncate(str(path), offset)
    return offset


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

class JournalWriter:
    """Appends framed records to segment files, one fsync per append."""

    def __init__(self, directory: Union[str, Path], *,
                 file_ops: Optional[Any] = None,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 auto_compact: bool = True,
                 start_seq: int = 0) -> None:
        if segment_max_bytes < 1024:
            raise ConfigurationError(
                f"segment_max_bytes must be >= 1024, got {segment_max_bytes}")
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.directory = Path(directory)
        self.ops = file_ops if file_ops is not None else RealFileOps()
        self.segment_max_bytes = int(segment_max_bytes)
        self.checkpoint_every = int(checkpoint_every)
        self.auto_compact = bool(auto_compact)
        self._seq = int(start_seq)
        self._since_checkpoint = 0
        self._closed = False
        self._segment: Optional[IO[bytes]] = None
        self._segment_path: Optional[Path] = None
        self._segment_size = 0
        self._open_segment()

    @property
    def seq(self) -> int:
        """The sequence number of the last durable record."""
        return self._seq

    @property
    def segment_path(self) -> Optional[Path]:
        return self._segment_path

    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self._seq + 1)
        existing = path.stat().st_size if path.exists() else 0
        self._segment = self.ops.open_append(str(path))
        self._segment_path = path
        if existing == 0:
            self.ops.write(self._segment, SEGMENT_MAGIC)
            self.ops.fsync(self._segment)
            existing = len(SEGMENT_MAGIC)
        self._segment_size = existing

    def append(self, entry: Mapping[str, Any]) -> int:
        """THE atomic append: frame, write once, fsync, then return.

        Every byte the journal persists flows through this method (and
        the anchor's :func:`atomic_write_text`) — the write discipline
        lint rule RL015 enforces across ``repro.service``.  An
        ``OSError`` (``ENOSPC``, EIO) surfaces as the retryable
        :class:`JournalWriteError` *before* the event is applied, so a
        failed append never leaves a half-admitted job.
        """
        if self._closed or self._segment is None:
            raise JournalWriteError("journal writer is closed")
        frame = _encode_record(self._seq + 1, entry)
        try:
            self.ops.write(self._segment, frame)
            self.ops.fsync(self._segment)
        except OSError as exc:
            raise JournalWriteError(
                f"journal append failed: {exc}") from exc
        self._seq += 1
        self._segment_size += len(frame)
        self._since_checkpoint += 1
        metrics = get_metrics()
        if metrics.active:
            metrics.counter(
                "rush_journal_appends_total",
                help="Records appended to the write-ahead journal",
                labels=("kind",)).labels(str(entry.get("kind", "?"))).inc()
            metrics.counter(
                "rush_journal_fsyncs_total",
                help="fsync calls made durable by the journal").inc()
        return self._seq

    def note_applied(self, engine: ServiceEngine) -> None:
        """Housekeeping hook the engine calls after applying an event.

        Runs only at a consistent point (everything appended has been
        applied), which is what lets the checkpoint digest describe the
        log prefix exactly and lets compaction anchor on live state.
        """
        if self._since_checkpoint >= self.checkpoint_every:
            self.append({"kind": "checkpoint", "slot": engine.slot,
                         "decisions_digest": engine.decisions_digest()})
            self._since_checkpoint = 0
        if self._segment_size >= self.segment_max_bytes:
            self.rotate()
            if self.auto_compact:
                self.compact(engine)

    def rotate(self) -> None:
        """Close the current segment and start a fresh one."""
        if self._segment is not None:
            self.ops.close(self._segment)
        self._open_segment()
        self.ops.fsync_dir(str(self.directory))

    def compact(self, engine: ServiceEngine) -> None:
        """Anchor the journal at the engine's state; drop covered segments.

        The anchor is a standard service snapshot plus ``journal_seq``,
        written atomically; every segment other than the one currently
        being written holds only records at or below that seq, so they
        are deleted.  A crash anywhere in this sequence is safe: before
        the rename the old anchor still covers everything, and after it
        leftover segments are skipped by the seq filter during replay.
        """
        snapshot = take_snapshot(engine)
        snapshot["journal_seq"] = self._seq
        blob = json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
        atomic_write_text(self.directory / ANCHOR_NAME, blob,
                          file_ops=self.ops)
        for path in _segment_paths(self.directory):
            if path != self._segment_path:
                self.ops.remove(str(path))
        self.ops.fsync_dir(str(self.directory))

    def close(self) -> None:
        """Flush and close; idempotent (the daemon closes on shutdown)."""
        if self._closed:
            return
        self._closed = True
        if self._segment is not None:
            try:
                self.ops.fsync(self._segment)
            finally:
                self.ops.close(self._segment)
            self._segment = None


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

def recover_engine(directory: Union[str, Path], *,
                   clock: Optional["Clock"] = None,
                   file_ops: Optional[Any] = None
                   ) -> Tuple[ServiceEngine, Dict[str, Any]]:
    """Rebuild an engine from a journal directory, digest-verified.

    Restores the anchor snapshot (itself digest-verified by
    :func:`~repro.service.snapshot.restore_engine`), then replays every
    WAL record past the anchor's ``journal_seq`` in sequence order:
    ``tick`` advances the clock, ``submit``/``cancel`` re-enter through
    the same replay path snapshots use, and each ``checkpoint`` record
    must match the rebuilt decision digest exactly.  Returns the engine
    plus recovery stats (``last_seq``, ``applied``, ``deduped``,
    ``truncated_bytes``, ``segments``, ``checkpoints``).
    """
    dirpath = Path(directory)
    ops = file_ops if file_ops is not None else RealFileOps()
    tracer = get_tracer()
    with tracer.span("journal.recover", directory=str(dirpath)) as span:
        records, truncated = _scan_segments(dirpath, ops)
        anchor_path = dirpath / ANCHOR_NAME
        if not anchor_path.exists():
            if records:
                raise JournalCorruptError(
                    "journal has records but no anchor snapshot",
                    path=records[0][0], offset=records[0][1])
            raise JournalCorruptError(
                f"no journal found in {dirpath}", path=anchor_path)
        anchor = load_snapshot(anchor_path)
        anchor_seq = int(anchor.get("journal_seq", 0))
        engine = restore_engine(anchor, clock=clock, verify=True)

        applied = deduped = skipped = checkpoints = 0
        prev_seq = anchor_seq
        prev_record: Optional[Dict[str, Any]] = None
        for path, offset, record in records:
            seq = int(record["seq"])
            if seq <= anchor_seq:
                skipped += 1  # compaction crashed before segment removal
                continue
            if seq == prev_seq and prev_record is not None:
                if record == prev_record:
                    deduped += 1  # a retried append that landed twice
                    continue
                raise JournalCorruptError(
                    f"conflicting duplicate of record seq {seq}",
                    path=path, offset=offset)
            if seq != prev_seq + 1:
                raise JournalCorruptError(
                    f"sequence gap: expected seq {prev_seq + 1}, "
                    f"found {seq}", path=path, offset=offset)
            _apply_record(engine, record, path, offset)
            if record.get("kind") == "checkpoint":
                checkpoints += 1
            prev_seq = seq
            prev_record = record
            applied += 1

        metrics = get_metrics()
        if metrics.active and truncated:
            metrics.counter(
                "rush_journal_recovery_truncated_bytes",
                help="Bytes of torn tail records discarded during "
                     "journal recovery").inc(truncated)
        stats = {
            "last_seq": prev_seq,
            "applied": applied,
            "deduped": deduped,
            "skipped": skipped,
            "checkpoints": checkpoints,
            "truncated_bytes": truncated,
            "segments": len(_segment_paths(dirpath)),
            "slot": engine.slot,
        }
        span.note(**stats)
    return engine, stats


def _apply_record(engine: ServiceEngine, record: Mapping[str, Any],
                  path: str, offset: int) -> None:
    kind = record.get("kind")
    if kind == "tick":
        engine.tick()
        return
    if kind == "checkpoint":
        slot = record.get("slot")
        digest = record.get("decisions_digest")
        if slot != engine.slot or digest != engine.decisions_digest():
            raise JournalCorruptError(
                "checkpoint mismatch: replay diverged from the "
                "journaled decision stream", path=path, offset=offset)
        return
    if kind in ("submit", "cancel"):
        try:
            due = int(record["due"])
        except (KeyError, TypeError, ValueError):
            raise JournalCorruptError(
                f"{kind} record without a due slot",
                path=path, offset=offset) from None
        if due != engine.slot:
            raise JournalCorruptError(
                f"{kind} record due at slot {due} replayed at slot "
                f"{engine.slot}: a tick record is missing",
                path=path, offset=offset)
        entry = {k: v for k, v in record.items() if k != "seq"}
        try:
            engine.replay_entry(entry)
        except ServiceError as exc:
            raise JournalCorruptError(
                f"journaled {kind} no longer replays: {exc}",
                path=path, offset=offset) from exc
        return
    raise JournalCorruptError(
        f"unknown record kind {kind!r}", path=path, offset=offset)


def open_journal(directory: Union[str, Path],
                 config: Optional[ServiceConfig] = None, *,
                 clock: Optional["Clock"] = None,
                 file_ops: Optional[Any] = None,
                 segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 auto_compact: bool = True
                 ) -> Tuple[ServiceEngine, JournalWriter]:
    """Open (or create) a journal directory and return (engine, writer).

    An existing journal is recovered — the given ``config`` must then
    match the journaled one, because replaying under different capacity
    or policy would silently re-derive different decisions.  A fresh
    directory needs a ``config`` and is initialized with an anchor at
    seq 0.  The returned engine has the writer attached: every
    subsequent submit/cancel/tick is appended and fsynced before it is
    applied.
    """
    dirpath = Path(directory)
    os.makedirs(dirpath, exist_ok=True)
    ops = file_ops if file_ops is not None else RealFileOps()

    has_anchor = (dirpath / ANCHOR_NAME).exists()
    if not has_anchor:
        # A crash during first-time init can leave record-less segments
        # (magic only, or a torn first record): re-initialize.  Any
        # *record* without an anchor is real data loss — refuse.
        records, _ = _scan_segments(dirpath, ops)
        if records:
            raise JournalCorruptError(
                "journal has records but no anchor snapshot",
                path=records[0][0], offset=records[0][1])

    stats: Dict[str, Any] = {}
    if has_anchor:
        engine, stats = recover_engine(dirpath, clock=clock, file_ops=ops)
        if config is not None \
                and engine.config.to_dict() != config.to_dict():
            raise ConfigurationError(
                f"journal at {dirpath} was created under a different "
                "service config; restart with the original flags or "
                "point --journal-dir at a fresh directory")
        start_seq = int(stats["last_seq"])
    else:
        if config is None:
            raise ConfigurationError(
                f"no journal at {dirpath} and no service config given "
                "to create one")
        engine = ServiceEngine(config, clock=clock)
        start_seq = 0

    writer = JournalWriter(
        dirpath, file_ops=ops, segment_max_bytes=segment_max_bytes,
        checkpoint_every=checkpoint_every, auto_compact=auto_compact,
        start_seq=start_seq)
    if not has_anchor:
        writer.compact(engine)  # the seq-0 anchor a fresh journal starts from
    engine.attach_wal(writer)
    return engine, writer
