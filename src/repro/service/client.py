"""A minimal asyncio client for the scheduler daemon.

Raw ``asyncio.open_connection`` HTTP — the same zero-dependency stance
as the daemon.  One request per connection, mirroring the server's
``Connection: close`` contract.  Error responses are lifted back into
:class:`ServiceRequestError`, so callers branch on the typed ``code``
exactly as in-process callers branch on
:class:`~repro.errors.ServiceError` subclasses.

Transport failures — connection refused, a connection reset mid-body —
surface as :class:`ServiceUnavailableError` carrying the attempt count,
never a raw ``OSError``.  With ``retries > 0`` the client retries them
under seeded exponential backoff with jitter, but only for requests it
knows are idempotent: reads, cancels, and submits that carry an
idempotency key (auto-generated when retries are enabled, deduplicated
server-side, so a retry after an ambiguous crash never double-admits).
``/tick`` is never retried — a lost response leaves it ambiguous
whether the clock advanced.

Used by the integration tests and by :mod:`repro.service.smoke` (the CI
jobs that replay a scenario — or survive a ``kill -9`` — through the
HTTP API and diff the outcome digest).
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceRequestError", "ServiceUnavailableError"]


class ServiceRequestError(ReproError):
    """A request the daemon rejected, with its typed error surface."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(f"[{status} {code}] {message}")


class ServiceUnavailableError(ReproError):
    """The daemon could not be reached, or hung up mid-response.

    Raised after every allowed attempt failed; ``attempts`` counts how
    many were made so callers (and tests) can see the retry behaviour.
    """

    def __init__(self, message: str, *, attempts: int) -> None:
        self.attempts = attempts
        super().__init__(
            f"service unavailable after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {message}")


class ServiceClient:
    """Talk to one daemon at ``host:port``; all methods are coroutines."""

    def __init__(self, host: str, port: int, *, retries: int = 0,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = np.random.default_rng(seed)

    # -- transport -------------------------------------------------------

    async def _request_once(self, method: str, path: str,
                            payload: Optional[Any] = None
                            ) -> Tuple[int, str, bytes]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else b"")
            writer.write((
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1"))
            writer.write(body)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1")
            if not status_line.strip():
                # The daemon accepted the connection then died before
                # responding — e.g. killed mid-request.
                raise ConnectionResetError("empty response (connection "
                                           "closed before the status line)")
            status = int(status_line.split(" ", 2)[1])
            content_type = ""
            length: Optional[int] = None
            while True:
                line = (await reader.readline()).decode("latin-1").strip()
                if not line:
                    break
                key, _, value = line.partition(":")
                if key.strip().lower() == "content-type":
                    content_type = value.strip()
                elif key.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await reader.read()
            if length is not None and len(raw) < length:
                raise ConnectionResetError(
                    f"truncated body: got {len(raw)} of {length} bytes")
            return status, content_type, raw
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request(self, method: str, path: str,
                      payload: Optional[Any] = None, *,
                      idempotent: bool = True) -> Tuple[int, str, bytes]:
        """One logical round trip; returns (status, content-type, body).

        Transport failures raise :class:`ServiceUnavailableError`; when
        ``idempotent`` (and ``retries`` allows) they are retried first
        under capped exponential backoff with seeded jitter.
        """
        attempts = self.retries + 1 if idempotent else 1
        last: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            try:
                return await self._request_once(method, path, payload)
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                last = exc
                if attempt < attempts:
                    delay = min(self.backoff_cap,
                                self.backoff_base * 2 ** (attempt - 1))
                    # Jitter in [0.5, 1.0)x keeps retry storms apart
                    # without ever exceeding the cap.
                    await asyncio.sleep(
                        delay * (0.5 + float(self._rng.random()) / 2))
        raise ServiceUnavailableError(str(last), attempts=attempts) from last

    async def request_json(self, method: str, path: str,
                           payload: Optional[Any] = None, *,
                           idempotent: bool = True) -> Any:
        """A JSON round trip; error responses raise the typed exception."""
        status, _ctype, raw = await self.request(method, path, payload,
                                                 idempotent=idempotent)
        data = json.loads(raw.decode("utf-8")) if raw else None
        if status >= 400:
            error = (data or {}).get("error", {}) if isinstance(data, dict) \
                else {}
            raise ServiceRequestError(
                status, str(error.get("code", "unknown")),
                str(error.get("message", raw.decode("utf-8", "replace"))))
        return data

    # -- endpoints -------------------------------------------------------

    async def healthz(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/healthz")

    async def status(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/status")

    async def tenants(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/tenants")

    async def submit(self, payload: Dict[str, Any], *,
                     idempotency_key: Optional[str] = None
                     ) -> Dict[str, Any]:
        """Submit a job; safe to retry exactly when it carries a key.

        With ``retries`` enabled and no caller-chosen key, one is
        generated (``os.urandom``, not the seeded rng — two clients
        sharing a default seed must never collide on keys) so the
        retry loop can re-send the submit without double-admitting.
        """
        body = dict(payload)
        if idempotency_key is not None:
            body["idempotency_key"] = idempotency_key
        elif self.retries > 0 and "idempotency_key" not in body:
            body["idempotency_key"] = f"auto-{os.urandom(8).hex()}"
        return await self.request_json(
            "POST", "/jobs", body,
            idempotent="idempotency_key" in body)

    async def jobs(self) -> List[Dict[str, Any]]:
        return (await self.request_json("GET", "/jobs"))["jobs"]

    async def job(self, job_id: str) -> Dict[str, Any]:
        return await self.request_json("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        return await self.request_json("DELETE", f"/jobs/{job_id}")

    async def tick(self, slots: int = 1) -> Dict[str, Any]:
        # Never retried: a lost response leaves the slot advance
        # ambiguous, and re-ticking is not idempotent.
        return await self.request_json("POST", "/tick", {"slots": slots},
                                       idempotent=False)

    async def snapshot(self) -> Dict[str, Any]:
        return await self.request_json("POST", "/snapshot")

    async def chaos_solver_fault(self, depth: int = 1) -> Dict[str, Any]:
        return await self.request_json("POST", "/chaos/solver-fault",
                                       {"depth": depth})

    async def metrics_text(self) -> str:
        status, _ctype, raw = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceRequestError(status, "metrics", raw.decode())
        return raw.decode("utf-8")

    async def stream(self, count: int) -> List[Dict[str, Any]]:
        """Collect ``count`` NDJSON status lines from ``/stream``.

        The connection stays open across slots, so in manual-clock mode
        something else must drive ``/tick`` concurrently.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write((
                f"GET /stream?count={count} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1"))
            await writer.drain()
            while True:  # skip the response headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            payloads: List[Dict[str, Any]] = []
            while len(payloads) < count:
                line = await reader.readline()
                if not line:
                    break
                payloads.append(json.loads(line.decode("utf-8")))
            return payloads
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
