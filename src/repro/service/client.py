"""A minimal asyncio client for the scheduler daemon.

Raw ``asyncio.open_connection`` HTTP — the same zero-dependency stance
as the daemon.  One request per connection, mirroring the server's
``Connection: close`` contract.  Error responses are lifted back into
:class:`ServiceRequestError`, so callers branch on the typed ``code``
exactly as in-process callers branch on
:class:`~repro.errors.ServiceError` subclasses.

Used by the integration tests and by :mod:`repro.service.smoke` (the CI
job that replays a scenario through the HTTP API and diffs the outcome
digest against the simulator path).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceRequestError"]


class ServiceRequestError(ReproError):
    """A request the daemon rejected, with its typed error surface."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(f"[{status} {code}] {message}")


class ServiceClient:
    """Talk to one daemon at ``host:port``; all methods are coroutines."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    # -- transport -------------------------------------------------------

    async def request(self, method: str, path: str,
                      payload: Optional[Any] = None
                      ) -> Tuple[int, str, bytes]:
        """One round trip; returns (status, content-type, raw body)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else b"")
            writer.write((
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1"))
            writer.write(body)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1")
            status = int(status_line.split(" ", 2)[1])
            content_type = ""
            while True:
                line = (await reader.readline()).decode("latin-1").strip()
                if not line:
                    break
                key, _, value = line.partition(":")
                if key.strip().lower() == "content-type":
                    content_type = value.strip()
            raw = await reader.read()
            return status, content_type, raw
        finally:
            writer.close()
            await writer.wait_closed()

    async def request_json(self, method: str, path: str,
                           payload: Optional[Any] = None) -> Any:
        """A JSON round trip; error responses raise the typed exception."""
        status, _ctype, raw = await self.request(method, path, payload)
        data = json.loads(raw.decode("utf-8")) if raw else None
        if status >= 400:
            error = (data or {}).get("error", {}) if isinstance(data, dict) \
                else {}
            raise ServiceRequestError(
                status, str(error.get("code", "unknown")),
                str(error.get("message", raw.decode("utf-8", "replace"))))
        return data

    # -- endpoints -------------------------------------------------------

    async def healthz(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/healthz")

    async def status(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/status")

    async def tenants(self) -> Dict[str, Any]:
        return await self.request_json("GET", "/tenants")

    async def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return await self.request_json("POST", "/jobs", payload)

    async def jobs(self) -> List[Dict[str, Any]]:
        return (await self.request_json("GET", "/jobs"))["jobs"]

    async def job(self, job_id: str) -> Dict[str, Any]:
        return await self.request_json("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        return await self.request_json("DELETE", f"/jobs/{job_id}")

    async def tick(self, slots: int = 1) -> Dict[str, Any]:
        return await self.request_json("POST", "/tick", {"slots": slots})

    async def snapshot(self) -> Dict[str, Any]:
        return await self.request_json("POST", "/snapshot")

    async def chaos_solver_fault(self, depth: int = 1) -> Dict[str, Any]:
        return await self.request_json("POST", "/chaos/solver-fault",
                                       {"depth": depth})

    async def metrics_text(self) -> str:
        status, _ctype, raw = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceRequestError(status, "metrics", raw.decode())
        return raw.decode("utf-8")

    async def stream(self, count: int) -> List[Dict[str, Any]]:
        """Collect ``count`` NDJSON status lines from ``/stream``.

        The connection stays open across slots, so in manual-clock mode
        something else must drive ``/tick`` concurrently.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write((
                f"GET /stream?count={count} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1"))
            await writer.drain()
            while True:  # skip the response headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            payloads: List[Dict[str, Any]] = []
            while len(payloads) < count:
                line = await reader.readline()
                if not line:
                    break
                payloads.append(json.loads(line.decode("utf-8")))
            return payloads
        finally:
            writer.close()
            await writer.wait_closed()
