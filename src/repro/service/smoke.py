"""The service smoke battery: HTTP path ≡ simulator path, end to end.

Boots the daemon in manual-clock mode, replays a scenario workload
through the HTTP API (submit each job, tick the clock to completion,
scrape ``/metrics`` and ``/digest``), runs the *same* workload through
the plain batch simulator, and diffs the canonical outcome digests.
They must be byte-identical: the daemon is the same deterministic core
behind a socket, and this is the check CI's ``service-smoke`` job runs
on every push (``rush serve --smoke``).

The equivalence leans on three invariants pinned elsewhere:

* submissions delivered through :class:`~repro.core.clock.SubmitEvent`
  before the first tick land in the same arrival-sorted admission order
  as upfront ``sim.submit`` calls (``tests/test_clock.py``);
* a journal replay re-derives the identical decision stream
  (``tests/test_service.py``);
* the trace-record payload round-trips specs exactly
  (``tests/test_trace_roundtrip.py``).
"""

from __future__ import annotations

import asyncio
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.cluster.simulator import run_simulation
from repro.errors import ServiceError
from repro.schedulers.rush import RushScheduler
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.protocol import records_digest, submit_payload_from_spec
from repro.workload.scenarios import build_scenario_workload, scenario_by_name

__all__ = ["run_service_smoke", "run_crash_smoke", "SMOKE_SCENARIO"]

SMOKE_SCENARIO = "hpc-replay"

#: Metric families the scrape must expose once the daemon has run jobs.
_EXPECTED_METRICS = (
    "rush_service_jobs_submitted_total",
    "rush_sim_tasks_completed_total",
)


def _scheduler_options(theta: float, delta: float) -> Dict[str, Any]:
    return {"theta": theta, "delta": delta}


async def _drive_service(engine: ServiceEngine, specs, *,
                         max_slots: int) -> Dict[str, Any]:
    daemon = ServiceDaemon(engine)
    await daemon.start()
    try:
        client = ServiceClient("127.0.0.1", daemon.port)
        health = await client.healthz()
        if not health.get("ok"):
            raise ServiceError(f"daemon failed its health check: {health}")
        for spec in specs:
            await client.submit(submit_payload_from_spec(spec))
        ticks = 0
        digest = await client.request_json("GET", "/digest")
        while not digest["idle"] and ticks < max_slots:
            # Batch ticks to keep the HTTP round-trips off the critical
            # path; correctness is per-slot regardless of batch size.
            await client.tick(50)
            ticks += 50
            digest = await client.request_json("GET", "/digest")
        metrics_text = await client.metrics_text()
        status = await client.status()
        return {"digest": digest, "metrics_text": metrics_text,
                "status": status}
    finally:
        await daemon.stop()


def run_service_smoke(scenario_name: str = SMOKE_SCENARIO, *,
                      seed: int = 0, fast: bool = True,
                      max_slots: Optional[int] = None) -> Dict[str, Any]:
    """Run the battery; returns a report with ``"match": True`` on success.

    Raises :class:`~repro.errors.ServiceError` when the HTTP-path digest
    diverges from the simulator path or the metrics scrape is missing an
    expected family — CI treats any raise as a failed gate.
    """
    scenario = scenario_by_name(scenario_name)
    specs = build_scenario_workload(scenario, seed=seed, fast=fast)
    capacity = scenario.capacity(fast)
    limit = max_slots if max_slots is not None else scenario.max_slots
    options = _scheduler_options(scenario.theta, scenario.delta)

    # Simulator path first, with observability off so the service path's
    # scrape below starts from a clean registry.
    obs.reset()
    sim_result = run_simulation(
        specs, capacity, RushScheduler(**options), max_slots=limit,
        seed=seed, raise_on_timeout=True)
    sim_digest = records_digest(sim_result.records)

    obs.enable(trace=False, metrics=True, ledger=False)
    try:
        engine = ServiceEngine(ServiceConfig(
            capacity=capacity, policy="rush", seed=seed,
            scheduler_options=options))
        service = asyncio.run(
            _drive_service(engine, specs, max_slots=limit))
    finally:
        obs.reset()

    service_digest = service["digest"]["records"]
    report: Dict[str, Any] = {
        "scenario": scenario.name,
        "fast": fast,
        "seed": seed,
        "jobs": len(specs),
        "capacity": capacity,
        "slots": service["digest"]["slot"],
        "simulator_digest": sim_digest,
        "service_digest": service_digest,
        "match": service_digest == sim_digest,
        "decisions_digest": service["digest"]["decisions"],
        "metrics_bytes": len(service["metrics_text"]),
    }
    if not report["match"]:
        raise ServiceError(
            "service smoke failed: HTTP-path records digest "
            f"{service_digest[:12]}… != simulator-path {sim_digest[:12]}… "
            f"on scenario {scenario.name!r} (seed {seed})")
    missing = [name for name in _EXPECTED_METRICS
               if name not in service["metrics_text"]]
    if missing:
        raise ServiceError(
            f"/metrics scrape is missing familie(s): {', '.join(missing)}")
    return report


# ---------------------------------------------------------------------------
# Crash smoke: kill -9 a journaled daemon, restart, diff the digests.
# ---------------------------------------------------------------------------

_BANNER_RE = re.compile(r"http://[^\s:]+:(\d+)")
_CRASH_CAPACITY = 4


def _spawn_server(journal_dir: str) -> "subprocess.Popen[str]":
    """Boot a real ``rush serve --journal-dir`` subprocess (manual clock)."""
    src_root = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--manual",
         "--port", "0", "--capacity", str(_CRASH_CAPACITY),
         "--policy", "fifo", "--journal-dir", journal_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)


def _wait_for_banner(proc: "subprocess.Popen[str]") -> int:
    """Read the startup banner; returns the bound port."""
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = _BANNER_RE.search(line or "")
    if not match:
        proc.kill()
        rest = proc.stdout.read()
        raise ServiceError(
            f"journaled daemon failed to boot: {(line + rest).strip()!r}")
    return int(match.group(1))


def _crash_payload(index: int) -> Dict[str, Any]:
    return {"task_durations": [1 + index % 3, 2], "budget": 50.0}


def _crash_key(seed: int, index: int) -> str:
    return f"ck-{seed}-{index}"


async def _crash_phase_submit(port: int, jobs: int,
                              seed: int) -> List[str]:
    """Submit keyed jobs against the doomed first daemon, ticking along."""
    client = ServiceClient("127.0.0.1", port, retries=2, seed=seed)
    job_ids: List[str] = []
    for index in range(jobs):
        status = await client.submit(_crash_payload(index),
                                     idempotency_key=_crash_key(seed, index))
        job_ids.append(str(status["job_id"]))
        await client.tick(1)
    return job_ids


async def _crash_phase_verify(port: int, seed: int, expected: List[str], *,
                              max_ticks: int = 500
                              ) -> Tuple[int, Dict[str, Any]]:
    """Against the restarted daemon: nothing lost, retries dedup, drain."""
    client = ServiceClient("127.0.0.1", port, retries=2, seed=seed)
    listed = {str(job["job_id"]) for job in await client.jobs()}
    missing = [job_id for job_id in expected if job_id not in listed]
    if missing:
        raise ServiceError(
            f"crash recovery lost job(s): {', '.join(missing)}")
    deduped = 0
    for index, job_id in enumerate(expected):
        status = await client.submit(
            _crash_payload(index),
            idempotency_key=_crash_key(seed, index))
        if not status.get("deduplicated") or status["job_id"] != job_id:
            raise ServiceError(
                f"idempotent resubmit of {job_id} was not deduplicated: "
                f"{status}")
        deduped += 1
    after = await client.jobs()
    if len(after) != len(expected):
        raise ServiceError(
            f"resubmits changed the job count ({len(expected)} -> "
            f"{len(after)}): a duplicate admission slipped through")
    digest = await client.request_json("GET", "/digest")
    ticks = 0
    while not digest["idle"] and ticks < max_ticks:
        await client.tick(10)
        ticks += 10
        digest = await client.request_json("GET", "/digest")
    if not digest["idle"]:
        raise ServiceError(
            f"recovered daemon did not drain within {max_ticks} slots")
    return deduped, digest


def run_crash_smoke(journal_dir: Optional[str] = None, *, jobs: int = 6,
                    seed: int = 0) -> Dict[str, Any]:
    """The CI crash lane: journaled daemon, ``kill -9``, restart, diff.

    Boots ``rush serve --journal-dir`` as a real subprocess, submits
    ``jobs`` keyed jobs, SIGKILLs it mid-workload, restarts it on the
    same directory, and asserts: no job lost, keyed resubmits dedup
    (never a duplicate admission), the daemon drains to idle, SIGTERM
    exits 0 after a graceful flush, and an in-process recovery of the
    journal re-derives the exact served decision digest.  Any violation
    raises :class:`~repro.errors.ServiceError` (CI fails the lane and
    uploads the journal directory as an artifact).
    """
    from repro.service.journal import open_journal

    owned = journal_dir is None
    directory = journal_dir or tempfile.mkdtemp(prefix="rush-crash-smoke-")
    os.makedirs(directory, exist_ok=True)

    proc = _spawn_server(directory)
    try:
        port = _wait_for_banner(proc)
        job_ids = asyncio.run(_crash_phase_submit(port, jobs, seed))
    finally:
        proc.kill()  # SIGKILL: no drain, no flush, no goodbye
        proc.wait(timeout=30)

    proc = _spawn_server(directory)
    try:
        port = _wait_for_banner(proc)
        deduped, digest = asyncio.run(
            _crash_phase_verify(port, seed, job_ids))
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        proc.wait(timeout=30)
        raise
    if proc.returncode != 0:
        raise ServiceError(
            f"graceful shutdown exited {proc.returncode}: {out.strip()!r}")

    engine, _writer = open_journal(directory)
    try:
        recovered_digest = engine.decisions_digest()
        recovered_jobs = len(engine.list_jobs())
    finally:
        engine.close()
    if recovered_digest != digest["decisions"]:
        raise ServiceError(
            "crash smoke failed: journal recovery digest "
            f"{recovered_digest[:12]}… != served "
            f"{str(digest['decisions'])[:12]}…")

    report = {
        "jobs": jobs,
        "job_ids": job_ids,
        "deduplicated": deduped,
        "recovered_jobs": recovered_jobs,
        "graceful_exit": 0,
        "decisions_digest": digest["decisions"],
        "match": True,
    }
    if owned:
        shutil.rmtree(directory, ignore_errors=True)
    else:
        report["journal_dir"] = directory
    return report
