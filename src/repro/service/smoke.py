"""The service smoke battery: HTTP path ≡ simulator path, end to end.

Boots the daemon in manual-clock mode, replays a scenario workload
through the HTTP API (submit each job, tick the clock to completion,
scrape ``/metrics`` and ``/digest``), runs the *same* workload through
the plain batch simulator, and diffs the canonical outcome digests.
They must be byte-identical: the daemon is the same deterministic core
behind a socket, and this is the check CI's ``service-smoke`` job runs
on every push (``rush serve --smoke``).

The equivalence leans on three invariants pinned elsewhere:

* submissions delivered through :class:`~repro.core.clock.SubmitEvent`
  before the first tick land in the same arrival-sorted admission order
  as upfront ``sim.submit`` calls (``tests/test_clock.py``);
* a journal replay re-derives the identical decision stream
  (``tests/test_service.py``);
* the trace-record payload round-trips specs exactly
  (``tests/test_trace_roundtrip.py``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro import obs
from repro.cluster.simulator import run_simulation
from repro.errors import ServiceError
from repro.schedulers.rush import RushScheduler
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.protocol import records_digest, submit_payload_from_spec
from repro.workload.scenarios import build_scenario_workload, scenario_by_name

__all__ = ["run_service_smoke", "SMOKE_SCENARIO"]

SMOKE_SCENARIO = "hpc-replay"

#: Metric families the scrape must expose once the daemon has run jobs.
_EXPECTED_METRICS = (
    "rush_service_jobs_submitted_total",
    "rush_sim_tasks_completed_total",
)


def _scheduler_options(theta: float, delta: float) -> Dict[str, Any]:
    return {"theta": theta, "delta": delta}


async def _drive_service(engine: ServiceEngine, specs, *,
                         max_slots: int) -> Dict[str, Any]:
    daemon = ServiceDaemon(engine)
    await daemon.start()
    try:
        client = ServiceClient("127.0.0.1", daemon.port)
        health = await client.healthz()
        if not health.get("ok"):
            raise ServiceError(f"daemon failed its health check: {health}")
        for spec in specs:
            await client.submit(submit_payload_from_spec(spec))
        ticks = 0
        digest = await client.request_json("GET", "/digest")
        while not digest["idle"] and ticks < max_slots:
            # Batch ticks to keep the HTTP round-trips off the critical
            # path; correctness is per-slot regardless of batch size.
            await client.tick(50)
            ticks += 50
            digest = await client.request_json("GET", "/digest")
        metrics_text = await client.metrics_text()
        status = await client.status()
        return {"digest": digest, "metrics_text": metrics_text,
                "status": status}
    finally:
        await daemon.stop()


def run_service_smoke(scenario_name: str = SMOKE_SCENARIO, *,
                      seed: int = 0, fast: bool = True,
                      max_slots: Optional[int] = None) -> Dict[str, Any]:
    """Run the battery; returns a report with ``"match": True`` on success.

    Raises :class:`~repro.errors.ServiceError` when the HTTP-path digest
    diverges from the simulator path or the metrics scrape is missing an
    expected family — CI treats any raise as a failed gate.
    """
    scenario = scenario_by_name(scenario_name)
    specs = build_scenario_workload(scenario, seed=seed, fast=fast)
    capacity = scenario.capacity(fast)
    limit = max_slots if max_slots is not None else scenario.max_slots
    options = _scheduler_options(scenario.theta, scenario.delta)

    # Simulator path first, with observability off so the service path's
    # scrape below starts from a clean registry.
    obs.reset()
    sim_result = run_simulation(
        specs, capacity, RushScheduler(**options), max_slots=limit,
        seed=seed, raise_on_timeout=True)
    sim_digest = records_digest(sim_result.records)

    obs.enable(trace=False, metrics=True, ledger=False)
    try:
        engine = ServiceEngine(ServiceConfig(
            capacity=capacity, policy="rush", seed=seed,
            scheduler_options=options))
        service = asyncio.run(
            _drive_service(engine, specs, max_slots=limit))
    finally:
        obs.reset()

    service_digest = service["digest"]["records"]
    report: Dict[str, Any] = {
        "scenario": scenario.name,
        "fast": fast,
        "seed": seed,
        "jobs": len(specs),
        "capacity": capacity,
        "slots": service["digest"]["slot"],
        "simulator_digest": sim_digest,
        "service_digest": service_digest,
        "match": service_digest == sim_digest,
        "decisions_digest": service["digest"]["decisions"],
        "metrics_bytes": len(service["metrics_text"]),
    }
    if not report["match"]:
        raise ServiceError(
            "service smoke failed: HTTP-path records digest "
            f"{service_digest[:12]}… != simulator-path {sim_digest[:12]}… "
            f"on scenario {scenario.name!r} (seed {seed})")
    missing = [name for name in _EXPECTED_METRICS
               if name not in service["metrics_text"]]
    if missing:
        raise ServiceError(
            f"/metrics scrape is missing familie(s): {', '.join(missing)}")
    return report
