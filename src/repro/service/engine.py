"""The deterministic core of the scheduler service.

:class:`ServiceEngine` is the daemon with the I/O stripped away: it owns
a :class:`~repro.cluster.simulator.ClusterSimulator` driven through the
:class:`~repro.core.clock.Clock` / :class:`~repro.core.clock.EventSource`
protocols, validates and journals every external request, and advances
one slot per :meth:`tick`.  The asyncio daemon is a thin shell that
paces ``tick()`` against a real-time clock and translates HTTP into
these methods — which is why the whole service layer can be tested, and
its snapshot/restore proven bit-identical, without ever opening a
socket.

Determinism contract: the engine's visible behaviour (decision stream,
job outcomes) is a pure function of (config, journal).  Every external
input lands in the journal *with the slot it becomes due*, external
events only enter the simulator through the event source at slot
boundaries, and the scheduler stack below is the already-pinned
deterministic core.  Snapshot = config + journal + slot; restore =
replay.  See :mod:`repro.service.snapshot`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cluster.job import SimJob
from repro.cluster.metrics import SimulationResult
from repro.cluster.simulator import ClusterSimulator
from repro.core.clock import (CancelEvent, Clock, QueueEventSource,
                              SubmitEvent)
from repro.errors import (BadRequestError, ConfigurationError, JobStateError,
                          ServiceError, UnknownJobError)
from repro.faults.plan import FaultPlan
from repro.obs import get_metrics
from repro.schedulers.base import Scheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.rrh import RrhScheduler
from repro.schedulers.rush import RushScheduler
from repro.service.protocol import (SubmitRequest, canonical_digest,
                                    parse_submit, records_digest)
from repro.service.tenants import (TenantRegistry, TenantSpec,
                                   tenants_from_dicts)
from repro.workload.trace import spec_from_dict, spec_to_dict

__all__ = ["ServiceConfig", "ServiceEngine", "POLICY_BUILDERS"]

#: Policies the service can host.  ``capacity`` is special-cased onto
#: the tenant queues; the rest take JSON-able keyword options.
POLICY_BUILDERS: Dict[str, Callable[..., Scheduler]] = {
    "rush": RushScheduler,
    "fifo": FifoScheduler,
    "edf": EdfScheduler,
    "fair": FairScheduler,
    "rrh": RrhScheduler,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Frozen daemon configuration — everything replay needs, JSON-able.

    ``scheduler_options`` are keyword arguments for the policy builder
    (e.g. ``{"theta": 0.95, "plan_time_budget": 0.5}`` for RUSH) and
    must stay JSON-serializable so snapshots round-trip.
    """

    capacity: int
    policy: str = "rush"
    seed: int = 0
    scheduler_options: Mapping[str, Any] = field(default_factory=dict)
    tenants: Tuple[TenantSpec, ...] = ()
    fault_spec: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.policy != "capacity" and self.policy not in POLICY_BUILDERS:
            known = ", ".join(sorted(POLICY_BUILDERS) + ["capacity"])
            raise ConfigurationError(
                f"unknown service policy {self.policy!r}; known: {known}")
        if self.policy == "capacity" and self.scheduler_options:
            raise ConfigurationError(
                "the capacity policy takes its configuration from the "
                "tenant shares, not scheduler_options")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "seed": self.seed,
            "scheduler_options": dict(self.scheduler_options),
            "tenants": [t.to_dict() for t in self.tenants],
            "fault_spec": (dict(self.fault_spec)
                           if self.fault_spec is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        try:
            return cls(
                capacity=int(data["capacity"]),
                policy=str(data.get("policy", "rush")),
                seed=int(data.get("seed", 0)),
                scheduler_options=dict(data.get("scheduler_options") or {}),
                tenants=tenants_from_dicts(data.get("tenants") or ()),
                fault_spec=data.get("fault_spec"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed service config: {exc}") from None


class ServiceEngine:
    """Submit/cancel/query/tick over the clock-driven simulator core."""

    def __init__(self, config: ServiceConfig, *,
                 clock: Optional[Clock] = None) -> None:
        self.config = config
        self.registry = TenantRegistry(config.tenants)
        if config.policy == "capacity":
            self.scheduler: Scheduler = self.registry.capacity_scheduler()
        else:
            self.scheduler = POLICY_BUILDERS[config.policy](
                **dict(config.scheduler_options))
        faults = (FaultPlan.from_spec(config.fault_spec)
                  if config.fault_spec is not None else None)
        self.events = QueueEventSource()
        self.sim = ClusterSimulator(
            config.capacity, self.scheduler, seed=config.seed,
            faults=faults, clock=clock, events=self.events,
            record_decisions=True)
        #: Ordered journal of every accepted external request.
        self.journal: List[Dict[str, Any]] = []
        #: Optional write-ahead log (see :mod:`repro.service.journal`):
        #: when attached, every submit/cancel/tick is appended and
        #: fsynced *before* it mutates engine state.
        self.wal: Optional[Any] = None
        self._auto_seq = 0
        self._known: Dict[str, str] = {}  # job_id -> tenant
        self._idempotency: Dict[str, str] = {}  # idempotency key -> job_id
        self._cancelling: set = set()
        self._released: set = set()

    # -- durability ------------------------------------------------------

    def attach_wal(self, wal: Any) -> None:
        """Attach a write-ahead journal writer (duck-typed: ``append``,
        ``note_applied``, ``close``)."""
        self.wal = wal

    def _wal_append(self, entry: Mapping[str, Any]) -> None:
        if self.wal is not None:
            self.wal.append(entry)

    def _wal_note_applied(self) -> None:
        if self.wal is not None:
            self.wal.note_applied(self)

    # -- time -----------------------------------------------------------

    @property
    def slot(self) -> int:
        """The next slot :meth:`tick` will process."""
        return self.sim.now

    @property
    def clock(self) -> Clock:
        """The clock driving the underlying simulator."""
        return self.sim.clock

    def tick(self, slots: int = 1) -> Dict[str, Any]:
        """Advance the cluster ``slots`` slots; returns the new status."""
        if slots < 1:
            raise BadRequestError(
                f"tick slots must be a positive integer, got {slots}")
        for _ in range(slots):
            self._wal_append({"kind": "tick", "due": self.slot})
            self.sim.step()
            self._release_finished()
            self._wal_note_applied()
        return self.cluster_status()

    def _release_finished(self) -> None:
        for job in self.sim.completed_jobs:
            if job.job_id not in self._released:
                self._released.add(job.job_id)
                self.registry.release(job.job_id)
        for job in self.sim.cancelled_jobs:
            if job.job_id not in self._released:
                self._released.add(job.job_id)
                self._cancelling.discard(job.job_id)
                self.registry.release(job.job_id)

    # -- requests --------------------------------------------------------

    def submit(self, payload: object) -> Dict[str, Any]:
        """Validate, admit and journal one submission; returns its status."""
        request = parse_submit(payload)
        return self._admit(request)

    def _admit(self, request: SubmitRequest) -> Dict[str, Any]:
        key = request.idempotency_key
        if key is not None:
            prior = self._idempotency.get(key)
            if prior is not None:
                # A retried submit after an ambiguous failure: the first
                # attempt was journaled and applied, so this one must
                # not double-admit.  Report the existing job.
                status = self.job_status(prior)
                status["deduplicated"] = True
                return status
        now = self.slot
        arrival = request.arrival if request.arrival is not None else now
        if arrival < now:
            raise BadRequestError(
                f"arrival slot {arrival} is in the past (clock at {now})")
        job_id = request.job_id
        auto_seq: Optional[int] = None
        if job_id is None:
            tenant_hint = (request.tenant if request.tenant is not None
                           else self.registry.default_tenant)
            auto_seq = self._auto_seq + 1
            job_id = f"{tenant_hint}-{auto_seq}"
        if job_id in self._known:
            raise JobStateError(f"job id {job_id!r} was already submitted")
        spec = request.build_spec(job_id, arrival)
        tenant = self.registry.admit(request.tenant, job_id)
        entry: Dict[str, Any] = {"kind": "submit", "due": now,
                                 "tenant": tenant,
                                 "spec": spec_to_dict(spec)}
        if auto_seq is not None:
            entry["auto_seq"] = auto_seq
        if key is not None:
            entry["idempotency_key"] = key
        try:
            # Write-ahead: the admission must be durable before any
            # in-memory state reflects it, or a crash here would admit
            # a job that recovery has never heard of.
            self._wal_append(entry)
        except Exception:
            self.registry.release(job_id)
            raise
        if auto_seq is not None:
            self._auto_seq = auto_seq
        self._known[job_id] = tenant
        if key is not None:
            self._idempotency[key] = job_id
        self.events.push(SubmitEvent(spec), due=now)
        self.journal.append(entry)
        metrics = get_metrics()
        if metrics.active:
            metrics.counter(
                "rush_service_jobs_submitted_total",
                help="Jobs accepted by the service",
                labels=("tenant",)).labels(tenant).inc()
        self._wal_note_applied()
        return self.job_status(job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Queue a cancellation for the next slot boundary."""
        tenant = self._known.get(job_id)
        if tenant is None:
            raise UnknownJobError(job_id)
        state = self._job_state(job_id)
        if state in ("completed", "cancelled"):
            raise JobStateError(
                f"cannot cancel job {job_id!r}: already {state}")
        if state != "cancelling":
            entry = {"kind": "cancel", "due": self.slot, "job_id": job_id}
            self._wal_append(entry)
            self._cancelling.add(job_id)
            self.events.push(CancelEvent(job_id), due=self.slot)
            self.journal.append(entry)
            metrics = get_metrics()
            if metrics.active:
                metrics.counter(
                    "rush_service_jobs_cancelled_total",
                    help="Cancellations accepted by the service",
                    labels=("tenant",)).labels(tenant).inc()
            self._wal_note_applied()
        return self.job_status(job_id)

    def replay_entry(self, entry: Mapping[str, Any]) -> None:
        """Re-apply one journaled request during snapshot restore.

        Skips request validation — the entry was validated when first
        accepted, and replay must reproduce the accepted sequence
        verbatim (specs carry their final ids and arrival slots).
        """
        kind = entry.get("kind")
        due = int(entry["due"])
        if kind == "submit":
            spec = spec_from_dict(entry["spec"])
            tenant = self.registry.admit(entry.get("tenant"), spec.job_id)
            self._known[spec.job_id] = tenant
            auto_seq = entry.get("auto_seq")
            if auto_seq is not None:
                self._auto_seq = max(self._auto_seq, int(auto_seq))
            key = entry.get("idempotency_key")
            if key is not None:
                self._idempotency[str(key)] = spec.job_id
            self.events.push(SubmitEvent(spec), due=due)
        elif kind == "cancel":
            job_id = str(entry["job_id"])
            self._cancelling.add(job_id)
            self.events.push(CancelEvent(job_id), due=due)
        else:
            raise ServiceError(f"unknown journal entry kind {kind!r}")
        self.journal.append(dict(entry))

    # -- queries ---------------------------------------------------------

    def _sim_job(self, job_id: str) -> Optional[SimJob]:
        if not self.sim.has_job(job_id):
            return None
        return self.sim.job(job_id)

    def _job_state(self, job_id: str) -> str:
        job = self._sim_job(job_id)
        if job is not None and job.is_complete:
            return "completed"
        if any(j.job_id == job_id for j in self.sim.cancelled_jobs):
            return "cancelled"
        if job_id in self._cancelling:
            return "cancelling"
        if job is None:
            return "accepted"  # journaled; enters the cluster next tick
        if job in self.sim.active_jobs:
            return "running" if job.running_count > 0 else "pending"
        return "queued"  # registered, waiting for its arrival slot

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """Everything a client may ask about one job, degradation included."""
        tenant = self._known.get(job_id)
        if tenant is None:
            raise UnknownJobError(job_id)
        state = self._job_state(job_id)
        job = self._sim_job(job_id)
        status: Dict[str, Any] = {
            "job_id": job_id,
            "tenant": tenant,
            "state": state,
            "slot": self.slot,
        }
        if job is not None:
            spec = job.spec
            completion = job.completion_time
            status.update({
                "arrival": spec.arrival,
                "tasks": len(spec.task_durations),
                "pending_tasks": job.pending_count,
                "running_tasks": job.running_count,
                "completed_tasks": job.completed_count,
                "failed_attempts": job.failed_count,
                "budget": (spec.budget if math.isfinite(spec.budget)
                           else None),
                "sensitivity": spec.sensitivity,
                "completion": completion,
            })
            if completion is not None:
                runtime = float(completion - spec.arrival)
                status["runtime"] = runtime
                status["utility_value"] = spec.utility.value(runtime)
        status["degradation"] = self._degradation_status()
        return status

    def _degradation_status(self) -> Dict[str, Any]:
        """The ladder's health: rung counts plus the most recent fallback.

        This is how a planner starved of its budget surfaces to clients
        — a degraded-but-served answer in the payload, never a 500.
        """
        counts = dict(getattr(self.scheduler, "degradation_counts", {}) or {})
        last: Optional[str] = None
        last_slot: Optional[int] = None
        for event in self.sim.fault_log.events:
            if event.kind.startswith("degradation:"):
                last = event.kind.split(":", 1)[1]
                last_slot = event.slot
        return {"fallbacks": counts, "last_fallback": last,
                "last_fallback_slot": last_slot}

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [self.job_status(job_id) for job_id in sorted(self._known)]

    def cluster_status(self) -> Dict[str, Any]:
        """The per-slot cluster summary (also the /stream payload)."""
        active = self.sim.active_jobs
        return {
            "slot": self.slot,
            "capacity": self.sim.capacity,
            "free_containers": self.sim.free_container_count,
            "active_jobs": len(active),
            "queued_tasks": sum(j.pending_count for j in active),
            "running_tasks": sum(j.running_count for j in active),
            "completed_jobs": len(self.sim.completed_jobs),
            "cancelled_jobs": len(self.sim.cancelled_jobs),
            "scheduling_decisions": self.sim.scheduling_decisions,
            "task_failures": self.sim.task_failures,
            "tenants": self.registry.status(),
            "degradation": self._degradation_status(),
        }

    @property
    def idle(self) -> bool:
        """No queued events and no pending or active work."""
        return (len(self.events) == 0 and not self.sim.active_jobs
                and not self.sim._pending_arrivals)

    # -- results & digests ----------------------------------------------

    def result(self) -> SimulationResult:
        """The run-so-far as a standard :class:`SimulationResult`."""
        return self.sim._result()

    def decision_stream(self) -> List[Tuple[int, str, str]]:
        """The recorded grant stream (slot, kind, job_id)."""
        return list(self.sim.decisions)

    def decisions_digest(self) -> str:
        return canonical_digest([list(d) for d in self.sim.decisions])

    def records_digest(self) -> str:
        """Digest of completed-job outcomes (simulator-path comparable)."""
        return records_digest(self.result().records)

    # -- chaos ----------------------------------------------------------

    def inject_solver_fault(self, depth: int = 1) -> Dict[str, Any]:
        """Arm a forced solver failure (the daemon-side chaos hook)."""
        if not isinstance(depth, int) or isinstance(depth, bool) \
                or not 1 <= depth <= 3:
            raise BadRequestError(
                f"solver-fault depth must be an integer in [1, 3], "
                f"got {depth!r}")
        hook = getattr(self.scheduler, "inject_solver_fault", None)
        if hook is None:
            raise BadRequestError(
                f"policy {self.config.policy!r} has no solver to sabotage")
        hook(depth)
        return {"armed": True, "depth": depth, "slot": self.slot}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()  # final flush+fsync before the engine goes
            self.wal = None
        closer = getattr(self.scheduler, "close", None)
        if closer is not None:
            closer()
