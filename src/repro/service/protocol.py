"""Wire protocol of the scheduler service: typed requests and errors.

Every request body is JSON; every validation failure raises a subclass
of :class:`repro.errors.ServiceError` carrying a stable machine code and
an HTTP status, which the daemon renders as::

    {"error": {"code": "bad-request", "status": 400, "message": "..."}}

The submit payload reuses the trace-record vocabulary of
:mod:`repro.workload.trace` (``task_durations``, ``utility``, ``budget``,
...), so a frozen trace line is a valid submission body — that is what
lets the service smoke battery replay a scenario through HTTP and land
on the simulator path's exact digest.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cluster.job import JobSpec
from repro.errors import BadRequestError, ConfigurationError, ServiceError
from repro.utility.config import utility_from_config
from repro.workload.trace import spec_to_dict

__all__ = [
    "SubmitRequest", "parse_submit", "error_payload", "canonical_digest",
    "SENSITIVITIES",
]

SENSITIVITIES = ("critical", "sensitive", "insensitive")

#: Fields a submit payload may carry; anything else is rejected so typos
#: fail loudly instead of silently defaulting.
_SUBMIT_FIELDS = frozenset({
    "tenant", "job_id", "arrival", "task_durations", "utility", "priority",
    "budget", "benchmark_runtime", "sensitivity", "template",
    "prior_runtime", "failure_prob", "idempotency_key",
})


@dataclass(frozen=True)
class SubmitRequest:
    """A validated job submission, before ids and arrival are assigned."""

    tenant: Optional[str]
    job_id: Optional[str]
    arrival: Optional[int]
    task_durations: Tuple[int, ...]
    utility_config: Optional[Mapping[str, Any]]
    priority: float
    budget: float
    benchmark_runtime: float
    sensitivity: str
    template: str
    prior_runtime: Optional[float]
    failure_prob: float
    #: Client-chosen retry token: two submits carrying the same key are
    #: the same logical job, and the engine admits only the first.
    idempotency_key: Optional[str] = None

    def build_spec(self, job_id: str, arrival: int) -> JobSpec:
        """Materialize the immutable spec at its assigned id and slot."""
        if self.utility_config is not None:
            utility = utility_from_config(self.utility_config)
        elif math.isfinite(self.budget):
            # The paper's default job interface: a sigmoid around the
            # client's time budget.
            utility = utility_from_config({
                "class": "sigmoid",
                "budget": self.budget,
                "priority": self.priority,
            })
        else:
            utility = utility_from_config({
                "class": "constant", "priority": self.priority})
        try:
            return JobSpec(
                job_id=job_id, arrival=arrival,
                task_durations=self.task_durations, utility=utility,
                priority=self.priority, budget=self.budget,
                benchmark_runtime=self.benchmark_runtime,
                sensitivity=self.sensitivity, template=self.template,
                prior_runtime=self.prior_runtime,
                failure_prob=self.failure_prob)
        except ConfigurationError as exc:
            raise BadRequestError(str(exc)) from None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequestError(message)


def _opt_float(payload: Mapping[str, Any], field: str,
               default: float) -> float:
    value = payload.get(field)
    if value is None:
        return default
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"field '{field}' must be a number, got {type(value).__name__}")
    return float(value)


def parse_submit(payload: object) -> SubmitRequest:
    """Validate a submit body; every failure names the offending field."""
    _require(isinstance(payload, Mapping),
             "submit body must be a JSON object")
    assert isinstance(payload, Mapping)
    unknown = sorted(set(payload) - _SUBMIT_FIELDS)
    _require(not unknown, f"unknown field(s): {', '.join(unknown)}")

    tenant = payload.get("tenant")
    _require(tenant is None or (isinstance(tenant, str) and tenant),
             "field 'tenant' must be a non-empty string")
    job_id = payload.get("job_id")
    _require(job_id is None or (isinstance(job_id, str) and job_id),
             "field 'job_id' must be a non-empty string")
    arrival = payload.get("arrival")
    if arrival is not None:
        _require(isinstance(arrival, int) and not isinstance(arrival, bool)
                 and arrival >= 0,
                 "field 'arrival' must be a non-negative integer slot")

    durations = payload.get("task_durations")
    _require(isinstance(durations, list) and len(durations) > 0,
             "field 'task_durations' must be a non-empty list of slots")
    assert isinstance(durations, list)
    for k, d in enumerate(durations):
        _require(isinstance(d, int) and not isinstance(d, bool) and d >= 1,
                 f"task_durations[{k}] must be an integer >= 1 slot")

    utility_config = payload.get("utility")
    if utility_config is not None:
        _require(isinstance(utility_config, Mapping),
                 "field 'utility' must be a utility-config object")
        try:  # validate eagerly so the submit fails, not a later tick
            utility_from_config(utility_config)
        except ConfigurationError as exc:
            raise BadRequestError(f"field 'utility': {exc}") from None

    sensitivity = payload.get("sensitivity", "sensitive")
    _require(sensitivity in SENSITIVITIES,
             f"field 'sensitivity' must be one of {', '.join(SENSITIVITIES)}")
    template = payload.get("template", "")
    _require(isinstance(template, str), "field 'template' must be a string")

    budget = _opt_float(payload, "budget", math.inf)
    _require(budget > 0, "field 'budget' must be positive")
    failure_prob = _opt_float(payload, "failure_prob", 0.0)
    _require(0.0 <= failure_prob < 1.0,
             "field 'failure_prob' must be in [0, 1)")
    prior = payload.get("prior_runtime")
    prior_runtime = (_opt_float(payload, "prior_runtime", 0.0)
                     if prior is not None else None)
    _require(prior_runtime is None or prior_runtime > 0,
             "field 'prior_runtime' must be positive")
    idempotency_key = payload.get("idempotency_key")
    _require(idempotency_key is None
             or (isinstance(idempotency_key, str) and idempotency_key),
             "field 'idempotency_key' must be a non-empty string")

    return SubmitRequest(
        tenant=tenant, job_id=job_id, arrival=arrival,
        task_durations=tuple(int(d) for d in durations),
        utility_config=utility_config,
        priority=_opt_float(payload, "priority", 1.0),
        budget=budget,
        benchmark_runtime=_opt_float(payload, "benchmark_runtime", math.nan),
        sensitivity=str(sensitivity), template=template,
        prior_runtime=prior_runtime, failure_prob=failure_prob,
        idempotency_key=idempotency_key)


def submit_payload_from_spec(spec: JobSpec,
                             tenant: Optional[str] = None) -> Dict[str, Any]:
    """Render a spec as a submit body (the replay/smoke client path)."""
    payload = spec_to_dict(spec)
    # The trace format encodes "no budget" as null; the submit schema
    # simply omits optional fields.
    for field in ("budget", "benchmark_runtime", "prior_runtime"):
        if payload.get(field) is None:
            del payload[field]
    if tenant is not None:
        payload["tenant"] = tenant
    return payload


def records_digest(records: Any) -> str:
    """Canonical digest over completed-job outcomes.

    Works on any iterable of :class:`~repro.cluster.metrics.JobRecord`,
    so a simulator-path :class:`SimulationResult` and a service-path
    engine digest the same way — the smoke battery's equivalence check.
    """
    rows = [{
        "job_id": r.job_id, "arrival": r.arrival, "runtime": r.runtime,
        "utility_value": r.utility_value, "completed": r.completed,
    } for r in records]
    rows.sort(key=lambda row: str(row["job_id"]))
    return canonical_digest(rows)


def error_payload(exc: ServiceError) -> Dict[str, Any]:
    """The canonical JSON body for a typed service error."""
    return {"error": {"code": exc.code, "status": exc.status,
                      "message": str(exc)}}


def canonical_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON form of ``obj``.

    Canonical means sorted keys, minimal separators, and non-finite
    floats mapped to null — the same conventions the scenario artifacts
    use, so digests are comparable across the simulator path and the
    service path.
    """

    def clean(value: Any) -> Any:
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {k: clean(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [clean(v) for v in value]
        return value

    blob = json.dumps(clean(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
