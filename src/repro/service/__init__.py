"""``repro.service`` — the asyncio scheduler daemon around the core.

The deterministic RUSH core (simulator, planners, estimators) is driven
here through the :class:`~repro.core.clock.Clock` /
:class:`~repro.core.clock.EventSource` protocols instead of the batch
``run_simulation`` loop:

* :class:`~repro.service.engine.ServiceEngine` — the synchronous,
  journal-backed core: submit/cancel/query/tick, multi-tenant admission,
  degradation-aware job status;
* :class:`~repro.service.daemon.ServiceDaemon` — the stdlib-asyncio
  HTTP front end (JSON endpoints, NDJSON ``/stream``, Prometheus
  ``/metrics``), paced by :class:`~repro.service.clock.RealTimeClock`
  or driven manually through ``POST /tick``;
* :mod:`~repro.service.snapshot` — restart-surviving snapshots by
  config+journal replay, verified against the decision-stream digest;
* :class:`~repro.service.client.ServiceClient` and
  :mod:`~repro.service.smoke` — the test/CI side of the same wire
  protocol.

This package is the sanctioned wall-clock carve-out from the RL002
determinism lint: real time exists only in
:class:`~repro.service.clock.RealTimeClock`, and everything below the
daemon stays a pure function of (config, journal).  See
``docs/SERVICE.md``.
"""

from repro.service.client import (ServiceClient, ServiceRequestError,
                                  ServiceUnavailableError)
from repro.service.clock import RealTimeClock
from repro.service.daemon import ServiceDaemon
from repro.service.engine import ServiceConfig, ServiceEngine
from repro.service.journal import (JournalCorruptError, JournalWriteError,
                                   JournalWriter, RealFileOps,
                                   atomic_write_text, open_journal,
                                   recover_engine)
from repro.service.protocol import (canonical_digest, error_payload,
                                    parse_submit, records_digest,
                                    submit_payload_from_spec)
from repro.service.smoke import run_crash_smoke, run_service_smoke
from repro.service.snapshot import (SnapshotError, load_snapshot,
                                    restore_engine, save_snapshot,
                                    take_snapshot)
from repro.service.tenants import (DEFAULT_TENANT, TenantRegistry,
                                   TenantSpec, tenants_from_dicts)

__all__ = [
    "ServiceClient", "ServiceRequestError", "ServiceUnavailableError",
    "RealTimeClock", "ServiceDaemon", "ServiceConfig", "ServiceEngine",
    "JournalCorruptError", "JournalWriteError", "JournalWriter",
    "RealFileOps", "atomic_write_text", "open_journal", "recover_engine",
    "canonical_digest", "error_payload", "parse_submit", "records_digest",
    "submit_payload_from_spec", "run_service_smoke", "run_crash_smoke",
    "SnapshotError", "load_snapshot", "restore_engine", "save_snapshot",
    "take_snapshot", "DEFAULT_TENANT", "TenantRegistry", "TenantSpec",
    "tenants_from_dicts",
]
