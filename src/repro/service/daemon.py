"""The asyncio scheduler daemon: HTTP in front, the engine behind.

A deliberately small HTTP/1.1 server built directly on
``asyncio.start_server`` — no web framework, one JSON request/response
per connection (``Connection: close``), plus an NDJSON status stream.
All scheduling state lives in the single-threaded
:class:`~repro.service.engine.ServiceEngine`; handlers run on the event
loop and never await while mutating it, so the engine needs no locks.

Endpoints
---------

========  =======================  ==========================================
method    path                     action
========  =======================  ==========================================
GET       /healthz                 liveness + current slot
GET       /status                  cluster summary (slot, queues, tenants)
GET       /tenants                 tenant shares, quotas and live counts
POST      /jobs                    submit a job (trace-record payload)
GET       /jobs                    list every known job's status
GET       /jobs/{id}               one job's status (state + degradation)
DELETE    /jobs/{id}               cancel (also ``POST /jobs/{id}/cancel``)
POST      /tick                    advance N slots (manual-clock mode only)
GET       /stream                  NDJSON per-slot status; ``?count=N`` bounds
GET       /digest                  canonical records/decisions digests
GET       /metrics                 Prometheus text exposition
POST      /snapshot                take (and persist) a restart snapshot
POST      /chaos/solver-fault      arm a forced solver failure (``--chaos``)
========  =======================  ==========================================

Every rejected request returns the typed error body from
:func:`repro.service.protocol.error_payload`; a 500 with code
``internal`` always indicates a daemon bug, never a bad request.

Two clock modes:

* **manual** (no real-time clock): time advances only through
  ``POST /tick``.  This is the driveable-clock mode integration tests
  and digest-equivalence smoke checks use — fully deterministic.
* **real-time** (:class:`~repro.service.clock.RealTimeClock`): a
  background loop awaits each slot boundary and ticks the engine, so
  the daemon schedules in wall time while the core stays slot-indexed.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import BadRequestError, ConfigurationError, ServiceError
from repro.obs import get_metrics
from repro.service.clock import RealTimeClock
from repro.service.engine import ServiceEngine
from repro.service.protocol import error_payload
from repro.service.snapshot import save_snapshot, take_snapshot

__all__ = ["ServiceDaemon"]

_MAX_BODY_BYTES = 1 << 20  # 1 MiB: far above any legitimate submit body
_STREAM_QUEUE_SLOTS = 256


class ServiceDaemon:
    """Serve one :class:`ServiceEngine` over HTTP until stopped."""

    def __init__(self, engine: ServiceEngine, *,
                 clock: Optional[RealTimeClock] = None,
                 chaos: bool = False,
                 snapshot_path: Optional[str] = None) -> None:
        if clock is not None and engine.clock is not clock:
            # A divergent pair would tick the engine on a clock that
            # never advances — construct the engine with this clock.
            raise ConfigurationError(
                "daemon clock must be the engine's own clock "
                "(pass it to ServiceEngine/restore_engine too)")
        self.engine = engine
        self.clock = clock
        self.chaos = chaos
        self.snapshot_path = snapshot_path
        self._server: Optional[asyncio.AbstractServer] = None
        self._slot_task: Optional[asyncio.Task] = None
        self._subscribers: List[asyncio.Queue] = []
        self._inflight: set = set()  # connection-handler tasks being served
        self._closing = False

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (only valid after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener and, in real-time mode, start the slot loop."""
        self._server = await asyncio.start_server(self._handle, host, port)
        if self.clock is not None:
            self.clock.rebase()
            self._slot_task = asyncio.get_running_loop().create_task(
                self._slot_loop())

    async def stop(self, *, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: drain, then flush everything durable.

        Order matters.  The listener closes first so no new connections
        arrive; the slot loop stops so the engine state is quiescent;
        streams get their end-sentinel; then every in-flight request
        handler is awaited (bounded by ``drain_timeout``) so an accepted
        submit is fully journaled and answered before the process exits.
        Only then does ``engine.close()`` fsync and close the journal.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
        if self._slot_task is not None:
            self._slot_task.cancel()
            try:
                await self._slot_task
            except asyncio.CancelledError:
                pass
            self._slot_task = None
        for queue in list(self._subscribers):
            queue.put_nowait(None)  # sentinel: stream handlers drain out
        pending = {task for task in self._inflight if not task.done()}
        if pending:
            _done, stuck = await asyncio.wait(pending, timeout=drain_timeout)
            for task in stuck:  # a hung client must not wedge shutdown
                task.cancel()
            if stuck:
                await asyncio.gather(*stuck, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self.engine.close()

    async def _slot_loop(self) -> None:
        assert self.clock is not None
        while not self._closing:
            await self.clock.wait_for_next_slot()
            self._do_tick(1)

    def _do_tick(self, slots: int) -> Dict[str, Any]:
        status = self.engine.tick(slots)
        for queue in self._subscribers:
            if queue.qsize() < _STREAM_QUEUE_SLOTS:  # drop on slow readers
                queue.put_nowait(status)
        return status

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._dispatch(writer, method, path, query, body)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, List[str]], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise BadRequestError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method.upper(), split.path, parse_qs(split.query), body

    @staticmethod
    def _json_body(body: bytes) -> Any:
        if not body:
            raise BadRequestError("request requires a JSON body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}") from None

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any, *,
                       content_type: str = "application/json") -> None:
        if content_type == "application/json":
            blob = (json.dumps(payload, sort_keys=True) + "\n").encode()
        else:
            blob = str(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  429: "Too Many Requests"}.get(status, "Error")
        writer.write((
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n\r\n").encode("latin-1"))
        writer.write(blob)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        path: str, query: Dict[str, List[str]],
                        body: bytes) -> None:
        try:
            handled = await self._route(writer, method, path, query, body)
        except ServiceError as exc:
            await self._respond(writer, exc.status, error_payload(exc))
            return
        except Exception as exc:  # a daemon bug, surfaced honestly
            await self._respond(writer, 500, {"error": {
                "code": "internal", "status": 500,
                "message": f"{type(exc).__name__}: {exc}"}})
            return
        if not handled:
            await self._respond(writer, 404, {"error": {
                "code": "not-found", "status": 404,
                "message": f"no route for {method} {path}"}})

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, query: Dict[str, List[str]],
                     body: bytes) -> bool:
        engine = self.engine
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True,
                                              "slot": engine.slot})
        elif path == "/status" and method == "GET":
            status = engine.cluster_status()
            status["service"] = self._service_status()
            await self._respond(writer, 200, status)
        elif path == "/tenants" and method == "GET":
            await self._respond(writer, 200, engine.registry.status())
        elif path == "/jobs" and method == "POST":
            await self._respond(writer, 200,
                                engine.submit(self._json_body(body)))
        elif path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {"jobs": engine.list_jobs()})
        elif path.startswith("/jobs/"):
            await self._route_job(writer, method, path)
        elif path == "/tick" and method == "POST":
            if self.clock is not None:
                raise BadRequestError(
                    "manual ticking is disabled: this daemon runs on a "
                    "real-time clock")
            payload = self._json_body(body) if body else {}
            slots = payload.get("slots", 1)
            if not isinstance(slots, int) or isinstance(slots, bool):
                raise BadRequestError("field 'slots' must be an integer")
            await self._respond(writer, 200, self._do_tick(slots))
        elif path == "/digest" and method == "GET":
            await self._respond(writer, 200, {
                "slot": engine.slot,
                "records": engine.records_digest(),
                "decisions": engine.decisions_digest(),
                "idle": engine.idle})
        elif path == "/metrics" and method == "GET":
            await self._respond(
                writer, 200, get_metrics().render_prometheus(),
                content_type="text/plain; version=0.0.4")
        elif path == "/stream" and method == "GET":
            await self._stream(writer, query)
        elif path == "/snapshot" and method == "POST":
            snapshot = take_snapshot(engine)
            if self.snapshot_path is not None:
                save_snapshot(engine, self.snapshot_path)
                snapshot["saved_to"] = self.snapshot_path
            await self._respond(writer, 200, snapshot)
        elif path == "/chaos/solver-fault" and method == "POST":
            if not self.chaos:
                raise BadRequestError(
                    "chaos endpoints are disabled; start the daemon "
                    "with chaos enabled to use them")
            payload = self._json_body(body) if body else {}
            depth = payload.get("depth", 1)
            await self._respond(writer, 200,
                                engine.inject_solver_fault(depth))
        else:
            return False
        return True

    async def _route_job(self, writer: asyncio.StreamWriter, method: str,
                         path: str) -> None:
        tail = path[len("/jobs/"):]
        if method == "GET" and "/" not in tail and tail:
            await self._respond(writer, 200, self.engine.job_status(tail))
        elif method == "DELETE" and "/" not in tail and tail:
            await self._respond(writer, 200, self.engine.cancel(tail))
        elif method == "POST" and tail.endswith("/cancel"):
            job_id = tail[: -len("/cancel")]
            await self._respond(writer, 200, self.engine.cancel(job_id))
        else:
            raise BadRequestError(f"no job route for {method} /jobs/{tail}")

    def _service_status(self) -> Dict[str, Any]:
        mode = "manual" if self.clock is None else "realtime"
        status: Dict[str, Any] = {"mode": mode, "chaos": self.chaos,
                                  "streams": len(self._subscribers)}
        if self.clock is not None:
            status["slot_seconds"] = self.clock.slot_seconds
            status["uptime_seconds"] = self.clock.uptime_seconds()
        return status

    # -- streaming -------------------------------------------------------

    async def _stream(self, writer: asyncio.StreamWriter,
                      query: Dict[str, List[str]]) -> None:
        """NDJSON per-slot status until ``count`` lines or disconnect."""
        count_values = query.get("count", [])
        limit: Optional[int] = None
        if count_values:
            try:
                limit = int(count_values[0])
            except ValueError:
                raise BadRequestError(
                    "query parameter 'count' must be an integer") from None
            if limit < 1:
                raise BadRequestError("'count' must be >= 1")
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        try:
            writer.write((
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n").encode("latin-1"))
            sent = 0
            # The current state first, so a subscriber is never blind
            # until the next slot boundary.
            payload: Optional[Dict[str, Any]] = self.engine.cluster_status()
            while payload is not None:  # None = daemon is stopping
                writer.write(
                    (json.dumps(payload, sort_keys=True) + "\n").encode())
                await writer.drain()
                sent += 1
                if limit is not None and sent >= limit:
                    return
                payload = await queue.get()
        finally:
            self._subscribers.remove(queue)
