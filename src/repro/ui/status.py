"""Management-interface rendering — the paper's Figure 2.

The RUSH-YARN prototype ships an "enhanced HTTP management interface that
is able to provide a projected completion-time for all the jobs" and
highlights, in red, jobs that cannot finish before their utility drops to
zero, prompting the user to resubmit with a new configuration.

This module reproduces that interface as pure rendering: given a
:class:`~repro.core.planner.SchedulePlan` (and optionally live cluster
state), it produces the same status table as plain text — with a ``!!``
marker standing in for the red rows — or as a minimal self-contained HTML
page with the rows literally colored red.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List, Mapping, Optional

from repro.analysis.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.metrics import SimulationResult
    from repro.cluster.simulator import ClusterSimulator
    from repro.core.planner import SchedulePlan

__all__ = ["status_rows", "render_status_text", "render_status_html",
           "render_cluster_text", "render_profile_text",
           "render_fault_text"]

_COLUMNS = ["job", "robust demand", "target T", "projected T",
            "predicted utility", "status"]


def status_rows(plan: "SchedulePlan") -> List[List[object]]:
    """The status table's rows, one per job, in plan order."""
    rows: List[List[object]] = []
    for job_id in plan._order:
        decision = plan.jobs[job_id]
        status = "ok" if decision.achievable else "IMPOSSIBLE"
        rows.append([
            job_id,
            decision.robust_demand,
            decision.target_completion,
            decision.planned_completion,
            decision.predicted_utility,
            status,
        ])
    return rows


def render_status_text(plan: "SchedulePlan") -> str:
    """The Figure 2 table as plain text; ``!!`` marks the red rows."""
    rows = []
    for row in status_rows(plan):
        marker = "!!" if row[-1] == "IMPOSSIBLE" else "  "
        rows.append([marker] + row)
    table = format_table(["", *_COLUMNS], rows, digits=1)
    header = (f"RUSH scheduler status — theta={plan.theta}, "
              f"horizon={plan.horizon} slots, "
              f"{plan.layers} onion layers, solved in "
              f"{plan.solve_seconds * 1e3:.1f} ms")
    impossible = plan.impossible_jobs()
    footer = ("" if not impossible else
              "\n!! jobs cannot reach positive utility; resubmit with a "
              "new job configuration: " + ", ".join(impossible))
    return f"{header}\n\n{table}{footer}"


def render_status_html(plan: "SchedulePlan", title: str = "RUSH scheduler") -> str:
    """The Figure 2 table as a self-contained HTML page.

    Impossible jobs are rendered as literal red rows, exactly like the
    screenshot in the paper.
    """
    body_rows = []
    for row in status_rows(plan):
        impossible = row[-1] == "IMPOSSIBLE"
        style = ' style="background:#c0392b;color:#fff"' if impossible else ""
        cells = "".join(
            f"<td>{html.escape(_fmt(cell))}</td>" for cell in row)
        body_rows.append(f"<tr{style}>{cells}</tr>")
    head_cells = "".join(f"<th>{html.escape(c)}</th>" for c in _COLUMNS)
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{html.escape(title)}</title>"
        "<style>table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;"
        "font-family:monospace}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p>theta={plan.theta}, horizon={plan.horizon} slots, "
        f"{plan.layers} onion layers</p>"
        f"<table><thead><tr>{head_cells}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody></table>"
        "</body></html>")


def render_cluster_text(sim: "ClusterSimulator",
                        plan: Optional["SchedulePlan"] = None) -> str:
    """A live cluster snapshot: containers, active jobs, optional plan."""
    busy = sim.capacity - sim.free_container_count
    lines = [
        f"slot {sim.now}: {busy}/{sim.capacity} containers busy, "
        f"{len(sim.active_jobs)} active job(s), "
        f"{sim.task_failures} task failure(s) so far",
    ]
    rows = []
    for job in sorted(sim.active_jobs, key=lambda j: j.arrival):
        rows.append([
            job.job_id, job.spec.sensitivity, job.arrival,
            job.running_count, job.pending_count, job.completed_count,
            job.failed_count,
        ])
    if rows:
        lines.append(format_table(
            ["job", "class", "arrived", "running", "pending", "done",
             "failed"], rows))
    if plan is not None:
        lines.append("")
        lines.append(render_status_text(plan))
    return "\n".join(lines)


def render_profile_text(profile: Mapping[str, float]) -> str:
    """Planner-cost view over :meth:`RushScheduler.profile` counters.

    Shows where planning time went (WCDE / onion / mapping), how much
    work the incremental engine skipped (estimate reuse, presolve hits,
    WCDE-memo hit rate) and the onion effort (peels, feasibility checks).
    """
    plans = int(profile.get("plans_computed", 0))
    if plans == 0:
        return "planner profile: no plans computed yet"
    total = profile.get("planner_seconds", 0.0)
    lines = [
        f"planner profile: {plans} plan(s) in {total:.3f} s "
        f"({total / plans * 1e3:.1f} ms/plan)",
    ]
    stage_rows = [
        [stage, profile.get(key, 0.0),
         100.0 * profile.get(key, 0.0) / total if total else 0.0]
        for stage, key in (("WCDE", "wcde_seconds"),
                           ("onion peeling", "onion_seconds"),
                           ("slot mapping", "mapping_seconds"))]
    lines.append(format_table(["stage", "seconds", "% of total"],
                              stage_rows, digits=3))
    refreshed = int(profile.get("estimates_refreshed", 0))
    reused = int(profile.get("estimates_reused", 0))
    presolve_hits = int(profile.get("presolve_hits", 0))
    presolve_misses = int(profile.get("presolve_misses", 0))
    lines.append(
        f"estimates: {refreshed} refreshed, {reused} reused "
        f"(dirty tracking); presolve: {presolve_hits} hit(s), "
        f"{presolve_misses} miss(es)")
    lines.append(
        f"WCDE memo: {int(profile.get('wcde_cache_hits', 0))} hit(s), "
        f"{int(profile.get('wcde_cache_misses', 0))} miss(es) "
        f"(hit rate {profile.get('wcde_cache_hit_rate', 0.0):.1%})")
    lines.append(
        f"onion: {int(profile.get('peels', 0))} peel(s), "
        f"{int(profile.get('feasibility_checks', 0))} feasibility check(s)")
    return "\n".join(lines)


def render_fault_text(result: "SimulationResult") -> str:
    """Injected-fault and degradation accounting for one finished run.

    Summarizes the run's :class:`~repro.faults.base.FaultLog` stream by
    kind and the scheduler's degradation-ladder fallbacks — the chaos
    run's observability story in two small tables.
    """
    if not result.fault_events and not result.fallbacks:
        return "faults: none injected, no degradation fallbacks"
    lines = []
    counts: dict = {}
    for event in result.fault_events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    if counts:
        rows = [[kind, counts[kind]] for kind in sorted(counts)]
        lines.append(f"injected faults ({len(result.fault_events)} events):")
        lines.append(format_table(["kind", "events"], rows))
    else:
        lines.append("injected faults: none")
    if result.fallbacks:
        rows = [[rung, result.fallbacks[rung]]
                for rung in sorted(result.fallbacks)]
        lines.append(f"degradation fallbacks ({result.fallback_count}):")
        lines.append(format_table(["rung", "count"], rows))
    else:
        lines.append("degradation fallbacks: none")
    if result.timed_out:
        lines.append(f"run censored at {result.slots_simulated} slots "
                     "(incomplete jobs scored at their capped runtime)")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
