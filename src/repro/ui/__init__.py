"""Management-interface rendering (the paper's Figure 2 status page)."""

from repro.ui.status import (
    render_cluster_text,
    render_profile_text,
    render_status_html,
    render_status_text,
    status_rows,
)

__all__ = [
    "status_rows",
    "render_status_text",
    "render_status_html",
    "render_cluster_text",
    "render_profile_text",
]
