"""Hadoop Capacity Scheduler — the other industry-default baseline.

The paper's introduction names YARN's capacity scheduler (alongside the
fair scheduler) as a de-facto standard that ignores completion-times.  We
ship it for completeness and ablations: the cluster is divided into named
queues with guaranteed capacity shares; each job maps to a queue (by its
sensitivity class, by default); within a queue jobs run FIFO; and — as in
YARN — a queue may *borrow* idle capacity beyond its guarantee when other
queues have no demand.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler

__all__ = ["CapacityScheduler"]

#: Default queue layout: one queue per sensitivity class, shares roughly
#: matching the paper's 20/60/20 workload mix.
DEFAULT_SHARES = {"critical": 0.3, "sensitive": 0.5, "insensitive": 0.2}


class CapacityScheduler(Scheduler):
    """Queue-based capacity sharing with FIFO order inside each queue.

    Parameters
    ----------
    queue_shares:
        Mapping of queue name to its guaranteed capacity fraction; the
        fractions must sum to 1.
    queue_for:
        Maps a :class:`~repro.cluster.job.JobSpec` to its queue name;
        defaults to the job's sensitivity class.
    """

    name = "Capacity"

    def __init__(self,
                 queue_shares: Optional[Dict[str, float]] = None,
                 queue_for: Optional[Callable] = None) -> None:
        super().__init__()
        shares = dict(queue_shares if queue_shares is not None
                      else DEFAULT_SHARES)
        if not shares:
            raise ConfigurationError("at least one queue is required")
        if any(s <= 0 for s in shares.values()):
            raise ConfigurationError("queue shares must be positive")
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"queue shares must sum to 1, got {total}")
        self._shares = shares
        self._queue_for = queue_for or (lambda spec: spec.sensitivity)

    def _queue_of(self, job) -> str:
        queue = self._queue_for(job.spec)
        if queue not in self._shares:
            raise ConfigurationError(
                f"job {job.job_id!r} mapped to unknown queue {queue!r}")
        return queue

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        # Current usage per queue, counting every active job's containers.
        usage: Dict[str, int] = {queue: 0 for queue in self._shares}
        for job in self.sim.active_jobs:
            usage[self._queue_of(job)] += job.running_count

        by_queue: Dict[str, list] = {}
        for job in candidates:
            by_queue.setdefault(self._queue_of(job), []).append(job)

        capacity = self.sim.capacity

        def queue_pressure(queue: str) -> float:
            # Fraction of the queue's guarantee currently used; the least
            # loaded queue (relative to its share) is served first, which
            # both honors guarantees and lets idle capacity be borrowed.
            return usage[queue] / (self._shares[queue] * capacity)

        queue = min(by_queue, key=lambda q: (queue_pressure(q), q))
        head = min(by_queue[queue], key=lambda j: (j.arrival, j.job_id))
        return head.job_id
