"""FIFO scheduling — the default Hadoop policy and a Figure 4/6 baseline.

Jobs are served strictly "according to the order of their arrival time":
the earliest-arrived job with pending tasks receives every free container
until it runs out of tasks.  The paper highlights the resulting
head-of-line blocking — one long, time-insensitive job at the head starves
every time-critical job behind it.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import Scheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """Grant all containers to the earliest-arrived job with pending work."""

    name = "FIFO"

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        head = min(candidates, key=lambda job: (job.arrival, job.job_id))
        return head.job_id
