"""The RUSH scheduler: the CA unit of Section IV on the cluster substrate.

Each job gets a Distribution Estimator unit at arrival; completed-task
runtimes stream into it.  Whenever a container frees, the scheduler

1. refreshes the demand estimate of every *dirty* active job,
2. invokes the :class:`~repro.core.planner.RushPlanner` (WCDE -> onion
   peeling -> continuous time-slot mapping),
3. reads only the *first slot* of the resulting container plan and grants
   the free container to the job with the largest gap between its planned
   and current container count — exactly the CA rule of the paper
   ("selects a job that has the largest difference between the new and old
   assignments").

The full plan is recomputed at the next scheduling event, closing the
feedback cycle that lets RUSH recover from earlier estimation mistakes.
Plans are cached within a (slot, completion-count) epoch so several grants
in the same slot reuse one solve.

Between consecutive events, most jobs observed nothing: no task sample,
no failure, no launch.  Their DE report is bit-identical, so the
scheduler tracks per-job dirtiness — a job is marked dirty by a task
completion, failure or launch (pending set changed) and at arrival — and
re-runs the estimator only for dirty jobs.  Clean jobs reuse the cached
:class:`~repro.estimation.base.DemandEstimate` *object*, which lets the
:class:`~repro.core.planner.IncrementalPlanner` presolve their robust
demand and the onion warm start collapse unchanged layers.  The expected
remaining work of running tasks (``extra_demand``) drifts every slot and
is recomputed on every plan; it sits outside the memoized stage.

Pass ``incremental=False`` to restore the recompute-everything behaviour
(useful for A/B tests; the equivalence suite asserts both modes schedule
identically), or ``warm_start=True`` to additionally forward each plan's
onion-layer brackets to the next solve.  Warm starting is *approximate*:
on a drifted snapshot the bisection may settle on a within-tolerance
different utility level than a cold solve, so it is off by default in
simulation and reserved for high-frequency replanning loops where the
tolerance slack is acceptable.

When the plan offers no job a larger share (e.g. only jobs the plan defers
remain), the scheduler is work-conserving by default and falls back to the
earliest-ebbed deadline; pass ``work_conserving=False`` to let it idle
containers instead, which matches a stricter reading of the plan.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Set, Tuple

from repro.cluster.job import JobSpec
from repro.core.degradation import DegradationPolicy
from repro.core.parallel import ParallelPlanner, SqliteWcdeStore
from repro.core.planner import (IncrementalPlanner, PlannerJob, RushPlanner,
                                SchedulePlan)
from repro.errors import SolverBudgetError
from repro.estimation.base import DemandEstimate, DistributionEstimator
from repro.estimation.gaussian import GaussianEstimator
from repro.obs import get_ledger, get_metrics
from repro.schedulers.base import Scheduler
from repro.schedulers.edf import edf_key

__all__ = ["RushScheduler"]

#: Histogram buckets for estimates refreshed (dirty jobs) per round.
_DIRTY_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

EstimatorFactory = Callable[[Optional[float]], DistributionEstimator]
SpecEstimatorFactory = Callable[[JobSpec], DistributionEstimator]


def _default_estimator_factory(prior_runtime: Optional[float]) -> DistributionEstimator:
    """The paper's Gaussian DE class, seeded with the job's runtime prior."""
    return GaussianEstimator(prior_mean=prior_runtime, min_samples=2)


class RushScheduler(Scheduler):
    """Robust, completion-time-aware container granting.

    Parameters
    ----------
    theta:
        Completion-probability percentile of the robust constraint.
    delta:
        Entropy threshold for the WCDE problem (the paper's experiments
        find values >= 0.7 necessary once enough samples exist).
    tolerance:
        Utility bisection tolerance of the onion peeling.
    estimator_factory:
        Builds one DE unit per job; receives the job's ``prior_runtime``
        (may be None).  Defaults to the Gaussian estimator.
    spec_estimator_factory:
        Optional richer factory receiving the full :class:`JobSpec`
        (template, priors, budget) instead of just the runtime prior.
        Takes precedence over ``estimator_factory`` when set — this is
        how trace-fitted per-class estimators
        (:class:`~repro.estimation.empirical.TraceFittedEstimators`)
        plug in without widening the legacy factory signature.
    default_prior_runtime:
        Fallback per-task runtime prior (slots) for jobs that ship none.
    work_conserving:
        Grant a container to *some* pending job even when the plan gives
        nobody a larger share (default); disable to honor plan idling.
    incremental:
        Track per-job dirtiness, reuse clean estimates and presolve their
        robust demands (default).  Off, every event recomputes everything
        — the pre-incremental behaviour, kept for A/B comparison.
    warm_start:
        Forward each plan's onion-layer brackets to the next solve
        (requires ``incremental``).  Unchanged layers collapse to two
        feasibility checks, but drifted snapshots may settle on
        within-tolerance different utility levels than a cold solve —
        hence off by default.
    wcde_cache_size:
        Entry bound of the planner's content-addressed WCDE memo
        (0 disables it).
    batch_wcde:
        Route the WCDE stage through the vectorized batch sweep
        (default).  ``False`` restores the scalar per-job solve — same
        answers, kept as an A/B lever (``rush simulate --no-batch``).
    parallel_workers:
        When > 0 (and ``incremental``), wrap the planner in a
        :class:`~repro.core.parallel.ParallelPlanner` that shards WCDE
        presolve across that many worker processes.  Plans stay
        byte-identical to the serial path; worth it only when rounds
        carry thousands of dirty jobs (``rush simulate --parallel N``).
    wcde_store_path:
        Optional sqlite path backing the parallel planner's cache so
        solves survive restarts and are shared across planners.  Only
        consulted when ``parallel_workers > 0``.
    parallel_seed:
        Seed handed to each pool worker's RNG initializer (RL010).
    plan_time_budget:
        Wall-clock seconds allowed per planning round (None = unlimited).
        Overruns raise inside the solver and are absorbed by the
        degradation ladder.
    degradation:
        The :class:`~repro.core.degradation.DegradationPolicy` walking
        the fallback ladder (incremental -> cold exact -> last-good plan
        -> greedy EDF) when a solve fails; a default policy is built
        from ``plan_time_budget`` when not given.
    """

    name = "RUSH"

    def __init__(self, *, theta: float = 0.9, delta: float = 0.7,
                 tolerance: float = 0.05,
                 estimator_factory: EstimatorFactory = _default_estimator_factory,
                 spec_estimator_factory: Optional[SpecEstimatorFactory] = None,
                 default_prior_runtime: float = 10.0,
                 work_conserving: bool = True,
                 compensate_runtime: bool = True,
                 incremental: bool = True,
                 warm_start: bool = False,
                 wcde_cache_size: int = 4096,
                 batch_wcde: bool = True,
                 parallel_workers: int = 0,
                 wcde_store_path: Optional[str] = None,
                 parallel_seed: int = 0,
                 plan_time_budget: Optional[float] = None,
                 degradation: Optional[DegradationPolicy] = None) -> None:
        super().__init__()
        self._theta = theta
        self._delta = delta
        self._tolerance = tolerance
        self._compensate_runtime = compensate_runtime
        self._estimator_factory = estimator_factory
        self._spec_estimator_factory = spec_estimator_factory
        self._default_prior = default_prior_runtime
        self._work_conserving = work_conserving
        self._incremental_enabled = incremental
        self._warm_start = warm_start
        self._wcde_cache_size = wcde_cache_size
        self._batch_wcde = batch_wcde
        self._parallel_workers = parallel_workers
        self._wcde_store_path = wcde_store_path
        self._parallel_seed = parallel_seed
        self._wcde_store: Optional[SqliteWcdeStore] = None
        self._estimators: Dict[str, DistributionEstimator] = {}
        self._planner: Optional[RushPlanner] = None
        self._incremental: Optional[IncrementalPlanner | ParallelPlanner] = None
        self._plan: Optional[SchedulePlan] = None
        self._plan_epoch: Optional[tuple] = None
        self._completions = 0
        # Dirty tracking: jobs whose DE inputs changed since their cached
        # estimate was computed.  The cache stores the estimate together
        # with the pending count it was computed for, as a belt-and-braces
        # guard against any pending-set change that slips past the hooks.
        self._dirty: Set[str] = set()
        self._estimates: Dict[str, Tuple[DemandEstimate, int]] = {}
        self.degradation = (degradation if degradation is not None
                            else DegradationPolicy(time_budget=plan_time_budget))
        self._forced_failures = 0
        self._fault_log = None
        self.planner_seconds = 0.0
        self.plans_computed = 0
        self.estimates_refreshed = 0
        self.estimates_reused = 0
        self._stage_seconds = {"wcde": 0.0, "onion": 0.0, "mapping": 0.0}
        self._feasibility_checks = 0
        self._peels = 0

    # -- lifecycle hooks -------------------------------------------------------

    def bind(self, sim) -> None:
        super().bind(sim)
        self._planner = RushPlanner(sim.capacity, theta=self._theta,
                                    delta=self._delta, tolerance=self._tolerance,
                                    compensate_runtime=self._compensate_runtime,
                                    wcde_cache_size=self._wcde_cache_size,
                                    batch_wcde=self._batch_wcde)
        if self._incremental_enabled:
            if self._parallel_workers > 0:
                if self._wcde_store_path is not None:
                    self._wcde_store = SqliteWcdeStore(self._wcde_store_path)
                self._incremental = ParallelPlanner(
                    self._planner, workers=self._parallel_workers,
                    warm_start=self._warm_start, store=self._wcde_store,
                    seed=self._parallel_seed)
            else:
                self._incremental = IncrementalPlanner(
                    self._planner, warm_start=self._warm_start)
        self._fault_log = getattr(sim, "fault_log", None)

    def close(self) -> None:
        """Release the worker pool and sqlite store, if any (idempotent)."""
        if isinstance(self._incremental, ParallelPlanner):
            self._incremental.close()
        if self._wcde_store is not None:
            self._wcde_store.close()
            self._wcde_store = None

    def on_job_arrival(self, job) -> None:
        if self._spec_estimator_factory is not None:
            self._estimators[job.job_id] = self._spec_estimator_factory(job.spec)
        else:
            prior = job.spec.prior_runtime
            if prior is None:
                prior = self._default_prior
            self._estimators[job.job_id] = self._estimator_factory(prior)
        self._dirty.add(job.job_id)

    def on_task_launched(self, job, task) -> None:
        # The pending set shrank, so the remaining-demand estimate changed.
        self._dirty.add(job.job_id)

    def on_task_complete(self, job, task) -> None:
        # ``runtime_sample`` is the observable runtime — ground truth
        # unless a fault injector corrupted the observation.
        self._estimators[job.job_id].observe(
            float(getattr(task, "runtime_sample", task.duration)))
        self._dirty.add(job.job_id)
        self._completions += 1

    def on_task_failed(self, job, task) -> None:
        estimator = self._estimators[job.job_id]
        observe_failure = getattr(estimator, "observe_failure", None)
        if observe_failure is not None:
            observe_failure(float(task.executed))
        self._dirty.add(job.job_id)
        self._completions += 1  # any task event invalidates the plan epoch

    def on_job_complete(self, job) -> None:
        self._estimators.pop(job.job_id, None)
        self._estimates.pop(job.job_id, None)
        self._dirty.discard(job.job_id)
        if self._incremental is not None:
            self._incremental.forget(job.job_id)

    def on_job_cancelled(self, job) -> None:
        # Same cleanup as completion, plus an epoch bump: the active set
        # changed mid-slot, so any cached plan mentioning the job is stale.
        self.on_job_complete(job)
        self._plan_epoch = None

    # -- the CA decision rule ----------------------------------------------------

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        plan = self._current_plan()
        if plan is None:
            # The degradation ladder bottomed out: no usable plan this
            # round.  Stay live with the greedy-EDF floor.
            return min(candidates, key=edf_key).job_id
        desired = plan.next_slot_allocation()
        best_id: Optional[str] = None
        best_gap = 0.0
        for job in candidates:
            gap = desired.get(job.job_id, 0) - job.running_count
            if gap > best_gap + 1e-12:
                best_gap = gap
                best_id = job.job_id
        if best_id is not None:
            return best_id
        if not self._work_conserving:
            return None
        # No job is below its planned share; stay work-conserving but keep
        # the plan's urgency order — grant by earliest planned completion,
        # NOT by nominal budget (insensitive jobs often carry short budgets
        # yet must wait, which is the whole point of RUSH).  Equal targets
        # (typically horizon-deferred jobs) break toward the job with the
        # most utility left to recover by running sooner.
        now = self.sim.now
        def fallback(job):
            target = plan.jobs[job.job_id].target_completion \
                if job.job_id in plan.jobs else math.inf
            elapsed = job.elapsed(now)
            recoverable = (job.utility.value(elapsed)
                           - job.utility.value(elapsed + target)
                           if math.isfinite(target) else 0.0)
            deadline = job.spec.deadline
            return (target, -recoverable,
                    deadline if math.isfinite(deadline) else math.inf,
                    job.arrival, job.job_id)
        return min(candidates, key=fallback).job_id

    # -- planning ------------------------------------------------------------------

    @property
    def last_plan(self) -> Optional[SchedulePlan]:
        """The most recent schedule plan (None before the first event)."""
        return self._plan

    def impossible_jobs(self) -> list:
        """Jobs the latest plan marks as unable to attain positive utility.

        This backs the "red rows" of the paper's enhanced HTTP interface.
        """
        if self._plan is None:
            return []
        return self._plan.impossible_jobs()

    def profile(self) -> Dict[str, float]:
        """Aggregated planner-cost counters for this scheduler's lifetime.

        Returned keys: ``plans_computed``, ``planner_seconds``, per-stage
        seconds (``wcde_seconds``/``onion_seconds``/``mapping_seconds``),
        ``estimates_refreshed``/``estimates_reused`` (dirty tracking),
        ``presolve_hits``/``presolve_misses`` (stage-1 skips),
        ``wcde_cache_hits``/``wcde_cache_misses``/``wcde_cache_hit_rate``
        (content-addressed memo), plus total onion ``peels`` and
        ``feasibility_checks`` and the degradation-ladder ``fallbacks``
        total.  Rendered by ``rush simulate --profile`` and
        :func:`repro.ui.status.render_profile_text`.
        """
        cache = self._planner.wcde_cache if self._planner is not None else None
        inc = self._incremental
        return {
            "fallbacks": self.degradation.total_fallbacks,
            "plans_computed": self.plans_computed,
            "planner_seconds": self.planner_seconds,
            "wcde_seconds": self._stage_seconds["wcde"],
            "onion_seconds": self._stage_seconds["onion"],
            "mapping_seconds": self._stage_seconds["mapping"],
            "estimates_refreshed": self.estimates_refreshed,
            "estimates_reused": self.estimates_reused,
            "presolve_hits": inc.presolve_hits if inc is not None else 0,
            "presolve_misses": inc.presolve_misses if inc is not None else 0,
            "wcde_cache_hits": cache.hits if cache is not None else 0,
            "wcde_cache_misses": cache.misses if cache is not None else 0,
            "wcde_cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
            "peels": self._peels,
            "feasibility_checks": self._feasibility_checks,
        }

    def _job_estimate(self, job) -> DemandEstimate:
        """The job's current DE report, recomputed only when dirty."""
        pending = job.pending_count
        cached = self._estimates.get(job.job_id)
        if (self._incremental_enabled and cached is not None
                and job.job_id not in self._dirty and cached[1] == pending):
            self.estimates_reused += 1
            return cached[0]
        estimate = self._estimators[job.job_id].estimate(pending)
        self._estimates[job.job_id] = (estimate, pending)
        self._dirty.discard(job.job_id)
        self.estimates_refreshed += 1
        return estimate

    def inject_solver_fault(self, depth: int = 1) -> None:
        """Arm a forced failure of the next planning round's solve(s).

        The fault-injection hook the
        :class:`~repro.faults.injectors.SolverBudgetInjector` drives:
        ``depth`` rungs of the degradation ladder fail before one may
        succeed (1 = primary only, 2 = also the cold re-solve, 3 = also
        discard the last good plan, landing on greedy EDF).
        """
        self._forced_failures = max(self._forced_failures, int(depth))
        self._plan_epoch = None  # the armed fault must hit a fresh solve

    @property
    def degradation_counts(self) -> Dict[str, int]:
        """Fallback-rung usage counts (exported on SimulationResult)."""
        return dict(self.degradation.counts)

    def _current_plan(self) -> Optional[SchedulePlan]:
        epoch = (self.sim.now, self._completions, len(self.sim.active_jobs))
        if self._plan_epoch == epoch:
            return self._plan  # may be None: greedy-EDF mode for this epoch
        now = self.sim.now
        refreshed_before = self.estimates_refreshed
        planner_jobs = []
        for job in self.sim.active_jobs:
            estimate = self._job_estimate(job)
            # Running tasks hold containers beyond this slot; fold their
            # expected remaining work into the job's demand so the plan
            # does not treat busy capacity as free.  This drifts with task
            # age every slot, so it stays outside the memoized stage.
            runtime = estimate.container_runtime
            extra = sum(max(runtime - age, 0.25 * runtime)
                        for age in job.running_task_ages(now))
            planner_jobs.append(PlannerJob(
                job_id=job.job_id, utility=job.utility,
                estimate=estimate, elapsed=float(job.elapsed(now)),
                extra_demand=extra))
        assert self._planner is not None
        forced = self._forced_failures
        self._forced_failures = 0

        def primary() -> SchedulePlan:
            if forced >= 1:
                raise SolverBudgetError("injected solver fault (primary)")
            budget = self.degradation.time_budget
            if self._incremental is not None:
                return self._incremental.plan(planner_jobs,
                                              time_budget=budget)
            return self._planner.plan(planner_jobs, time_budget=budget)

        def cold_exact() -> SchedulePlan:
            if forced >= 2:
                raise SolverBudgetError("injected solver fault (cold)")
            if self._incremental is not None:
                self._incremental.reset()
            return self._planner.plan(planner_jobs,
                                      time_budget=self.degradation.cold_time_budget)

        last_good = None if forced >= 3 else self._plan
        outcome = self.degradation.execute(
            [("primary", primary), ("cold_exact", cold_exact)], last_good)
        if outcome.degraded and self._fault_log is not None:
            self._fault_log.record(
                now, f"degradation:{outcome.rung}", "planner",
                errors=list(outcome.errors))
        plan = outcome.plan
        if plan is not None and outcome.rung != "last_good":
            self.planner_seconds += plan.solve_seconds
            self.plans_computed += 1
            self._stage_seconds["wcde"] += plan.stats.wcde_seconds
            self._stage_seconds["onion"] += plan.stats.onion_seconds
            self._stage_seconds["mapping"] += plan.stats.mapping_seconds
            self._feasibility_checks += plan.stats.feasibility_checks
            self._peels += plan.stats.peels
            self._note_plan_obs(now, plan,
                                self.estimates_refreshed - refreshed_before)
        self._plan = plan
        self._plan_epoch = epoch
        return plan

    def _note_plan_obs(self, now: int, plan: SchedulePlan, dirty: int) -> None:
        """Feed the scheduler-level metrics and the completion ledger.

        Only called for *fresh* plans: a reused ``last_good`` plan made no
        new promises and refreshed no estimates, so it records nothing.
        """
        metrics = get_metrics()
        if metrics.active:
            metrics.histogram("rush_sched_dirty_jobs", buckets=_DIRTY_BUCKETS,
                              help="Estimates refreshed per planning round",
                              unit="jobs").observe(dirty)
        ledger = get_ledger()
        if ledger.active:
            for job_id, job_plan in plan.jobs.items():
                ledger.predict(job_id, now,
                               now + job_plan.planned_completion, self._theta)
