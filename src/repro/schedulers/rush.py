"""The RUSH scheduler: the CA unit of Section IV on the cluster substrate.

Each job gets a Distribution Estimator unit at arrival; completed-task
runtimes stream into it.  Whenever a container frees, the scheduler

1. refreshes every active job's demand estimate,
2. invokes the :class:`~repro.core.planner.RushPlanner` (WCDE -> onion
   peeling -> continuous time-slot mapping),
3. reads only the *first slot* of the resulting container plan and grants
   the free container to the job with the largest gap between its planned
   and current container count — exactly the CA rule of the paper
   ("selects a job that has the largest difference between the new and old
   assignments").

The full plan is recomputed at the next scheduling event, closing the
feedback cycle that lets RUSH recover from earlier estimation mistakes.
Plans are cached within a (slot, completion-count) epoch so several grants
in the same slot reuse one solve.

When the plan offers no job a larger share (e.g. only jobs the plan defers
remain), the scheduler is work-conserving by default and falls back to the
earliest-ebbed deadline; pass ``work_conserving=False`` to let it idle
containers instead, which matches a stricter reading of the plan.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.core.planner import PlannerJob, RushPlanner, SchedulePlan
from repro.estimation.base import DistributionEstimator
from repro.estimation.gaussian import GaussianEstimator
from repro.schedulers.base import Scheduler

__all__ = ["RushScheduler"]

EstimatorFactory = Callable[[Optional[float]], DistributionEstimator]


def _default_estimator_factory(prior_runtime: Optional[float]) -> DistributionEstimator:
    """The paper's Gaussian DE class, seeded with the job's runtime prior."""
    return GaussianEstimator(prior_mean=prior_runtime, min_samples=2)


class RushScheduler(Scheduler):
    """Robust, completion-time-aware container granting.

    Parameters
    ----------
    theta:
        Completion-probability percentile of the robust constraint.
    delta:
        Entropy threshold for the WCDE problem (the paper's experiments
        find values >= 0.7 necessary once enough samples exist).
    tolerance:
        Utility bisection tolerance of the onion peeling.
    estimator_factory:
        Builds one DE unit per job; receives the job's ``prior_runtime``
        (may be None).  Defaults to the Gaussian estimator.
    default_prior_runtime:
        Fallback per-task runtime prior (slots) for jobs that ship none.
    work_conserving:
        Grant a container to *some* pending job even when the plan gives
        nobody a larger share (default); disable to honor plan idling.
    """

    name = "RUSH"

    def __init__(self, *, theta: float = 0.9, delta: float = 0.7,
                 tolerance: float = 0.05,
                 estimator_factory: EstimatorFactory = _default_estimator_factory,
                 default_prior_runtime: float = 10.0,
                 work_conserving: bool = True,
                 compensate_runtime: bool = True) -> None:
        super().__init__()
        self._theta = theta
        self._delta = delta
        self._tolerance = tolerance
        self._compensate_runtime = compensate_runtime
        self._estimator_factory = estimator_factory
        self._default_prior = default_prior_runtime
        self._work_conserving = work_conserving
        self._estimators: Dict[str, DistributionEstimator] = {}
        self._planner: Optional[RushPlanner] = None
        self._plan: Optional[SchedulePlan] = None
        self._plan_epoch: Optional[tuple] = None
        self._completions = 0
        self.planner_seconds = 0.0
        self.plans_computed = 0

    # -- lifecycle hooks -------------------------------------------------------

    def bind(self, sim) -> None:
        super().bind(sim)
        self._planner = RushPlanner(sim.capacity, theta=self._theta,
                                    delta=self._delta, tolerance=self._tolerance,
                                    compensate_runtime=self._compensate_runtime)

    def on_job_arrival(self, job) -> None:
        prior = job.spec.prior_runtime
        if prior is None:
            prior = self._default_prior
        self._estimators[job.job_id] = self._estimator_factory(prior)

    def on_task_complete(self, job, task) -> None:
        self._estimators[job.job_id].observe(float(task.duration))
        self._completions += 1

    def on_task_failed(self, job, task) -> None:
        estimator = self._estimators[job.job_id]
        observe_failure = getattr(estimator, "observe_failure", None)
        if observe_failure is not None:
            observe_failure(float(task.executed))
        self._completions += 1  # any task event invalidates the plan epoch

    # -- the CA decision rule ----------------------------------------------------

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        plan = self._current_plan()
        desired = plan.next_slot_allocation()
        best_id: Optional[str] = None
        best_gap = 0.0
        for job in candidates:
            gap = desired.get(job.job_id, 0) - job.running_count
            if gap > best_gap + 1e-12:
                best_gap = gap
                best_id = job.job_id
        if best_id is not None:
            return best_id
        if not self._work_conserving:
            return None
        # No job is below its planned share; stay work-conserving but keep
        # the plan's urgency order — grant by earliest planned completion,
        # NOT by nominal budget (insensitive jobs often carry short budgets
        # yet must wait, which is the whole point of RUSH).  Equal targets
        # (typically horizon-deferred jobs) break toward the job with the
        # most utility left to recover by running sooner.
        now = self.sim.now
        def fallback(job):
            target = plan.jobs[job.job_id].target_completion \
                if job.job_id in plan.jobs else math.inf
            elapsed = job.elapsed(now)
            recoverable = (job.utility.value(elapsed)
                           - job.utility.value(elapsed + target)
                           if math.isfinite(target) else 0.0)
            deadline = job.spec.deadline
            return (target, -recoverable,
                    deadline if math.isfinite(deadline) else math.inf,
                    job.arrival, job.job_id)
        return min(candidates, key=fallback).job_id

    # -- planning ------------------------------------------------------------------

    @property
    def last_plan(self) -> Optional[SchedulePlan]:
        """The most recent schedule plan (None before the first event)."""
        return self._plan

    def impossible_jobs(self) -> list:
        """Jobs the latest plan marks as unable to attain positive utility.

        This backs the "red rows" of the paper's enhanced HTTP interface.
        """
        if self._plan is None:
            return []
        return self._plan.impossible_jobs()

    def _current_plan(self) -> SchedulePlan:
        epoch = (self.sim.now, self._completions, len(self.sim.active_jobs))
        if self._plan is not None and self._plan_epoch == epoch:
            return self._plan
        now = self.sim.now
        planner_jobs = []
        for job in self.sim.active_jobs:
            estimator = self._estimators[job.job_id]
            estimate = estimator.estimate(job.pending_count)
            # Running tasks hold containers beyond this slot; fold their
            # expected remaining work into the job's demand so the plan
            # does not treat busy capacity as free.
            runtime = estimate.container_runtime
            extra = sum(max(runtime - age, 0.25 * runtime)
                        for age in job.running_task_ages(now))
            planner_jobs.append(PlannerJob(
                job_id=job.job_id, utility=job.utility,
                estimate=estimate, elapsed=float(job.elapsed(now)),
                extra_demand=extra))
        assert self._planner is not None
        plan = self._planner.plan(planner_jobs)
        self.planner_seconds += plan.solve_seconds
        self.plans_computed += 1
        self._plan = plan
        self._plan_epoch = epoch
        return plan
