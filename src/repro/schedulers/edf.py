"""Earliest-Deadline-First scheduling — a Figure 4/6 baseline.

Jobs are served "according to the order of their time budget": the job
with the earliest absolute deadline (``arrival + budget``) monopolizes the
free containers.  EDF is deadline-optimal for preemptive single-machine
queues but, as the paper's experiments show, it ignores completion-time
*sensitivity* — a time-insensitive job with a tight nominal budget can
starve a time-critical one with a looser budget.

Jobs without a finite budget sort last (effectively background work).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.schedulers.base import Scheduler

__all__ = ["EdfScheduler", "edf_key"]


def edf_key(job) -> tuple:
    """Sort key for earliest-absolute-deadline ordering of sim jobs.

    Shared by :class:`EdfScheduler` and the RUSH degradation ladder's
    greedy-EDF floor, so both rank identically.
    """
    deadline = job.spec.deadline
    if not math.isfinite(deadline):
        deadline = math.inf
    return (deadline, job.arrival, job.job_id)


class EdfScheduler(Scheduler):
    """Grant all containers to the job with the earliest absolute deadline."""

    name = "EDF"

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        return min(candidates, key=edf_key).job_id
