"""Risk-Reward Heuristic (RRH) scheduling — a Figure 4/6 baseline.

Reimplementation of the market-based heuristic of Irwin, Grit and Chase
(HPDC'04), cited as [20] by the paper: "scheduling decisions are made
based on the future utility gain and opportunity cost of reallocating
resources".  At every scheduling event each job is scored by comparing
two futures:

* *granted*: the job receives the container now and finishes around
  ``elapsed + remaining_work / (r + 1)``;
* *deferred*: the job waits roughly one task runtime for the next
  opportunity and finishes around ``elapsed + delay + remaining_work / r``
  (never, if it holds no container).

The score ``U(granted) - U(deferred)`` is the utility at risk if the
container goes elsewhere — the "reward" of investing minus the
opportunity cost of deferring.  Remaining work is estimated from the mean
observed task runtime (falling back to the job's prior), mirroring the
point estimates the original system used.

The behaviour the paper reports emerges naturally: a time-*critical* job
(steep sigmoid) nearing its budget stands to lose its whole priority by
waiting, so its score dwarfs everyone else's and RRH serves it with
everything — completing critical jobs well before their deadlines at the
expense of the merely time-*sensitive* class.  When no job's utility is
at risk the policy stays work-conserving and falls back to
earliest-deadline order.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.schedulers.base import Scheduler

__all__ = ["RrhScheduler"]


class RrhScheduler(Scheduler):
    """Greedy risk/reward container granting.

    Parameters
    ----------
    default_runtime:
        Mean task runtime (slots) assumed for a job before any of its
        tasks completed; per-job priors from the job spec take precedence.
    """

    name = "RRH"

    def __init__(self, default_runtime: float = 10.0) -> None:
        super().__init__()
        if default_runtime <= 0:
            raise ValueError(f"default_runtime must be positive, got {default_runtime}")
        self._default_runtime = default_runtime

    def _mean_runtime(self, job) -> float:
        samples = job.runtime_samples()
        if samples:
            return sum(samples) / len(samples)
        if job.spec.prior_runtime is not None:
            return job.spec.prior_runtime
        return self._default_runtime

    def _finish_estimate(self, job, containers: int, now: int,
                         extra_wait: float = 0.0) -> float:
        """Estimated total completion-time with ``containers`` containers."""
        remaining = job.pending_count * self._mean_runtime(job)
        elapsed = job.elapsed(now)
        if containers <= 0:
            return math.inf if remaining > 0 else float(elapsed)
        return elapsed + extra_wait + remaining / containers

    def _score(self, job, now: int) -> float:
        """Utility at risk if this job's grant is deferred by one runtime."""
        r = job.running_count
        delay = self._mean_runtime(job)
        granted = job.utility.value(self._finish_estimate(job, r + 1, now))
        deferred = job.utility.value(
            self._finish_estimate(job, r, now, extra_wait=delay))
        return granted - deferred

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None
        now = self.sim.now
        best_id: Optional[str] = None
        best_score = 0.0
        for job in candidates:
            score = self._score(job, now)
            if score > best_score + 1e-12:
                best_score = score
                best_id = job.job_id
        if best_id is not None:
            return best_id
        # No utility at risk anywhere; serve the earliest deadline instead.
        def fallback(job):
            deadline = job.spec.deadline
            return (deadline if math.isfinite(deadline) else math.inf,
                    job.arrival, job.job_id)
        return min(candidates, key=fallback).job_id
