"""Max-min fair sharing — the Hadoop Fair Scheduler as an extra baseline.

The paper excludes the fair scheduler from its figures because it is not
completion-time aware, but it is the de-facto industry default, so we ship
it for ablations: every scheduling event grants the container to the
active job currently holding the fewest containers (weighted by priority),
which equalizes instantaneous shares exactly like Hadoop's fair scheduler
does at the job level.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import Scheduler

__all__ = ["FairScheduler"]


class FairScheduler(Scheduler):
    """Grant the container to the job with the smallest weighted share."""

    name = "Fair"

    def __init__(self, weighted: bool = True) -> None:
        super().__init__()
        self._weighted = weighted

    def select_job(self) -> Optional[str]:
        candidates = self._candidates()
        if not candidates:
            return None

        def share(job):
            weight = max(job.spec.priority, 1e-9) if self._weighted else 1.0
            return (job.running_count / weight, job.arrival, job.job_id)

        return min(candidates, key=share).job_id
