"""Scheduler plug-in interface for the cluster substrate.

A scheduler answers one question — *which active job gets the next free
container?* — and optionally listens to lifecycle events (arrivals, task
launches/completions) to maintain internal state, exactly the surface the
RUSH CA unit has against the YARN resource manager.

Returning ``None`` from :meth:`select_job` deliberately leaves the
remaining containers idle for this slot; most policies here are
work-conserving and never do, but the interface permits it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.job import SimJob
    from repro.cluster.simulator import ClusterSimulator
    from repro.cluster.task import Task

__all__ = ["Scheduler"]


class Scheduler(ABC):
    """Base class for container-granting policies."""

    #: Human-readable policy name used in results and reports.
    name: str = "scheduler"

    def __init__(self) -> None:
        self._sim: Optional["ClusterSimulator"] = None

    def bind(self, sim: "ClusterSimulator") -> None:
        """Attach the scheduler to a simulator (called by the simulator)."""
        if self._sim is not None:
            raise SimulationError(
                f"{type(self).__name__} is already bound to a simulator")
        self._sim = sim

    @property
    def sim(self) -> "ClusterSimulator":
        if self._sim is None:
            raise SimulationError(f"{type(self).__name__} is not bound to a simulator")
        return self._sim

    # -- the decision ---------------------------------------------------------

    @abstractmethod
    def select_job(self) -> Optional[str]:
        """Pick the job to receive the next free container, or ``None``."""

    def select_speculative(self):
        """Request a speculative duplicate for a straggling running task.

        Called only when free containers remain after :meth:`select_job`
        stopped granting.  Return ``None`` (the default — no speculation)
        or a ``(job_id, logical_id, duration)`` triple naming the running
        logical task to race and the duplicate's assumed ground-truth
        duration.  See :class:`repro.schedulers.speculative
        .SpeculativeScheduler` for the standard policy.
        """
        return None

    # -- lifecycle hooks (optional) ---------------------------------------------

    def on_job_arrival(self, job: "SimJob") -> None:
        """A job just arrived (override to set up per-job state)."""

    def on_task_launched(self, job: "SimJob", task: "Task") -> None:
        """A task of ``job`` was just granted a container."""

    def on_task_complete(self, job: "SimJob", task: "Task") -> None:
        """A task finished; ``task.duration`` is a fresh runtime sample."""

    def on_task_failed(self, job: "SimJob", task: "Task") -> None:
        """A task attempt failed partway; a retry is already queued."""

    def on_job_complete(self, job: "SimJob") -> None:
        """All of ``job``'s tasks finished."""

    def on_job_cancelled(self, job: "SimJob") -> None:
        """The client withdrew ``job`` before it completed.

        Its running attempts are already aborted and their containers
        freed; override to drop any per-job state.
        """

    # -- shared helpers ------------------------------------------------------------

    def _candidates(self) -> list:
        """Active jobs that still have pending tasks."""
        return [job for job in self.sim.active_jobs if job.pending_count > 0]
