"""Speculative execution — the related-work mitigation, as a wrapper.

The paper contrasts RUSH with the line of work that fights runtime
uncertainty through *speculative execution* (LATE and successors, its
refs [2], [10]–[12]): when a task looks like a straggler, launch a
duplicate attempt on an idle container and keep whichever finishes first.
Those systems provide no completion-time guarantees, but they do clip the
straggler tail — so a faithful reproduction should let any baseline be
combined with speculation and measured.

:class:`SpeculativeScheduler` wraps an arbitrary base policy.  Container
grants and lifecycle events pass straight through; only when the base
policy leaves containers idle does the wrapper look for running attempts
that have already executed longer than ``slowdown_threshold`` times the
job's typical task runtime (observed mean, falling back to the job's
prior) and requests a duplicate.  The duplicate's assumed ground-truth
duration is the median of the job's *completed* task durations — a fresh
attempt on a healthy container runs at typical speed.
"""

from __future__ import annotations

import statistics
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler

__all__ = ["SpeculativeScheduler"]


class SpeculativeScheduler(Scheduler):
    """Add LATE-style speculative execution to any base policy.

    Parameters
    ----------
    base:
        The policy making the ordinary container-grant decisions.
    slowdown_threshold:
        An attempt is a straggler candidate once it has executed more than
        this multiple of the job's typical task runtime.
    min_samples:
        Completed-task samples a job needs before its tasks may be
        speculated (one cannot call a task slow without a baseline).
    """

    def __init__(self, base: Scheduler, *, slowdown_threshold: float = 1.5,
                 min_samples: int = 3) -> None:
        super().__init__()
        if slowdown_threshold <= 1.0:
            raise ConfigurationError(
                f"slowdown_threshold must be > 1, got {slowdown_threshold}")
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {min_samples}")
        self._base = base
        self._threshold = slowdown_threshold
        self._min_samples = min_samples

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self._base.name}+spec"

    # -- delegation -------------------------------------------------------

    def bind(self, sim) -> None:
        super().bind(sim)
        self._base.bind(sim)

    def select_job(self) -> Optional[str]:
        return self._base.select_job()

    def on_job_arrival(self, job) -> None:
        self._base.on_job_arrival(job)

    def on_task_launched(self, job, task) -> None:
        self._base.on_task_launched(job, task)

    def on_task_complete(self, job, task) -> None:
        self._base.on_task_complete(job, task)

    def on_task_failed(self, job, task) -> None:
        self._base.on_task_failed(job, task)

    def on_job_complete(self, job) -> None:
        self._base.on_job_complete(job)

    def on_job_cancelled(self, job) -> None:
        self._base.on_job_cancelled(job)

    @property
    def planner_seconds(self) -> float:
        return getattr(self._base, "planner_seconds", 0.0)

    # -- the speculation policy ---------------------------------------------

    def select_speculative(self) -> Optional[Tuple[str, str, int]]:
        now = self.sim.now
        best: Optional[Tuple[float, str, str, int]] = None
        for job in self.sim.active_jobs:
            samples = job.runtime_samples()
            if len(samples) < self._min_samples:
                continue
            typical = sum(samples) / len(samples)
            duplicate_duration = max(1, round(statistics.median(samples)))
            for task in job.running_attempts():
                if job.has_duplicate(task.logical_id):
                    continue  # already racing
                slowdown = task.executed / max(typical, 1e-9)
                if slowdown <= self._threshold:
                    continue
                if best is None or slowdown > best[0]:
                    best = (slowdown, job.job_id, task.logical_id,
                            duplicate_duration)
        if best is None:
            return None
        return best[1], best[2], best[3]
