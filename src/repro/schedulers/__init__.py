"""Pluggable scheduling policies for the cluster substrate."""

from repro.schedulers.base import Scheduler
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.rrh import RrhScheduler
from repro.schedulers.rush import RushScheduler
from repro.schedulers.speculative import SpeculativeScheduler

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "EdfScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "RrhScheduler",
    "RushScheduler",
    "SpeculativeScheduler",
]
