"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the scheduler can catch one type at the integration
boundary.  More specific subclasses exist for the situations a scheduler
host is expected to handle programmatically (infeasible plans, bad
configuration), mirroring how the paper's YARN integration surfaces
"impossible" jobs in its management interface instead of crashing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid.

    Raised for malformed utility parameters, negative capacities, bad
    percentile/entropy thresholds and similar input mistakes.  The message
    always names the offending parameter.
    """


class TraceFormatError(ConfigurationError):
    """A workload trace file violates its on-disk format.

    Raised by the SWF reader (:mod:`repro.workload.swf`) for truncated
    records, non-numeric fields, out-of-order submit times and unknown
    header directives.  Always carries the 1-based ``line`` number (and,
    when known, the ``path``) of the offending input, so ingestion
    failures point at the exact record — never a bare :class:`ValueError`
    from deep inside a float parse.
    """

    def __init__(self, message: str, *, line: "int | None" = None,
                 path: "str | None" = None) -> None:
        self.line = line
        self.path = path
        where = ""
        if path is not None:
            where += f"{path}:"
        if line is not None:
            where += f"line {line}: "
        elif where:
            where += " "
        super().__init__(where + message)


class DistributionError(ReproError):
    """A probability distribution is malformed or unusable.

    Examples: a PMF that does not sum to one, negative probabilities, or a
    KL divergence query against a reference with mismatched support.
    """


class InfeasiblePlanError(ReproError):
    """No feasible schedule exists for the requested constraints.

    The planner normally degrades gracefully (late jobs receive zero
    utility and are pushed out, exactly like the red rows in the paper's
    RUSH-YARN web interface).  This error is reserved for requests that are
    structurally impossible, e.g. zero cluster capacity with non-zero
    demand.
    """


class EstimationError(ReproError):
    """A distribution estimator cannot produce an estimate.

    Raised when an estimator is queried with no samples and no prior, or
    when the sample data is degenerate in a way the estimator cannot
    represent.
    """


class SimulationError(ReproError):
    """The cluster simulator reached an inconsistent state.

    This signals a bug or a misuse of the simulator API (e.g. launching a
    task on an occupied container), never a merely unlucky workload.
    """


class SimulationTimeoutError(SimulationError):
    """A bounded simulation ran out of slots with jobs still active.

    Raised by :meth:`repro.cluster.simulator.ClusterSimulator.run` when
    ``raise_on_timeout=True``; otherwise the partial result is returned
    with its ``timed_out`` flag set so callers can never mistake a
    truncated run for a completed one.
    """


class ServiceError(ReproError):
    """Base class for scheduler-service request failures.

    Every service error carries a stable machine-readable ``code`` and
    the HTTP ``status`` the daemon maps it to, so clients can branch on
    typed errors instead of scraping messages.  Anything the daemon
    raises on a request path derives from this class; reaching a bare
    500 therefore always indicates a bug, never a rejected request.
    """

    code = "service-error"
    status = 500


class BadRequestError(ServiceError):
    """A request is malformed: bad JSON, a missing or mistyped field.

    The message names the offending field or parse failure.
    """

    code = "bad-request"
    status = 400


class UnknownJobError(ServiceError):
    """A request referenced a job id the service has never seen."""

    code = "unknown-job"
    status = 404

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


class JobStateError(ServiceError):
    """The job exists but its state forbids the requested transition.

    Examples: cancelling an already-completed or already-cancelled job,
    resubmitting an id that is still live.
    """

    code = "job-state"
    status = 409


class TenantQuotaError(ServiceError):
    """A tenant's concurrent-job quota is exhausted.

    Submission is refused *now*; the client should back off and retry —
    the 429 mapping makes that contract explicit.
    """

    code = "quota-exceeded"
    status = 429


class SolverBudgetError(ReproError):
    """A planning round exhausted its wall-clock time budget.

    Raised cooperatively from inside the onion-peeling solver when the
    caller supplied a ``time_budget``.  The degradation ladder in
    :class:`repro.schedulers.rush.RushScheduler` catches it and falls
    back to a cheaper planning mode instead of stalling the cluster.
    """
