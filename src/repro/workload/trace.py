"""Trace files: JSON-lines serialization of workloads.

A generated workload can be frozen to disk and replayed later (or shared
between the benchmark harness and external tooling), which keeps
experiments reproducible independent of numpy's bit-generator evolution.
Each line is one job; utilities round-trip through the same configuration
mapping the job-submission interface uses.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

from repro.errors import ConfigurationError
from repro.cluster.job import JobSpec
from repro.utility.config import utility_from_config, utility_to_config

__all__ = ["spec_to_dict", "spec_from_dict", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def spec_to_dict(spec: JobSpec) -> Dict[str, object]:
    """Serialize one job spec to a JSON-compatible mapping."""
    return {
        "job_id": spec.job_id,
        "arrival": spec.arrival,
        "task_durations": list(spec.task_durations),
        "utility": utility_to_config(spec.utility),
        # canonical float so load→save round-trips byte-identically even
        # when the producer handed us an integral priority
        "priority": float(spec.priority),
        "budget": spec.budget if math.isfinite(spec.budget) else None,
        "benchmark_runtime": (spec.benchmark_runtime
                              if not math.isnan(spec.benchmark_runtime) else None),
        "sensitivity": spec.sensitivity,
        "template": spec.template,
        "prior_runtime": spec.prior_runtime,
        "failure_prob": spec.failure_prob,
    }


def spec_from_dict(data: Mapping[str, Any]) -> JobSpec:
    """Deserialize one job spec from its mapping form."""
    try:
        budget = data.get("budget")
        benchmark = data.get("benchmark_runtime")
        return JobSpec(
            job_id=data["job_id"],
            arrival=int(data["arrival"]),
            task_durations=tuple(int(d) for d in data["task_durations"]),
            utility=utility_from_config(data["utility"]),
            priority=float(data.get("priority", 1.0)),
            budget=float(budget) if budget is not None else math.inf,
            benchmark_runtime=(float(benchmark) if benchmark is not None
                               else math.nan),
            sensitivity=data.get("sensitivity", "sensitive"),
            template=data.get("template", ""),
            prior_runtime=(float(data["prior_runtime"])
                           if data.get("prior_runtime") is not None else None),
            failure_prob=float(data.get("failure_prob", 0.0)))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed trace record: {exc}") from None


def save_trace(specs: Iterable[JobSpec], path: Union[str, Path]) -> None:
    """Write a workload to a JSON-lines trace file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": "rush-trace", "version": _FORMAT_VERSION}))
        handle.write("\n")
        for spec in specs:
            handle.write(json.dumps(spec_to_dict(spec), sort_keys=True))
            handle.write("\n")


def load_trace(path: Union[str, Path]) -> List[JobSpec]:
    """Read a workload back from a JSON-lines trace file."""
    path = Path(path)
    specs: List[JobSpec] = []
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed trace header: {exc}") from None
        if header.get("format") != "rush-trace":
            raise ConfigurationError(
                f"not a rush trace file (header {header!r})")
        if header.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported trace version {header.get('version')!r}")
        for line in handle:
            line = line.strip()
            if not line:
                continue
            specs.append(spec_from_dict(json.loads(line)))
    return specs
