"""Workload generation following the protocol of Section V-B.

The paper's end-to-end experiments create 100 jobs from an equal mix of
eight templates, each with a dataset size drawn uniformly between 1 and
10 GB, submitted as a Poisson process with a mean inter-arrival time of
130 seconds.  Jobs split 20/60/20 into time-critical, time-sensitive and
time-insensitive classes; priorities ``W`` are uniform integers in 1..5;
the sigmoid utility class is used (a constant utility for the insensitive
class); and each job's time budget is a configurable multiple (2.0, 1.5,
1.0 in the paper) of its runtime benchmarked with the whole cluster.

A ``time_scale`` knob shrinks every duration proportionally (betas are
rescaled to match) so continuous-integration runs stay fast while the
paper-scale experiment is one parameter away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.cluster.job import JobSpec
from repro.utility.base import UtilityFunction
from repro.utility.constant import ConstantUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.workload.templates import PUMA_TEMPLATES, JobTemplate

__all__ = ["WorkloadConfig", "WorkloadGenerator", "generate_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one workload draw (paper defaults)."""

    n_jobs: int = 100
    capacity: int = 48
    mean_interarrival: float = 130.0
    budget_ratio: float = 2.0
    size_gb_range: Tuple[float, float] = (1.0, 10.0)
    sensitivity_mix: Tuple[float, float, float] = (0.2, 0.6, 0.2)
    priority_range: Tuple[int, int] = (1, 5)
    critical_beta: float = 0.5
    sensitive_beta: float = 0.02
    time_scale: float = 1.0
    failure_prob: float = 0.0
    #: "poisson" (the paper's process), "uniform" (fixed spacing with
    #: jitter) or "bursty" (a two-state modulated Poisson process that
    #: alternates calm stretches with arrival storms).
    arrival_process: str = "poisson"
    #: Burst intensity for the bursty process: the storm state arrives
    #: this many times faster than the calm state.
    burst_factor: float = 6.0
    templates: Tuple[JobTemplate, ...] = field(default=PUMA_TEMPLATES)

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if self.mean_interarrival < 0:
            raise ConfigurationError("mean_interarrival must be >= 0")
        if self.budget_ratio <= 0:
            raise ConfigurationError("budget_ratio must be positive")
        lo, hi = self.size_gb_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad size_gb_range {self.size_gb_range}")
        if abs(sum(self.sensitivity_mix) - 1.0) > 1e-9 or min(self.sensitivity_mix) < 0:
            raise ConfigurationError(
                f"sensitivity_mix must be a distribution, got {self.sensitivity_mix}")
        if not 0 < self.time_scale <= 10.0:
            raise ConfigurationError(f"time_scale must be in (0, 10], got {self.time_scale}")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ConfigurationError(
                f"failure_prob must be in [0, 1), got {self.failure_prob}")
        if self.arrival_process not in ("poisson", "uniform", "bursty"):
            raise ConfigurationError(
                f"unknown arrival_process {self.arrival_process!r}")
        if self.burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {self.burst_factor}")
        if not self.templates:
            raise ConfigurationError("at least one template is required")


class WorkloadGenerator:
    """Draws reproducible workloads from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig, seed: int = 0) -> None:
        self.config = config
        self._seed = seed

    def generate(self) -> List[JobSpec]:
        """Draw the full job list for this generator's seed."""
        cfg = self.config
        rng = np.random.default_rng(self._seed)
        specs: List[JobSpec] = []
        arrival = 0.0
        sensitivities = rng.choice(
            ["critical", "sensitive", "insensitive"],
            size=cfg.n_jobs, p=list(cfg.sensitivity_mix))
        burst_state = False
        for k in range(cfg.n_jobs):
            if k > 0 and cfg.mean_interarrival > 0:
                mean_gap = cfg.mean_interarrival * cfg.time_scale
                if cfg.arrival_process == "poisson":
                    arrival += rng.exponential(mean_gap)
                elif cfg.arrival_process == "uniform":
                    arrival += rng.uniform(0.5 * mean_gap, 1.5 * mean_gap)
                else:  # bursty: two-state modulated Poisson, same mean rate
                    if rng.random() < 0.25:
                        burst_state = not burst_state
                    # calm gaps are stretched and storm gaps compressed so
                    # the long-run mean inter-arrival stays mean_gap
                    calm_gap = mean_gap * 2.0 * cfg.burst_factor / (
                        cfg.burst_factor + 1.0)
                    storm_gap = calm_gap / cfg.burst_factor
                    arrival += rng.exponential(
                        storm_gap if burst_state else calm_gap)
            template = cfg.templates[int(rng.integers(len(cfg.templates)))]
            size_gb = float(rng.uniform(*cfg.size_gb_range))
            durations = self._scaled_tasks(template, size_gb, rng)
            benchmark = template.benchmark_runtime(durations, cfg.capacity)
            budget = cfg.budget_ratio * benchmark
            priority = int(rng.integers(cfg.priority_range[0],
                                        cfg.priority_range[1] + 1))
            sensitivity = str(sensitivities[k])
            utility = self._utility_for(sensitivity, budget, priority)
            specs.append(JobSpec(
                job_id=f"job-{k:04d}",
                arrival=int(round(arrival)),
                task_durations=tuple(durations),
                utility=utility,
                priority=priority,
                budget=budget,
                benchmark_runtime=float(benchmark),
                sensitivity=sensitivity,
                template=template.name,
                prior_runtime=template.mean_runtime * cfg.time_scale,
                failure_prob=cfg.failure_prob))
        return specs

    # -- internals ---------------------------------------------------------

    def _scaled_tasks(self, template: JobTemplate, size_gb: float,
                      rng: np.random.Generator) -> List[int]:
        raw = template.sample_tasks(size_gb, rng)
        # rushlint: disable=RL003 (exact-one config sentinel: only a
        # literal 1.0 may skip rescaling — golden traces depend on the
        # untouched integer durations)
        if self.config.time_scale == 1.0:
            return raw
        return [max(1, int(round(d * self.config.time_scale))) for d in raw]

    def _utility_for(self, sensitivity: str, budget: float,
                     priority: int) -> UtilityFunction:
        cfg = self.config
        if sensitivity == "insensitive":
            return ConstantUtility(priority=priority)
        beta = cfg.critical_beta if sensitivity == "critical" else cfg.sensitive_beta
        # Betas are calibrated for time_scale=1; steeper slopes compensate
        # for shrunken budgets so utility *shapes* are scale-invariant.
        return SigmoidUtility(budget=budget, priority=priority,
                              beta=beta / cfg.time_scale)


def generate_workload(config: WorkloadConfig | None = None,
                      seed: int = 0) -> List[JobSpec]:
    """One-call workload draw with paper defaults."""
    return WorkloadGenerator(config or WorkloadConfig(), seed=seed).generate()
