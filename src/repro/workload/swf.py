"""Standard Workload Format (SWF) ingestion.

The evaluation so far runs on synthetic Section V-B workloads; this
module opens the door to *real* traces.  SWF is the archive format of the
Parallel Workloads Archive: a header of ``;``-prefixed directives
(``; Version: 2.2``, ``; MaxProcs: 240``, ...) followed by one job per
line with exactly :data:`SWF_FIELD_COUNT` whitespace-separated numeric
fields, ``-1`` marking unknown values.

The parser here is deliberately *strict*: truncated records, non-numeric
fields, out-of-order submit times, unknown header directives and unknown
status codes all raise :class:`~repro.errors.TraceFormatError` carrying
the 1-based line number, so a corrupted archive fails loudly at ingestion
instead of silently skewing an experiment.  ``strict=False`` relaxes
exactly the two checks real archives most often violate (unknown
directives, submit-time monotonicity) without ever accepting a malformed
record.

:func:`swf_to_specs` then maps the parsed jobs onto the simulator's
:class:`~repro.cluster.job.JobSpec` machinery: a rigid job of ``p``
processors running ``t`` seconds becomes ``min(p, max_tasks)`` tasks
whose per-task slot durations preserve the job's total processor-seconds
of work.  The mapping table lives in ``docs/WORKLOADS.md``; every rule is
deterministic, so a trace maps to byte-identical specs on every run.
Ingestion feeds the :mod:`repro.obs` metrics registry (when enabled)
with ``rush_swf_*`` counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, TraceFormatError
from repro.cluster.job import JobSpec
from repro.obs import get_metrics
from repro.utility.base import UtilityFunction
from repro.utility.constant import ConstantUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.workload.templates import JobTemplate

__all__ = [
    "SWF_FIELD_COUNT",
    "FIELD_NAMES",
    "KNOWN_DIRECTIVES",
    "KNOWN_STATUSES",
    "SwfJob",
    "SwfTrace",
    "SwfMapConfig",
    "parse_swf",
    "parse_swf_lines",
    "parse_swf_text",
    "swf_to_specs",
    "load_swf_workload",
    "rebase_arrivals",
]

#: An SWF job record has exactly this many whitespace-separated fields.
SWF_FIELD_COUNT = 18

#: Header directives of the SWF version 2.x standard.  Anything else is a
#: format error in strict mode (typo'd directives silently changing the
#: trace's meaning is precisely the failure mode strictness exists for).
KNOWN_DIRECTIVES = frozenset({
    "Version", "Computer", "Installation", "Acknowledge", "Information",
    "Conversion", "MaxJobs", "MaxRecords", "Preemption", "UnixStartTime",
    "TimeZone", "TimeZoneString", "StartTime", "EndTime", "MaxNodes",
    "MaxProcs", "MaxRuntime", "MaxMemory", "AllowOveruse", "MaxQueues",
    "Queues", "Queue", "MaxPartitions", "Partitions", "Partition", "Note",
})

#: SWF status codes: 0 failed, 1 completed, 2/3/4 partial-execution
#: variants (checkpointed / swapped-out flavours), 5 cancelled.
KNOWN_STATUSES = frozenset({-1, 0, 1, 2, 3, 4, 5})
_CANCELLED = 5
_FAILED = 0

#: The 18 record fields, in order, as named by the SWF standard.
FIELD_NAMES: Tuple[str, ...] = (
    "job_number", "submit_time", "wait_time", "run_time",
    "allocated_procs", "avg_cpu_time", "used_memory",
    "requested_procs", "requested_time", "requested_memory",
    "status", "user_id", "group_id", "executable", "queue",
    "partition", "preceding_job", "think_time",
)

# Fields that must parse as integers (ids, counts, codes); the rest are
# seconds/kilobyte quantities real archives record fractionally.
_INT_FIELDS = frozenset({
    "job_number", "allocated_procs", "requested_procs", "status",
    "user_id", "group_id", "executable", "queue", "partition",
    "preceding_job",
})


@dataclass(frozen=True)
class SwfJob:
    """One parsed SWF record; ``-1`` sentinels are preserved verbatim.

    ``line`` is the 1-based source line, kept so downstream mapping
    errors can still point back into the archive.
    """

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory: float
    requested_procs: int
    requested_time: float
    requested_memory: float
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float
    line: int = 0

    @property
    def cancelled(self) -> bool:
        return self.status == _CANCELLED

    @property
    def failed(self) -> bool:
        return self.status == _FAILED

    @property
    def procs(self) -> int:
        """Best-known processor count: allocated, else requested."""
        if self.allocated_procs > 0:
            return self.allocated_procs
        return self.requested_procs


@dataclass(frozen=True)
class SwfTrace:
    """A parsed SWF archive: header directives plus the job records."""

    directives: Mapping[str, str]
    jobs: Tuple[SwfJob, ...]
    path: Optional[str] = None

    @property
    def version(self) -> Optional[str]:
        return self.directives.get("Version")

    @property
    def max_procs(self) -> Optional[int]:
        raw = self.directives.get("MaxProcs")
        return int(float(raw)) if raw is not None else None

    @property
    def unix_start_time(self) -> Optional[int]:
        raw = self.directives.get("UnixStartTime")
        return int(float(raw)) if raw is not None else None


def _parse_directive(stripped: str, strict: bool,
                     directives: Dict[str, str]) -> None:
    """Parse one ``;`` header/comment line into ``directives``.

    Raises :class:`TraceFormatError` *without* position info; the caller
    attaches the line number and path exactly once.
    """
    body = stripped.lstrip(";").strip()
    if not body:
        return  # blank comment/separator line
    key, sep, value = body.partition(":")
    key = key.strip()
    if not sep or " " in key:
        # Free-text comment.  The standard only blesses these as
        # continuations of a Note; strict mode refuses to guess.
        if strict:
            raise TraceFormatError(
                f"unparseable header comment {body[:40]!r} "
                "(expected '; Directive: value')")
        return
    if key not in KNOWN_DIRECTIVES:
        if strict:
            raise TraceFormatError(
                f"unknown header directive {key!r} "
                "(not in the SWF v2 standard)")
        return
    # Notes repeat; later occurrences of scalar directives win, which is
    # how archive fix-ups in the wild are layered.
    if key == "Note" and "Note" in directives:
        directives[key] = directives[key] + "\n" + value.strip()
    else:
        directives[key] = value.strip()


def _parse_record(stripped: str, lineno: int) -> SwfJob:
    """Parse one 18-field job record line (position-free errors)."""
    parts = stripped.split()
    if len(parts) != SWF_FIELD_COUNT:
        kind = "truncated" if len(parts) < SWF_FIELD_COUNT else "overlong"
        raise TraceFormatError(
            f"{kind} record: expected {SWF_FIELD_COUNT} fields, "
            f"got {len(parts)}")
    values: Dict[str, Union[int, float]] = {}
    for name, raw in zip(FIELD_NAMES, parts):
        try:
            number = float(raw)
        except ValueError:
            raise TraceFormatError(
                f"non-numeric {name} field {raw!r}") from None
        if not math.isfinite(number):
            raise TraceFormatError(f"non-finite {name} field {raw!r}")
        if name in _INT_FIELDS:
            if number != int(number):  # rushlint: disable=RL003 (exact integrality test on a parsed id/count field)
                raise TraceFormatError(
                    f"fractional {name} field {raw!r} (must be an integer)")
            values[name] = int(number)
        else:
            values[name] = number
    status = int(values["status"])
    if status not in KNOWN_STATUSES:
        raise TraceFormatError(
            f"unknown status code {status} (known: {sorted(KNOWN_STATUSES)})")
    if int(values["job_number"]) < 0:
        raise TraceFormatError(f"negative job_number {values['job_number']}")
    return SwfJob(line=lineno, **values)  # type: ignore[arg-type]


def parse_swf_lines(lines: Iterable[str], *, strict: bool = True,
                    path: Optional[str] = None) -> SwfTrace:
    """Parse SWF content given as an iterable of lines.

    Directive lines must precede all job records (the standard's layout);
    a stray comment between records is tolerated only when it is blank.
    """
    directives: Dict[str, str] = {}
    jobs: List[SwfJob] = []
    last_submit = -math.inf
    saw_record = False
    lineno = 0
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        if stripped.startswith(";"):
            if saw_record and strict and stripped.lstrip(";").strip():
                raise TraceFormatError(
                    "header directive after the first job record",
                    line=lineno, path=path)
            try:
                _parse_directive(stripped, strict, directives)
            except TraceFormatError as exc:
                raise TraceFormatError(exc.args[0], line=lineno,
                                       path=path) from None
            continue
        try:
            job = _parse_record(stripped, lineno)
        except TraceFormatError as exc:
            raise TraceFormatError(exc.args[0], line=lineno,
                                   path=path) from None
        if strict and job.submit_time < last_submit:
            raise TraceFormatError(
                f"out-of-order submit time {job.submit_time:g} "
                f"(previous record submitted at {last_submit:g})",
                line=lineno, path=path)
        last_submit = max(last_submit, job.submit_time)
        saw_record = True
        jobs.append(job)
    metrics = get_metrics()
    if metrics.active:
        metrics.counter(
            "rush_swf_lines_total",
            help="Lines consumed by the SWF parser").inc(lineno)
        metrics.counter(
            "rush_swf_records_total",
            help="Job records parsed from SWF archives").inc(len(jobs))
    return SwfTrace(directives=directives, jobs=tuple(jobs), path=path)


def parse_swf_text(text: str, *, strict: bool = True,
                   path: Optional[str] = None) -> SwfTrace:
    """Parse SWF content held in a string."""
    return parse_swf_lines(text.splitlines(), strict=strict, path=path)


def parse_swf(path: Union[str, Path], *, strict: bool = True,
              trace_root: Union[str, Path, None] = None) -> SwfTrace:
    """Parse an SWF archive from disk.

    The path stored on the trace — and embedded in every
    :class:`TraceFormatError` message — is rendered *relative to the
    trace root* (the file's parent directory by default), never as the
    absolute path handed in.  Error strings and trace metadata flow
    into scenario JSON artifacts whose digests must be byte-identical
    across checkouts; an absolute path would leak machine-specific
    prefixes into them.
    """
    file_path = Path(path)
    root = Path(trace_root) if trace_root is not None else file_path.parent
    try:
        display = str(file_path.relative_to(root))
    except ValueError:
        display = file_path.name
    with file_path.open("r", encoding="utf-8", errors="strict") as handle:
        return parse_swf_lines(handle, strict=strict, path=display)


# -- mapping onto JobSpec ---------------------------------------------------


@dataclass(frozen=True)
class SwfMapConfig:
    """Deterministic rules mapping SWF jobs onto :class:`JobSpec`.

    ``slot_seconds`` is the simulator-slot width; ``max_tasks`` caps the
    per-job task fan-out (a 4096-processor job becomes ``max_tasks``
    proportionally longer tasks, preserving total processor-seconds).
    Sensitivity classes are assigned by benchmark-runtime terciles of the
    kept jobs — short jobs are ``critical``, the middle band
    ``sensitive``, the longest tercile ``insensitive`` — mirroring the
    paper's 20/60/20 spirit on empirical data.  See ``docs/WORKLOADS.md``
    for the full field-by-field table.
    """

    capacity: int = 16
    slot_seconds: float = 60.0
    max_tasks: int = 16
    budget_ratio: float = 2.0
    critical_beta: float = 0.5
    sensitive_beta: float = 0.02
    #: "tercile" (default) or "uniform" (everything time-sensitive).
    classify: str = "tercile"
    include_failed: bool = True
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {self.capacity}")
        if self.slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be positive, got {self.slot_seconds}")
        if self.max_tasks < 1:
            raise ConfigurationError(f"max_tasks must be >= 1, got {self.max_tasks}")
        if self.budget_ratio <= 0:
            raise ConfigurationError("budget_ratio must be positive")
        if self.classify not in ("tercile", "uniform"):
            raise ConfigurationError(f"unknown classify rule {self.classify!r}")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ConfigurationError(f"max_jobs must be >= 1, got {self.max_jobs}")


_LPT_TEMPLATE = JobTemplate("swf-lpt-helper", tasks_per_gb=1.0,
                            mean_runtime=1.0, std_runtime=0.0)


def _task_durations(job: SwfJob, cfg: SwfMapConfig) -> Tuple[int, ...]:
    """Rigid SWF job -> task tuple preserving processor-seconds of work."""
    procs = max(job.procs, 1)
    n_tasks = min(procs, cfg.max_tasks)
    total_work_slots = (job.run_time * procs) / cfg.slot_seconds
    per_task = max(1, int(math.ceil(total_work_slots / n_tasks)))
    return tuple([per_task] * n_tasks)


def _template_label(job: SwfJob) -> str:
    """The job-class key empirical estimators fit per (see WORKLOADS.md)."""
    if job.executable > 0:
        return f"swf-app-{job.executable}"
    if job.queue > 0:
        return f"swf-queue-{job.queue}"
    return "swf-misc"


def _priority_for(job: SwfJob) -> int:
    """SWF carries no priority; derive one from the queue id (1..5)."""
    if job.queue > 0:
        return 1 + (job.queue - 1) % 5
    return 3


def _utility_for(sensitivity: str, budget: float, priority: int,
                 cfg: SwfMapConfig) -> UtilityFunction:
    if sensitivity == "insensitive":
        return ConstantUtility(priority=priority)
    beta = (cfg.critical_beta if sensitivity == "critical"
            else cfg.sensitive_beta)
    return SigmoidUtility(budget=budget, priority=priority, beta=beta)


def _skip_reason(job: SwfJob, cfg: SwfMapConfig) -> Optional[str]:
    if job.cancelled:
        return "cancelled"
    if job.failed and not cfg.include_failed:
        return "failed"
    if job.run_time <= 0:
        return "zero-runtime"
    if job.procs <= 0:
        return "zero-procs"
    return None


def swf_to_specs(trace: SwfTrace,
                 config: Optional[SwfMapConfig] = None) -> List[JobSpec]:
    """Map a parsed SWF trace onto simulator job specs.

    Cancelled jobs (status 5) and jobs with no recorded runtime or
    processor count never become specs — they are counted in the
    ``rush_swf_jobs_total{outcome=...}`` ingestion metric instead.
    Arrival slots are rebased so the first kept job arrives at slot 0.
    """
    cfg = config if config is not None else SwfMapConfig()
    kept: List[SwfJob] = []
    skipped: Dict[str, int] = {}
    for job in trace.jobs:
        reason = _skip_reason(job, cfg)
        if reason is None:
            kept.append(job)
        else:
            skipped[reason] = skipped.get(reason, 0) + 1
    if cfg.max_jobs is not None:
        kept = kept[:cfg.max_jobs]
    metrics = get_metrics()
    if metrics.active:
        outcomes = metrics.counter(
            "rush_swf_jobs_total",
            help="SWF jobs ingested or skipped, by outcome",
            labels=("outcome",))
        outcomes.labels("ingested").inc(len(kept))
        for reason in sorted(skipped):
            outcomes.labels(f"skipped-{reason}").inc(skipped[reason])
    if not kept:
        return []

    durations = [_task_durations(job, cfg) for job in kept]
    benchmarks = [
        float(_LPT_TEMPLATE.benchmark_runtime(list(tasks), cfg.capacity))
        for tasks in durations]
    sensitivities = _classify(kept, benchmarks, cfg)
    base_submit = kept[0].submit_time
    specs: List[JobSpec] = []
    for k, (job, tasks, benchmark) in enumerate(
            zip(kept, durations, benchmarks)):
        arrival = int((job.submit_time - base_submit) // cfg.slot_seconds)
        budget = cfg.budget_ratio * benchmark
        priority = _priority_for(job)
        sensitivity = sensitivities[k]
        # The user's own runtime estimate (requested_time) is the natural
        # per-task prior — the analogue of clients benchmarking offline.
        if job.requested_time > 0:
            prior = max(1.0, (job.requested_time * max(job.procs, 1))
                        / (len(tasks) * cfg.slot_seconds))
        else:
            prior = float(tasks[0])
        specs.append(JobSpec(
            job_id=f"swf-{job.job_number:06d}",
            arrival=arrival,
            task_durations=tasks,
            utility=_utility_for(sensitivity, budget, priority, cfg),
            priority=priority,
            budget=budget,
            benchmark_runtime=benchmark,
            sensitivity=sensitivity,
            template=_template_label(job),
            prior_runtime=prior,
            failure_prob=0.0))
    return specs


def _classify(jobs: Sequence[SwfJob], benchmarks: Sequence[float],
              cfg: SwfMapConfig) -> List[str]:
    """Assign sensitivity classes (see :class:`SwfMapConfig`)."""
    if cfg.classify == "uniform":
        return ["sensitive"] * len(jobs)
    ordered = sorted(benchmarks)
    lo = ordered[max(0, len(ordered) // 3 - 1)]
    hi = ordered[max(0, (2 * len(ordered)) // 3 - 1)]
    out: List[str] = []
    for benchmark in benchmarks:
        if benchmark <= lo:
            out.append("critical")
        elif benchmark <= hi:
            out.append("sensitive")
        else:
            out.append("insensitive")
    return out


def load_swf_workload(path: Union[str, Path], *,
                      config: Optional[SwfMapConfig] = None,
                      strict: bool = True,
                      trace_root: Union[str, Path, None] = None
                      ) -> List[JobSpec]:
    """One-call SWF ingestion: parse the archive and map it to specs."""
    return swf_to_specs(
        parse_swf(path, strict=strict, trace_root=trace_root),
        config=config)


def rebase_arrivals(specs: Sequence[JobSpec],
                    start_at: int = 0) -> List[JobSpec]:
    """Shift a spec list so its earliest arrival lands at ``start_at``.

    Used by scenario replay to turn a held-out trace *suffix* into a
    standalone workload (the simulator requires arrivals from slot 0).
    """
    if not specs:
        return []
    earliest = min(spec.arrival for spec in specs)
    offset = start_at - earliest
    if offset == 0:
        return list(specs)
    return [replace(spec, arrival=spec.arrival + offset) for spec in specs]
