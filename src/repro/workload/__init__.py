"""Workload generation: PUMA-like templates, Poisson arrivals, traces."""

from repro.workload.generator import WorkloadConfig, WorkloadGenerator, generate_workload
from repro.workload.templates import PUMA_TEMPLATES, JobTemplate, template_by_name
from repro.workload.trace import load_trace, save_trace, spec_from_dict, spec_to_dict

__all__ = [
    "JobTemplate",
    "PUMA_TEMPLATES",
    "template_by_name",
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_workload",
    "save_trace",
    "load_trace",
    "spec_to_dict",
    "spec_from_dict",
]
