"""Workload layer: PUMA-like templates, arrivals, traces, SWF, scenarios."""

from repro.workload.generator import WorkloadConfig, WorkloadGenerator, generate_workload
from repro.workload.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioOutcome,
    run_scenario,
    scenario_by_name,
)
from repro.workload.swf import (
    SwfJob,
    SwfMapConfig,
    SwfTrace,
    load_swf_workload,
    parse_swf,
    parse_swf_lines,
    parse_swf_text,
    rebase_arrivals,
    swf_to_specs,
)
from repro.workload.templates import PUMA_TEMPLATES, JobTemplate, template_by_name
from repro.workload.trace import load_trace, save_trace, spec_from_dict, spec_to_dict

__all__ = [
    "JobTemplate",
    "PUMA_TEMPLATES",
    "template_by_name",
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_workload",
    "save_trace",
    "load_trace",
    "spec_to_dict",
    "spec_from_dict",
    "SwfJob",
    "SwfTrace",
    "SwfMapConfig",
    "parse_swf",
    "parse_swf_lines",
    "parse_swf_text",
    "swf_to_specs",
    "load_swf_workload",
    "rebase_arrivals",
    "Scenario",
    "ScenarioOutcome",
    "SCENARIOS",
    "scenario_by_name",
    "run_scenario",
]
