"""PUMA-like job templates.

The paper builds its workload from "an equal mix of eight heterogeneous
Hadoop job templates (Movie Classification, Histogram of Movies, Histogram
of Ratings, InvertedIndex, SelfJoin, SequenceCount, WordCount and Terabyte
Data Sorting) with multiple real-world data sets from the PUMA benchmark
suite" (Section V-B).  We do not have PUMA or its data sets, so each
template is a synthetic stand-in parameterized by

* ``tasks_per_gb`` — how many map-side tasks a gigabyte of input spawns,
* a per-task runtime distribution (truncated normal, in slots), and
* a small number of ``reduce_tasks`` whose runtime scales with input size.

The scheduler only ever observes task runtimes, so these profiles exercise
exactly the code paths the real benchmarks would; the heterogeneity across
templates (CPU-bound short tasks vs shuffle-heavy long tasks) is what the
randomized-runtime protocol of Section V-B actually relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["JobTemplate", "PUMA_TEMPLATES", "template_by_name"]


@dataclass(frozen=True)
class JobTemplate:
    """A synthetic stand-in for one PUMA benchmark application.

    ``mean_runtime``/``std_runtime`` describe the map-task runtime in
    slots; reduce tasks run ``reduce_factor`` times longer and their
    runtime additionally grows with the dataset size (shuffle volume).
    """

    name: str
    tasks_per_gb: float
    mean_runtime: float
    std_runtime: float
    reduce_tasks: int = 1
    reduce_factor: float = 2.0
    min_tasks: int = 4
    straggler_prob: float = 0.06
    straggler_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.tasks_per_gb <= 0:
            raise ConfigurationError(f"{self.name}: tasks_per_gb must be positive")
        if self.mean_runtime <= 0 or self.std_runtime < 0:
            raise ConfigurationError(f"{self.name}: bad runtime distribution")
        if self.reduce_tasks < 0 or self.min_tasks < 1:
            raise ConfigurationError(f"{self.name}: bad task counts")
        if not 0.0 <= self.straggler_prob < 1.0 or self.straggler_factor < 1.0:
            raise ConfigurationError(f"{self.name}: bad straggler model")

    def sample_tasks(self, size_gb: float, rng: np.random.Generator) -> List[int]:
        """Draw ground-truth task durations for a job of ``size_gb`` input.

        Map-task runtimes are truncated-normal draws (at least one slot),
        with a small fraction of *stragglers* running several times longer
        — the slow-task phenomenon endemic to shared Hadoop clusters that
        motivates the paper's robustness (Section I cites slow I/O and
        memory-availability variation).  Reduce tasks come last, scaled by
        the shuffle volume.
        """
        if size_gb <= 0:
            raise ConfigurationError(f"dataset size must be positive, got {size_gb}")
        n_map = max(self.min_tasks, int(round(self.tasks_per_gb * size_gb)))
        durations = rng.normal(self.mean_runtime, self.std_runtime, size=n_map)
        if self.straggler_prob > 0.0:
            stragglers = rng.random(n_map) < self.straggler_prob
            durations[stragglers] *= self.straggler_factor
        tasks = [max(1, int(round(d))) for d in durations]
        shuffle_scale = 1.0 + 0.1 * size_gb
        for _ in range(self.reduce_tasks):
            d = rng.normal(self.mean_runtime * self.reduce_factor * shuffle_scale,
                           self.std_runtime)
            tasks.append(max(1, int(round(d))))
        return tasks

    def benchmark_runtime(self, task_durations: List[int], capacity: int) -> int:
        """Runtime of the job with the whole cluster to itself.

        The paper benchmarks each job "with all the resources available in
        the cluster"; with homogeneous containers that is the makespan of
        a longest-processing-time-first packing onto ``capacity`` machines.
        """
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        loads = [0] * min(capacity, len(task_durations))
        if not loads:
            return 0
        for d in sorted(task_durations, reverse=True):
            k = loads.index(min(loads))
            loads[k] += d
        return max(loads)


#: The eight-template mix of Section V-B.  Runtime profiles are synthetic
#: but heterogeneous in the way the underlying applications are: indexing
#: and joining are shuffle-heavy with high variance, histograms are short
#: and regular, terasort is long and wide.
PUMA_TEMPLATES: Tuple[JobTemplate, ...] = (
    JobTemplate("movie-classification", tasks_per_gb=6, mean_runtime=75,
                std_runtime=18, reduce_tasks=1, reduce_factor=1.8),
    JobTemplate("histogram-movies", tasks_per_gb=8, mean_runtime=45,
                std_runtime=10, reduce_tasks=1, reduce_factor=1.5),
    JobTemplate("histogram-ratings", tasks_per_gb=8, mean_runtime=40,
                std_runtime=9, reduce_tasks=1, reduce_factor=1.5),
    JobTemplate("inverted-index", tasks_per_gb=10, mean_runtime=55,
                std_runtime=16, reduce_tasks=2, reduce_factor=2.2),
    JobTemplate("self-join", tasks_per_gb=12, mean_runtime=65,
                std_runtime=22, reduce_tasks=2, reduce_factor=2.5),
    JobTemplate("sequence-count", tasks_per_gb=10, mean_runtime=60,
                std_runtime=15, reduce_tasks=1, reduce_factor=2.0),
    JobTemplate("word-count", tasks_per_gb=9, mean_runtime=50,
                std_runtime=12, reduce_tasks=1, reduce_factor=1.8),
    JobTemplate("terasort", tasks_per_gb=14, mean_runtime=80,
                std_runtime=25, reduce_tasks=3, reduce_factor=2.0),
)

_BY_NAME: Dict[str, JobTemplate] = {t.name: t for t in PUMA_TEMPLATES}


def template_by_name(name: str) -> JobTemplate:
    """Look up one of the eight shipped templates by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown template {name!r}; known: {known}") from None
