"""The scenario library: frozen, seeded workload studies (`rush scenarios`).

Each scenario is a *frozen configuration* — name, workload recipe,
capacity, warm-up split — that deterministically expands into a concrete
workload and drives a differential benchmark of RUSH against the
baseline policies.  Three ship (ROADMAP item 2):

``hpc-replay``
    Replay of the bundled anonymized SWF excerpt
    (``repro/workload/data/hpc_excerpt.swf``): real-trace-shaped rigid
    jobs, per-application duration distributions, -1 fields, failed and
    cancelled records.
``web-bursty``
    A bursty web-service tenant: the two-state modulated-Poisson
    (MMPP) arrival process with storms eight times denser than calm
    stretches, short jobs, critical-heavy sensitivity mix.
``mixed-tenancy``
    A batch tenant (long, insensitive-heavy, Poisson arrivals) sharing
    the cluster with a bursty service tenant (short, critical-heavy) —
    the shared-cloud contention story of the paper's introduction.

Every scenario follows the same protocol: sort the workload by arrival,
fit :class:`~repro.estimation.empirical.TraceFittedEstimators` on the
warm-up prefix, replay the held-out suffix under each policy (RUSH runs
with the fitted per-class estimators; baselines are estimator-free), and
score RUSH's completion promises with the calibration ledger.  Two runs
with the same (name, seed, variant) produce byte-identical outcomes —
:meth:`ScenarioOutcome.digest` is the test hook for that.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.calibration import CalibrationReport, calibration_report
from repro.errors import ConfigurationError
from repro.cluster.job import JobSpec
from repro.cluster.metrics import SimulationResult
from repro.cluster.simulator import run_simulation
from repro.estimation.empirical import TraceFittedEstimators, split_warmup
from repro.obs.ledger import NULL_LEDGER, CompletionLedger
from repro.obs.metrics import MetricsRegistry
from repro.schedulers import (
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
)
from repro.schedulers.base import Scheduler
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.swf import SwfMapConfig, load_swf_workload, rebase_arrivals

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "SCENARIOS",
    "DEFAULT_BASELINES",
    "KNOWN_BASELINES",
    "scenario_by_name",
    "bundled_swf_path",
    "build_scenario_workload",
    "run_scenario",
]

#: Baseline policies every scenario differential includes (greedy EDF is
#: the paper's headline comparison; FIFO anchors the no-intelligence
#: floor).  RUSH itself is always run.
DEFAULT_BASELINES: Tuple[str, ...] = ("edf", "fifo")

_BASELINE_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "edf": EdfScheduler,
    "fifo": FifoScheduler,
    "fair": FairScheduler,
    "rrh": RrhScheduler,
}

#: Baseline names `rush scenarios run --baselines` accepts.
KNOWN_BASELINES: Tuple[str, ...] = tuple(sorted(_BASELINE_FACTORIES))


def bundled_swf_path() -> Path:
    """Path of the bundled anonymized SWF excerpt fixture."""
    return Path(__file__).parent / "data" / "hpc_excerpt.swf"


@dataclass(frozen=True)
class Scenario:
    """One frozen scenario configuration.

    ``fast`` and ``full`` workload knobs are both pinned here so the CI
    smoke variant and the paper-scale variant are the *same* scenario at
    two sizes, not two ad-hoc configs.
    """

    name: str
    description: str
    capacity_fast: int
    capacity_full: int
    warmup_fraction: float = 0.4
    theta: float = 0.9
    delta: float = 0.7
    #: Per-class sample cap handed to TraceFittedEstimators.fit — part of
    #: the frozen config because the thinning granularity affects the
    #: promise sharpness the calibration gate scores.
    fit_seed_samples: int = 128
    max_slots: int = 200_000
    #: "swf" scenarios replay the bundled excerpt; "synthetic" ones draw
    #: from the Section V-B generator with the frozen configs below.
    kind: str = "synthetic"
    swf_fast: Optional[SwfMapConfig] = None
    swf_full: Optional[SwfMapConfig] = None
    synth_fast: Tuple[WorkloadConfig, ...] = ()
    synth_full: Tuple[WorkloadConfig, ...] = ()
    #: Job-id prefixes per synthetic tenant (parallel to the configs).
    tenant_prefixes: Tuple[str, ...] = ()

    def capacity(self, fast: bool) -> int:
        return self.capacity_fast if fast else self.capacity_full


def _service_config(n_jobs: int, capacity: int) -> WorkloadConfig:
    """Short, bursty, critical-heavy web-service jobs."""
    return WorkloadConfig(
        n_jobs=n_jobs, capacity=capacity, mean_interarrival=60.0,
        budget_ratio=2.0, size_gb_range=(0.5, 1.5),
        sensitivity_mix=(0.5, 0.4, 0.1), time_scale=0.25,
        arrival_process="bursty", burst_factor=8.0)


def _batch_config(n_jobs: int, capacity: int) -> WorkloadConfig:
    """Long, insensitive-heavy batch jobs on Poisson arrivals."""
    return WorkloadConfig(
        n_jobs=n_jobs, capacity=capacity, mean_interarrival=300.0,
        budget_ratio=2.5, size_gb_range=(2.0, 6.0),
        sensitivity_mix=(0.1, 0.4, 0.5), time_scale=0.25,
        arrival_process="poisson")


SCENARIOS: Dict[str, Scenario] = {
    "hpc-replay": Scenario(
        name="hpc-replay",
        description="HPC batch replay of the bundled anonymized SWF "
                    "excerpt (rigid jobs, per-application runtimes)",
        kind="swf",
        capacity_fast=8, capacity_full=16,
        swf_fast=SwfMapConfig(capacity=8, slot_seconds=450.0, max_tasks=6,
                              max_jobs=50),
        swf_full=SwfMapConfig(capacity=16, slot_seconds=300.0, max_tasks=8),
    ),
    "web-bursty": Scenario(
        name="web-bursty",
        description="bursty MMPP web-service tenant: arrival storms, "
                    "short critical-heavy jobs",
        capacity_fast=6, capacity_full=12,
        synth_fast=(_service_config(50, 6),),
        synth_full=(_service_config(200, 12),),
        tenant_prefixes=("svc",),
    ),
    "mixed-tenancy": Scenario(
        name="mixed-tenancy",
        description="batch tenant (long, Poisson) sharing the cluster "
                    "with a bursty service tenant (short, critical)",
        capacity_fast=8, capacity_full=16,
        synth_fast=(_batch_config(20, 8), _service_config(30, 8)),
        synth_full=(_batch_config(80, 16), _service_config(120, 16)),
        tenant_prefixes=("batch", "svc"),
        fit_seed_samples=64,
    ),
}


def scenario_by_name(name: str) -> Scenario:
    """Look up a shipped scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}") from None


def build_scenario_workload(scenario: Scenario, *, seed: int = 0,
                            fast: bool = True) -> List[JobSpec]:
    """Expand a scenario into its concrete, arrival-sorted workload."""
    if scenario.kind == "swf":
        cfg = scenario.swf_fast if fast else scenario.swf_full
        specs = load_swf_workload(bundled_swf_path(), config=cfg)
    else:
        configs = scenario.synth_fast if fast else scenario.synth_full
        specs = []
        for k, config in enumerate(configs):
            prefix = (scenario.tenant_prefixes[k]
                      if k < len(scenario.tenant_prefixes) else f"t{k}")
            # Distinct, deterministic per-tenant seed streams.
            tenant_seed = seed + 7919 * k
            for spec in WorkloadGenerator(config, seed=tenant_seed).generate():
                specs.append(replace(spec, job_id=f"{prefix}-{spec.job_id}"))
    return sorted(specs, key=lambda s: (s.arrival, s.job_id))


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    ``results`` maps policy name (``"rush"``, ``"edf"``, ...) to its
    :class:`SimulationResult` over the held-out suffix; ``calibration``
    scores the RUSH run's completion promises; ``fit_summary`` is the
    per-class sample-count/mean/std of the fitted estimators.
    """

    scenario: Scenario
    seed: int
    fast: bool
    warmup_jobs: int
    holdout_jobs: int
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    calibration: Optional[CalibrationReport] = None
    fit_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ingestion_metrics: Dict[str, object] = field(default_factory=dict)

    def mean_utility(self, policy: str) -> float:
        result = self.results[policy]
        if not result.records:
            return 0.0
        return result.total_utility() / len(result.records)

    def utility_margins(self) -> Dict[str, float]:
        """RUSH's mean-utility lead over each baseline (positive = ahead)."""
        rush = self.mean_utility("rush")
        return {policy: rush - self.mean_utility(policy)
                for policy in self.results if policy != "rush"}

    def _canonical(self) -> Dict[str, object]:
        """Digest-stable dump: wall-clock fields are stripped."""
        results = {}
        for policy in sorted(self.results):
            dump = self.results[policy].to_dict()
            dump.pop("planner_seconds", None)  # wall clock, not semantics
            dump.pop("metrics", None)
            results[policy] = dump
        return {
            "scenario": self.scenario.name,
            "seed": self.seed,
            "variant": "fast" if self.fast else "full",
            "warmup_jobs": self.warmup_jobs,
            "holdout_jobs": self.holdout_jobs,
            "fit_summary": self.fit_summary,
            "calibration": (self.calibration.to_dict()
                            if self.calibration is not None else None),
            "results": results,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical outcome (determinism test hook)."""
        blob = json.dumps(_scrub(self._canonical()), sort_keys=True,
                          allow_nan=False)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON artifact: canonical outcome + digest + derived margins."""
        out = _scrub(self._canonical())
        assert isinstance(out, dict)
        out["digest"] = self.digest()
        out["utility_margins"] = self.utility_margins()
        out["mean_utilities"] = {policy: self.mean_utility(policy)
                                 for policy in sorted(self.results)}
        out["ingestion_metrics"] = _scrub(self.ingestion_metrics)
        return out


def _scrub(value: object) -> object:
    """Replace non-finite floats with None so dumps are strict-JSON.

    Unfinished jobs carry ``latency = nan`` in their records; a digest
    must not depend on the host's ``repr(nan)`` behaviour.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _scrub(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(item) for item in value]
    return value


def _rush_factory(scenario: Scenario,
                  fitted: TraceFittedEstimators) -> Callable[[], Scheduler]:
    def factory() -> Scheduler:
        return RushScheduler(theta=scenario.theta, delta=scenario.delta,
                             spec_estimator_factory=fitted.estimator_for)
    return factory


def run_scenario(name: str, *, seed: int = 0, fast: bool = True,
                 baselines: Sequence[str] = DEFAULT_BASELINES,
                 max_slots: Optional[int] = None) -> ScenarioOutcome:
    """Run one scenario end-to-end: build, fit, replay, score.

    The run is self-contained observability-wise: it installs its own
    metrics registry (capturing the ``rush_swf_*`` ingestion counters)
    and a fresh completion ledger per policy, then restores whatever
    instruments were active before.
    """
    scenario = scenario_by_name(name)
    for baseline in baselines:
        if baseline not in _BASELINE_FACTORIES:
            known = ", ".join(sorted(_BASELINE_FACTORIES))
            raise ConfigurationError(
                f"unknown baseline policy {baseline!r}; known: {known}")
    previous = obs.install()  # snapshot of the active instruments
    metrics = MetricsRegistry()
    try:
        obs.install(metrics=metrics, ledger=NULL_LEDGER)
        specs = build_scenario_workload(scenario, seed=seed, fast=fast)
        warmup, holdout = split_warmup(specs, scenario.warmup_fraction)
        fitted = TraceFittedEstimators.fit(
            warmup, max_seed_samples=scenario.fit_seed_samples)
        replay = rebase_arrivals(holdout)
        outcome = ScenarioOutcome(
            scenario=scenario, seed=seed, fast=fast,
            warmup_jobs=len(warmup), holdout_jobs=len(replay),
            fit_summary=fitted.summary())
        capacity = scenario.capacity(fast)
        slots = max_slots if max_slots is not None else scenario.max_slots
        policies: Dict[str, Callable[[], Scheduler]] = {
            "rush": _rush_factory(scenario, fitted)}
        for baseline in baselines:
            policies[baseline] = _BASELINE_FACTORIES[baseline]
        for policy_name in sorted(policies):
            ledger = CompletionLedger()
            obs.install(ledger=ledger)
            result = run_simulation(replay, capacity,
                                    policies[policy_name](),
                                    seed=seed, max_slots=slots)
            obs.install(ledger=NULL_LEDGER)
            outcome.results[policy_name] = result
            if policy_name == "rush":
                outcome.calibration = calibration_report(ledger)
        outcome.ingestion_metrics = {
            key: value for key, value in metrics.snapshot().items()
            if key.startswith("rush_swf_")}
        return outcome
    finally:
        obs.install(tracer=previous.tracer, metrics=previous.metrics,
                    ledger=previous.ledger)
