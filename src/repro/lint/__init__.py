"""rushlint: domain-aware static analysis for the RUSH scheduler core.

The paper's guarantees hold only while the implementation preserves
invariants the type system cannot see — seeded-RNG stream discipline,
exact-float determinism, immutable shared PMFs, and the degradation
ladder's no-silent-swallow rule.  This package checks them mechanically:

>>> from repro.lint import lint_paths, render_text
>>> findings = lint_paths(["src/repro"])   # doctest: +SKIP

or from the CLI: ``rush lint src/repro`` (exit 0 = clean).  The rule
catalog with per-rule rationale lives in ``docs/LINTING.md``; importing
:mod:`repro.lint.rules` (done here) populates the registry.
"""

from repro.lint.config import LintConfig
from repro.lint.framework import (Finding, Rule, RULE_REGISTRY,
                                  lint_file, lint_paths, lint_source,
                                  register_rule)
from repro.lint import rules as _rules  # noqa: F401  (registers RL001-RL010)
from repro.lint.flow import (  # registers RL011-RL014
    FlowRule, ProjectContext, build_index, lint_project)
from repro.lint.reporters import (JSON_SCHEMA_VERSION, render_json,
                                  render_rule_catalog, render_text)

__all__ = [
    "LintConfig",
    "Finding",
    "Rule",
    "FlowRule",
    "ProjectContext",
    "RULE_REGISTRY",
    "register_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_project",
    "build_index",
    "render_text",
    "render_json",
    "render_rule_catalog",
    "JSON_SCHEMA_VERSION",
]
