"""The rushlint analysis framework: findings, rules, suppressions, engine.

RUSH's correctness theorems survive only as long as a handful of
implementation invariants the Python type system cannot see: seeded-RNG
stream discipline (the fault injectors' monotone-coupling contract),
exact-float determinism (the incremental planner's bit-identical
cold/warm equivalence), immutability of shared PMF arrays, and the
degradation ladder's no-silent-swallow rule for solver failures.  This
module supplies the machinery to check such invariants mechanically:

* :class:`Finding` — one diagnostic, pinned to ``path:line:col``;
* :class:`Rule` — the rule interface, registered via
  :func:`register_rule` into :data:`RULE_REGISTRY`;
* :class:`FileContext` — the parsed file a rule inspects (AST, source
  lines, package classification, suppression index);
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` — the
  engine, applying every enabled rule and filtering suppressed findings.

Suppressions use the comment grammar::

    x = a == b  # rushlint: disable=RL003 (exact sentinel comparison)
    # rushlint: disable=RL003 (justification, may continue
    # over further comment lines)
    y = c == d
    # rushlint: disable-file=RL001

``disable=`` silences the listed rules (comma-separated, or ``all``) on
its own line; written as a *standalone* comment it applies to the next
non-comment line, so long justifications can precede the code they
excuse.  ``disable-file=`` anywhere in the file silences rules for the
whole file.  The parenthesized justification is free-form but expected
by review policy (see ``docs/LINTING.md``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.lint.config import LintConfig

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "RULE_REGISTRY",
    "register_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

#: Rule id used for files that fail to parse; not a registered rule.
SYNTAX_ERROR_ID = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*rushlint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:\(|$)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule.

    Ordering is ``(path, line, col, rule_id)`` so reporter output is
    deterministic regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: ID message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule_id, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class FileContext:
    """Everything a rule may inspect about one file.

    Attributes
    ----------
    path:
        The path findings are reported under (as given by the caller).
    tree:
        The parsed :class:`ast.Module`.
    lines:
        Source split into lines (1-indexed access via ``line(n)``).
    package:
        The file's ``repro`` sub-package (``"core"``, ``"faults"``, ...)
        or ``""`` when the path does not sit under a recognized package.
    config:
        The active :class:`~repro.lint.config.LintConfig`.
    """

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.lines = source.splitlines()
        self.package = config.package_of(path)
        self.is_deterministic = config.is_deterministic(path)
        self.is_benchmark = config.is_benchmark(path)
        self.is_test = config.is_test(path)
        self.line_suppressions, self.file_suppressions = (
            _parse_suppressions(source))

    def line(self, lineno: int) -> str:
        """1-indexed source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` is silenced at ``lineno``."""
        for ids in (self.file_suppressions,
                    self.line_suppressions.get(lineno, frozenset())):
            if "all" in ids or rule_id in ids:
                return True
        return False


class Rule(ABC):
    """One domain invariant checked over a file's AST.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings through :meth:`finding` so position bookkeeping
    stays uniform.  Registration (via :func:`register_rule`) makes the
    rule discoverable by id in CLI ``--select`` / ``--ignore`` filters
    and in suppression comments.
    """

    #: Stable identifier, ``RLnnn``.
    rule_id: str = ""
    #: Short human name shown by ``rush lint --list-rules``.
    name: str = ""
    #: Which paper-level invariant the rule protects (one sentence).
    rationale: str = ""

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation found in ``ctx``."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` at ``node``'s position."""
        return Finding(path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=self.rule_id, message=message)


#: All registered rules, keyed by ``rule_id``.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.rule_id or not re.fullmatch(r"RL\d{3}", cls.rule_id):
        raise ValueError(f"rule {cls.__name__} needs an RLnnn rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def _parse_suppressions(source: str):
    """Extract the suppression index from a file's comments.

    Returns ``(line_suppressions, file_suppressions)`` where the former
    maps line numbers to frozensets of rule ids (or ``{"all"}``).  Uses
    the tokenizer, not regex-over-lines, so a ``# rushlint:`` sequence
    inside a string literal is never misread as a directive.  A trailing
    directive suppresses its own line; a standalone comment directive
    suppresses the next line that is neither blank nor a comment.
    """
    per_line: Dict[int, frozenset] = {}
    whole_file: set = set()
    lines = source.splitlines()

    def target_line(directive_line: int, standalone: bool) -> int:
        if not standalone:
            return directive_line
        depth = 0
        for lineno in range(directive_line + 1, len(lines) + 1):
            stripped = lines[lineno - 1].strip()
            if not stripped or stripped.startswith("#"):
                continue
            # Decorator lines are skipped: a FunctionDef/ClassDef finding
            # reports at the `def`/`class` line (PEP 3.8+ lineno
            # semantics), so a directive above `@decorator` must land on
            # the def itself.  Bracket depth carries multi-line decorator
            # argument lists.
            if depth == 0 and not stripped.startswith("@"):
                return lineno
            depth += (stripped.count("(") + stripped.count("[")
                      - stripped.count(")") - stripped.count("]"))
            depth = max(depth, 0)
        return directive_line

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            ids = frozenset(
                part.strip() for part in match.group("rules").split(",")
                if part.strip())
            if match.group(1) == "disable-file":
                whole_file |= ids
            else:
                start_line, start_col = tok.start
                standalone = not lines[start_line - 1][:start_col].strip()
                lineno = target_line(start_line, standalone)
                per_line[lineno] = per_line.get(lineno, frozenset()) | ids
    except tokenize.TokenError:  # pragma: no cover - syntax errors handled later
        pass
    return per_line, frozenset(whole_file)


def _active_rules(config: LintConfig) -> List[Rule]:
    rules: List[Rule] = []
    for rule_id in sorted(RULE_REGISTRY):
        if config.enabled(rule_id):
            rules.append(RULE_REGISTRY[rule_id]())
    return rules


def lint_source(source: str, path: str = "<string>",
                config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one source string; the core entry point the others wrap."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1, rule_id=SYNTAX_ERROR_ID,
                        message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree, config)
    findings: List[Finding] = []
    for rule in _active_rules(config):
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    return sorted(findings)


def lint_file(path: str, config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, config=config)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                yield key


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint files and directory trees; directories are walked recursively."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config=config))
    return sorted(findings)
