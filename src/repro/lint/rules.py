"""The rushlint domain rules, RL001–RL010 and RL015.

Each rule mechanizes one invariant that RUSH's guarantees (Theorems 1–3
of the paper) lean on but the type system cannot express.  The catalog
with the full rationale per rule lives in ``docs/LINTING.md``; the
docstring of each class here states the check and its heuristic limits.

All checks are purely syntactic (AST walks over one file at a time): no
imports are executed and no cross-file inference happens, so a rule can
be wrong in both directions.  False positives are silenced with a
``# rushlint: disable=RLnnn (reason)`` comment; false negatives are
backstopped by the property-test suites.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.lint.framework import FileContext, Finding, Rule, register_rule

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "DecisionStreamRule",
    "FrozenMutationRule",
    "SolverExceptionRule",
    "PublicAnnotationRule",
    "BenchmarkDeterminismRule",
    "ObsClockFreeRule",
    "SeededPoolInitializerRule",
    "DurableWriteDisciplineRule",
]

#: ``numpy.random`` attributes that construct *seedable* generators and
#: are therefore allowed even in deterministic packages.
_SEEDABLE_NUMPY = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: ``time`` module functions that read the wall clock (banned) versus
#: the monotonic/CPU clocks used for solver budgets (allowed).
_WALL_CLOCK_TIME = frozenset({
    "time", "time_ns", "localtime", "gmtime", "ctime", "strftime",
    "asctime",
})


class _ImportMap:
    """Where the interesting modules are bound in one file's namespace."""

    def __init__(self, tree: ast.Module) -> None:
        self.random_modules: Set[str] = set()
        self.random_names: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.default_rng_names: Set[str] = set()
        self.time_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(bound)
                    elif alias.name == "numpy.random":
                        self.numpy_random_modules.add(
                            alias.asname or "numpy")
                        if alias.asname is None:
                            self.numpy_modules.add("numpy")
                    elif alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        self.random_names.add(alias.asname or alias.name)
                elif node.module == "numpy.random":
                    for alias in node.names:
                        name = alias.asname or alias.name
                        if alias.name in _SEEDABLE_NUMPY:
                            self.default_rng_names.add(name)
                        else:
                            self.random_names.add(name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(
                                alias.asname or alias.name)
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME:
                            self.time_names.add(alias.asname or alias.name)

    def numpy_random_attr(self, func: ast.expr) -> Optional[str]:
        """``X`` when ``func`` is ``<numpy>.random.X`` or ``<np.random>.X``."""
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.numpy_modules):
            return func.attr
        if (isinstance(value, ast.Name)
                and value.id in self.numpy_random_modules):
            return func.attr
        return None

    def stdlib_random_call(self, func: ast.expr) -> Optional[str]:
        """``X`` when ``func`` is stdlib ``random.X`` or a from-import."""
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.random_modules):
            return func.attr
        if isinstance(func, ast.Name) and func.id in self.random_names:
            return func.id
        return None


def _call_name(func: ast.expr) -> Optional[str]:
    """Terminal identifier of a call target (``a.b.plan`` -> ``plan``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


@register_rule
class UnseededRandomRule(Rule):
    """RL001 — no module-level RNG in deterministic packages.

    Flags calls through the stdlib ``random`` module and through the
    legacy ``numpy.random.*`` module-level API inside ``core``,
    ``cluster``, ``faults`` and ``workload``.  Those draw from hidden
    global state, so two runs with the same inputs and seeds diverge —
    breaking the simulator's replayability and the fault subsystem's
    monotone intensity coupling.  Seedable constructors
    (``default_rng``, ``Generator``, ``SeedSequence``, bit generators)
    are always allowed.
    """

    rule_id = "RL001"
    name = "unseeded-random"
    rationale = ("deterministic packages must draw all randomness from "
                 "seeded, explicitly-passed Generator streams")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_deterministic:
            return
        imports = _ImportMap(ctx.tree)
        for call in _walk_calls(ctx.tree):
            std = imports.stdlib_random_call(call.func)
            if std is not None:
                yield self.finding(
                    ctx, call,
                    f"call to stdlib random.{std}() uses hidden global "
                    "state; draw from a seeded np.random.Generator "
                    "passed in explicitly")
                continue
            np_attr = imports.numpy_random_attr(call.func)
            if np_attr is not None and np_attr not in _SEEDABLE_NUMPY:
                yield self.finding(
                    ctx, call,
                    f"np.random.{np_attr}() uses the legacy global "
                    "RandomState; use a seeded np.random.Generator")


@register_rule
class WallClockRule(Rule):
    """RL002 — no wall-clock reads in deterministic packages.

    ``time.time``/``datetime.now`` make plans a function of *when* they
    were computed, which breaks replay, golden traces and the
    cold-vs-incremental bit-identity property.  The monotonic clocks
    (``perf_counter``, ``monotonic``, ``process_time``) are allowed:
    they only feed cooperative solver budgets, never decisions encoded
    in a plan.
    """

    rule_id = "RL002"
    name = "wall-clock"
    rationale = ("deterministic paths must not read calendar time; "
                 "solver budgets use monotonic clocks only")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_deterministic:
            return
        yield from _wall_clock_findings(self, ctx)


def _wall_clock_findings(rule: Rule, ctx: FileContext) -> Iterator[Finding]:
    """Shared wall-clock detection for RL002 and RL008."""
    imports = _ImportMap(ctx.tree)
    for call in _walk_calls(ctx.tree):
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in imports.time_modules
                and func.attr in _WALL_CLOCK_TIME):
            yield rule.finding(
                ctx, call,
                f"time.{func.attr}() reads the wall clock; use slot "
                "counters (or a monotonic clock for budgets)")
        elif isinstance(func, ast.Name) and func.id in imports.time_names:
            yield rule.finding(
                ctx, call,
                f"{func.id}() reads the wall clock; use slot counters")
        elif isinstance(func, ast.Attribute) and func.attr in (
                "now", "utcnow", "today", "fromtimestamp"):
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None)
            if base_name in imports.datetime_classes or (
                    base_name in ("datetime", "date")
                    and imports.datetime_modules):
                yield rule.finding(
                    ctx, call,
                    f"datetime {func.attr}() reads the wall clock; "
                    "deterministic paths must take time as an input")


@register_rule
class FloatEqualityRule(Rule):
    """RL003 — no ``==``/``!=`` on float-typed utility/PMF expressions.

    Utilities, KL divergences and demands are floats produced by chains
    of arithmetic; exact comparison silently depends on rounding and on
    evaluation order, which the incremental planner's bit-identity
    contract makes load-bearing.  The check is heuristic: a comparison
    is flagged when either side is a float literal, a call whose name is
    a known float-returning accessor, or an attribute from the known
    float-field list.  Intentional exact sentinel comparisons (for
    example ``theta == 0.0`` on a value passed through unchanged) get a
    ``# rushlint: disable=RL003 (...)`` justification instead.
    """

    rule_id = "RL003"
    name = "float-equality"
    rationale = ("exact float comparison hides rounding dependence; use "
                 "math.isclose or document exact-sentinel semantics")

    def _is_floaty(self, node: ast.expr, ctx: FileContext) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            return name in ctx.config.float_call_names
        if isinstance(node, ast.Attribute):
            return node.attr in ctx.config.float_attr_names
        if isinstance(node, ast.Name):
            return node.id in ctx.config.float_attr_names
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand, ctx)
        return False

    def _asserted_compares(self, ctx: FileContext) -> FrozenSet[int]:
        """ids of Compare nodes appearing inside ``assert`` statements."""
        inside: set = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Compare):
                        inside.add(id(sub))
        return frozenset(inside)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # In tests and benchmarks, exact equality inside an ``assert`` is
        # the point: the determinism gates promise *bit-identical* floats
        # (golden traces, cold/warm planner equivalence), and isclose
        # would weaken exactly what they verify.  Comparisons outside
        # asserts (branch conditions, sentinels) are still flagged.
        exempt: FrozenSet[int] = frozenset()
        if ctx.is_test or ctx.is_benchmark:
            exempt = self._asserted_compares(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if id(node) in exempt:
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._is_floaty(left, ctx) or self._is_floaty(right, ctx):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"float {symbol} comparison; use math.isclose or "
                        "suppress with an exact-equality justification")


@register_rule
class DecisionStreamRule(Rule):
    """RL004 — fault injectors keep the decision stream unconditional.

    The monotone-coupling contract (``repro.faults.base``) requires each
    injector to consume exactly one decision draw per decision point,
    *regardless of outcome or intensity*.  Three syntactic breaches are
    flagged inside the ``faults`` package:

    * ``self._fires(...)`` as a non-first operand of ``and``/``or`` —
      short-circuiting makes the draw conditional on sibling state, so
      raising the intensity would shift the stream;
    * the variation stream (``.vary`` / ``._vary``) appearing inside a
      branch condition — fault *magnitudes* must never decide whether a
      fault fires;
    * raw ``._decide`` access outside the base-class plumbing — all
      decision draws must go through ``_fires()`` so the one-draw
      accounting stays centralized.
    """

    rule_id = "RL004"
    name = "decision-stream"
    rationale = ("one decision draw per decision point keeps fault "
                 "events a monotone function of intensity")

    _PLUMBING = frozenset({"_fires", "bind_rng", "vary", "__init__"})

    @staticmethod
    def _is_fires_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and _call_name(node.func) == "_fires")

    @staticmethod
    def _uses_variation(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr in ("vary", "_vary"):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package != "faults":
            return
        func_of: Dict[ast.AST, str] = {}
        for fn in ast.walk(ctx.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(fn):
                    func_of.setdefault(sub, fn.name)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BoolOp):
                for value in node.values[1:]:
                    for sub in ast.walk(value):
                        if self._is_fires_call(sub):
                            yield self.finding(
                                ctx, sub,
                                "_fires() short-circuited behind "
                                "and/or: the decision draw becomes "
                                "conditional, breaking monotone "
                                "intensity coupling — draw first, "
                                "branch second")
            if isinstance(node, (ast.If, ast.While)):
                if self._uses_variation(node.test):
                    yield self.finding(
                        ctx, node.test,
                        "variation stream consulted in a branch "
                        "condition; decisions must come from the "
                        "decision stream via _fires()")
            if (isinstance(node, ast.Attribute) and node.attr == "_decide"
                    and func_of.get(node) not in self._PLUMBING):
                yield self.finding(
                    ctx, node,
                    "raw decision-stream access; draw through "
                    "_fires() so per-decision accounting holds")


@register_rule
class FrozenMutationRule(Rule):
    """RL005 — no mutation of frozen dataclasses or shared PMF arrays.

    :class:`~repro.estimation.pmf.Pmf` freezes its arrays with
    ``setflags(write=False)`` precisely so they can be shared between
    the WCDE cache, the planner and the estimators; un-freezing them
    (``setflags(write=True)``), writing through the public ``probs`` /
    ``cdf()`` views, or assigning to fields of a ``@dataclass(frozen=
    True)`` instance would let one consumer corrupt every holder of the
    same content-addressed entry.
    """

    rule_id = "RL005"
    name = "frozen-mutation"
    rationale = ("shared read-only PMF arrays and frozen dataclasses "
                 "back the content-addressed caches; mutation corrupts "
                 "every holder")

    _READONLY_VIEWS = frozenset({"probs", "cdf"})
    _MUTATING_METHODS = frozenset({"fill", "sort", "put", "partition",
                                   "resize", "itemset"})

    @staticmethod
    def _setflags_write_true(call: ast.Call) -> bool:
        if _call_name(call.func) != "setflags":
            return False
        for kw in call.keywords:
            if kw.arg == "write" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        if call.args and isinstance(call.args[0], ast.Constant):
            return bool(call.args[0].value)
        return False

    def _is_readonly_view(self, node: ast.expr) -> bool:
        """``X.probs`` or ``X.cdf()`` — the shared read-only surfaces."""
        if isinstance(node, ast.Attribute):
            return node.attr in self._READONLY_VIEWS
        if isinstance(node, ast.Call):
            return (_call_name(node.func) in self._READONLY_VIEWS
                    and isinstance(node.func, ast.Attribute))
        return False

    @staticmethod
    def _frozen_classes(tree: ast.Module) -> Set[ast.ClassDef]:
        out: Set[ast.ClassDef] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                if (isinstance(deco, ast.Call)
                        and _call_name(deco.func) == "dataclass"):
                    for kw in deco.keywords:
                        if (kw.arg == "frozen"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value):
                            out.add(node)
        return out

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            if self._setflags_write_true(call):
                yield self.finding(
                    ctx, call,
                    "setflags(write=True) un-freezes a shared array; "
                    "copy instead of re-enabling writes")
            elif (isinstance(call.func, ast.Attribute)
                  and call.func.attr in self._MUTATING_METHODS
                  and self._is_readonly_view(call.func.value)):
                yield self.finding(
                    ctx, call,
                    f"in-place {call.func.attr}() on a read-only "
                    "probs/cdf view; operate on a copy")
        for node in ast.walk(ctx.tree):
            targets: Tuple[ast.expr, ...] = ()
            if isinstance(node, ast.Assign):
                targets = tuple(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = (node.target,)
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if self._is_readonly_view(base):
                    yield self.finding(
                        ctx, node,
                        "write through a read-only probs/cdf view; "
                        "build a new Pmf instead")
        for cls in self._frozen_classes(ctx.tree):
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    continue
                for sub in ast.walk(fn):
                    tgts: Tuple[ast.expr, ...] = ()
                    if isinstance(sub, ast.Assign):
                        tgts = tuple(sub.targets)
                    elif isinstance(sub, ast.AugAssign):
                        tgts = (sub.target,)
                    for tgt in tgts:
                        if (isinstance(tgt, ast.Attribute)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"):
                            yield self.finding(
                                ctx, sub,
                                f"assignment to self.{tgt.attr} inside "
                                f"frozen dataclass {cls.name}; frozen "
                                "instances are immutable by contract")


@register_rule
class SolverExceptionRule(Rule):
    """RL006 — solver failures must be re-raised or recorded.

    Any ``except`` handler guarding a solver call (``solve_onion``,
    ``solve_wcde``, ``solve_rem``, ``map_time_slots``, ``plan``,
    ``robust_demand``) must either re-raise or leave a trace the
    degradation machinery can see: touch ``PlanStats.fallback``, append
    to an error ledger, bump fallback ``counts``, or ``record`` a fault
    event.  A handler that does none of these turns a
    ``SolverBudgetError`` into silent schedule corruption — the failure
    mode the graceful-degradation ladder exists to make observable.
    """

    rule_id = "RL006"
    name = "solver-exception"
    rationale = ("every failed solve must surface through the "
                 "degradation ladder's observable record")

    _RECORDING_ATTRS = frozenset({"fallback", "counts"})
    _RECORDING_CALLS = frozenset({"record", "append", "warning", "error"})

    def _handler_records(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (isinstance(node, ast.Attribute)
                    and node.attr in self._RECORDING_ATTRS):
                return True
            if (isinstance(node, ast.Call)
                    and _call_name(node.func) in self._RECORDING_CALLS):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        solver_names = ctx.config.solver_call_names
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            solver_call = None
            for stmt in node.body:
                for call in _walk_calls(stmt):
                    if _call_name(call.func) in solver_names:
                        solver_call = _call_name(call.func)
                        break
                if solver_call:
                    break
            if solver_call is None:
                continue
            for handler in node.handlers:
                if not self._handler_records(handler):
                    yield self.finding(
                        ctx, handler,
                        f"handler around {solver_call}() swallows the "
                        "failure; re-raise or record it (PlanStats."
                        "fallback, an error ledger, or the fault log)")


@register_rule
class PublicAnnotationRule(Rule):
    """RL007 — public API in core/estimation is fully annotated.

    Every public function and method (including dunders) of a public
    class in the ``core`` and ``estimation`` packages must annotate all
    parameters and its return type — the same surface ``mypy --strict``
    gates in CI, checked here without needing mypy installed.  Nested
    helper functions and ``_private`` names are exempt.
    """

    rule_id = "RL007"
    name = "public-annotations"
    rationale = ("the strict-typing gate on the scheduler core starts "
                 "with complete signatures")

    @staticmethod
    def _is_public(name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return True
        return not name.startswith("_")

    def _check_function(self, ctx: FileContext,
                        fn: ast.FunctionDef, owner: str,
                        is_method: bool) -> Iterator[Finding]:
        missing = []
        args = fn.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and positional:
            positional = positional[1:]  # self / cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append("*" + star.arg)
        if missing:
            yield self.finding(
                ctx, fn,
                f"{owner}{fn.name}() missing parameter annotation(s): "
                + ", ".join(missing))
        if fn.returns is None:
            yield self.finding(
                ctx, fn, f"{owner}{fn.name}() missing return annotation")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.is_annotated_api(ctx.path):
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_public(node.name):
                    yield from self._check_function(ctx, node, "", False)
            elif isinstance(node, ast.ClassDef) and self._is_public(node.name):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        if self._is_public(item.name):
                            yield from self._check_function(
                                ctx, item, node.name + ".", True)


@register_rule
class BenchmarkDeterminismRule(Rule):
    """RL008 — benchmark fixtures must be seeded and clock-free.

    The perf gates compare runs across commits; a fixture drawing from
    an unseeded generator (``default_rng()`` with no seed, ``seed()``
    with no argument, stdlib ``random``) or stamping results with the
    wall clock produces incomparable numbers.  Applies to files under
    ``benchmarks/``, ``bench_*.py`` and fixture directories.
    """

    rule_id = "RL008"
    name = "benchmark-determinism"
    rationale = ("perf gates compare numbers across commits; fixtures "
                 "must be a pure function of their seed")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_benchmark:
            return
        imports = _ImportMap(ctx.tree)
        for call in _walk_calls(ctx.tree):
            name = _call_name(call.func)
            np_attr = imports.numpy_random_attr(call.func)
            seedless = not call.args and not call.keywords
            if seedless and (
                    (isinstance(call.func, ast.Name)
                     and call.func.id in imports.default_rng_names)
                    or np_attr == "default_rng"):
                yield self.finding(
                    ctx, call,
                    "default_rng() without a seed; benchmark fixtures "
                    "must pin their seed")
            elif name == "seed" and seedless and (
                    np_attr == "seed"
                    or imports.stdlib_random_call(call.func) == "seed"):
                yield self.finding(
                    ctx, call,
                    "seed() with no argument re-seeds from the OS; pin "
                    "an explicit seed")
            elif imports.stdlib_random_call(call.func) is not None:
                yield self.finding(
                    ctx, call,
                    "stdlib random draws from hidden global state; use "
                    "a seeded np.random.Generator")
        yield from _wall_clock_findings(self, ctx)


@register_rule
class ObsClockFreeRule(Rule):
    """RL009 — the observability package imports no clock at all.

    ``repro.obs`` timestamps spans with the simulator's *slot* counter
    and orders them with a monotonic sequence number, which is what makes
    traces and metric snapshots byte-identical across same-seed runs and
    therefore golden-file testable.  RL002 would already ban the wall
    clock but still admits ``time.perf_counter`` for solver budgets; the
    observability layer has no budgets, so here *any* ``time`` or
    ``datetime`` import (module or from-import, including monotonic
    clocks) is a violation.  Real timestamps, if a deployment wants
    them, belong in the exporter consuming the JSONL — outside this
    package.
    """

    rule_id = "RL009"
    name = "obs-clock-free"
    rationale = ("slot-indexed, sequence-ordered telemetry is what makes "
                 "traces replayable and golden-testable; any clock "
                 "import re-introduces wall time")

    _BANNED = frozenset({"time", "datetime"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package != "obs":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED:
                        yield self.finding(
                            ctx, node,
                            f"import of {alias.name} in repro.obs; "
                            "telemetry is slot-indexed — no clock "
                            "module may be imported here")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in self._BANNED:
                    names = ", ".join(a.name for a in node.names)
                    yield self.finding(
                        ctx, node,
                        f"from {node.module} import {names} in "
                        "repro.obs; telemetry is slot-indexed — no "
                        "clock module may be imported here")


@register_rule
class SeededPoolInitializerRule(Rule):
    """RL010 — process pools in deterministic packages seed their workers.

    A ``ProcessPoolExecutor`` forks (or spawns) interpreters whose
    global RNG state is inherited from the parent or freshly
    entropy-seeded — either way it is hidden state RL001's discipline
    never sees, because the call sites live in the worker.  Every pool
    constructed inside a deterministic package must therefore install a
    seeding ``initializer=`` (e.g. :func:`repro.core.parallel
    .seed_worker`) that pins the stdlib and numpy global streams before
    any task runs.  The check is syntactic: a call whose terminal name
    is ``ProcessPoolExecutor`` without an ``initializer`` keyword is
    flagged; a ``**kwargs`` splat is given the benefit of the doubt.
    """

    rule_id = "RL010"
    name = "unseeded-pool-worker"
    rationale = ("RL001's seeded-RNG discipline must survive the fork "
                 "boundary: pool workers start with hidden global RNG "
                 "state unless an initializer pins it")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_deterministic:
            return
        for call in _walk_calls(ctx.tree):
            if _call_name(call.func) != "ProcessPoolExecutor":
                continue
            has_initializer = any(kw.arg == "initializer"
                                  for kw in call.keywords)
            has_splat = any(kw.arg is None for kw in call.keywords)
            if not (has_initializer or has_splat):
                yield self.finding(
                    ctx, call,
                    "ProcessPoolExecutor(...) without initializer= "
                    "forks hidden global RNG state into workers; pass "
                    "a seeding initializer (see repro.core.parallel"
                    ".seed_worker)")


@register_rule
class DurableWriteDisciplineRule(Rule):
    """RL015 — all service-side file writes go through the journal.

    The durability contract of :mod:`repro.service.journal` ("every
    accepted event is fsynced before it is applied; a crash can only
    tear the final record") holds only if the journal's atomic-append
    helper and :func:`~repro.service.journal.atomic_write_text` are the
    *only* ways bytes reach disk under ``repro.service`` — a stray
    ``open(path, "w")`` writes state that recovery knows nothing about
    and that no fault species exercises.  Inside the service package
    (``journal.py`` itself excepted) this flags ``open`` calls with a
    writable mode, ``os.open``/``os.write``/``os.fdopen``, and
    ``.write_text(...)``/``.write_bytes(...)`` method calls.  The check
    is syntactic: a non-literal mode argument is given the benefit of
    the doubt.
    """

    rule_id = "RL015"
    name = "durable-write-discipline"
    rationale = ("service-side writes outside the journal's fsync "
                 "discipline silently break crash recovery")

    #: The one file allowed to touch the filesystem directly.
    _ALLOWED_FILES = frozenset({"journal.py"})
    _OS_WRITERS = frozenset({"open", "write", "fdopen"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package != "service":
            return
        if ctx.path.replace("\\", "/").rsplit("/", 1)[-1] \
                in self._ALLOWED_FILES:
            return
        for call in _walk_calls(ctx.tree):
            func = call.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._mode_argument(call)
                if mode is not None and any(c in mode for c in "wax+"):
                    yield self.finding(
                        ctx, call,
                        f"open(..., {mode!r}) under repro.service "
                        "bypasses the journal's fsync discipline; "
                        "route writes through repro.service.journal")
            elif (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr in self._OS_WRITERS):
                yield self.finding(
                    ctx, call,
                    f"os.{func.attr}(...) under repro.service bypasses "
                    "the journal's fsync discipline; route writes "
                    "through repro.service.journal")
            elif (isinstance(func, ast.Attribute)
                    and func.attr in ("write_text", "write_bytes")):
                yield self.finding(
                    ctx, call,
                    f".{func.attr}(...) under repro.service bypasses "
                    "the journal's fsync discipline; use "
                    "repro.service.journal.atomic_write_text")

    @staticmethod
    def _mode_argument(call: ast.Call) -> Optional[str]:
        mode: Optional[ast.expr] = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return None  # default "r": reads are fine
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: benefit of the doubt
