"""The ``rush lint`` subcommand.

Exit codes follow the convention of the other gates: ``0`` clean,
``1`` findings reported, ``2`` usage error (unknown rule id, missing
path).  Wired into the main parser by :mod:`repro.cli`; kept here so
the lint subsystem is self-contained and importable without the rest of
the CLI.

Two modes share the flags:

* the default per-file mode runs rules RL001–RL010 one file at a time;
* ``--flow`` runs the project-wide rules RL011–RL014 over the whole
  tree at once (symbol index + call graph), optionally against a
  committed ``--baseline`` ratchet and with a ``--flow-cache`` keyed on
  file content hashes so warm runs skip parsing.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.framework import (RULE_REGISTRY, Finding, iter_python_files,
                                  lint_file)
from repro.lint.flow import lint_project
from repro.lint.flow.baseline import (compare_to_baseline, load_baseline,
                                      write_baseline)
from repro.lint.reporters import render_json, render_rule_catalog, render_text

__all__ = ["add_lint_arguments", "run_lint_command"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``rush lint`` arguments to a subparser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="check only these rule ids")
    parser.add_argument("--ignore", nargs="+", metavar="RULE", default=[],
                        help="skip these rule ids")
    parser.add_argument("--exclude", nargs="+", metavar="FRAGMENT",
                        default=[],
                        help="skip files whose path contains any of these "
                             "fragments (e.g. lint_fixtures)")
    parser.add_argument("--as-package", dest="as_package",
                        help="classify every file as this repro sub-package "
                             "(for out-of-tree snippets)")
    parser.add_argument("--as-benchmark", action="store_true",
                        help="treat every file as a benchmark fixture "
                             "(forces RL008 context)")
    parser.add_argument("--flow", action="store_true",
                        help="run the project-wide dataflow rules "
                             "(RL011-RL014) instead of the per-file rules")
    parser.add_argument("--baseline", metavar="FILE",
                        help="with --flow: ratchet findings against this "
                             "baseline file (new findings fail; counts may "
                             "only go down)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --flow --baseline: rewrite the baseline "
                             "from the current findings, preserving "
                             "justifications, and exit 0")
    parser.add_argument("--flow-cache", metavar="FILE",
                        help="with --flow: cache the symbol index here, "
                             "keyed on file content hashes")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _validated_rules(ids: List[str]) -> frozenset:
    unknown = [rule_id for rule_id in ids if rule_id not in RULE_REGISTRY]
    if unknown:
        raise ValueError(
            "unknown rule id(s): " + ", ".join(sorted(unknown))
            + "; known: " + ", ".join(sorted(RULE_REGISTRY)))
    return frozenset(ids)


def _selected_files(paths: Sequence[str],
                    exclude: Sequence[str]) -> List[str]:
    files = []
    for path in iter_python_files(paths):
        if any(fragment in path for fragment in exclude):
            continue
        files.append(path)
    return files


def _run_flow(args: argparse.Namespace, config: LintConfig,
              files: List[str]) -> int:
    findings = lint_project(files, config=config,
                            cache_path=args.flow_cache)
    if args.baseline and args.update_baseline:
        previous = load_baseline(args.baseline)
        baseline = write_baseline(findings, args.baseline,
                                  previous=previous)
        print(f"baseline written: {args.baseline} "
              f"({len(baseline.counts)} entrie(s), "
              f"{len(findings)} finding(s))")
        return 0
    notes: List[str] = []
    if args.baseline:
        baseline = load_baseline(args.baseline)
        findings, notes = compare_to_baseline(findings, baseline)
    if args.format == "json":
        print(render_json(findings, checked_files=len(files)))
    else:
        print(render_text(findings, checked_files=len(files)))
        for note in notes:
            print(f"note: {note}")
    return 1 if findings else 0


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute ``rush lint`` for parsed arguments; returns the exit code."""
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    try:
        select = _validated_rules(args.select) if args.select else None
        ignore = _validated_rules(args.ignore) if args.ignore else frozenset()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    if args.update_baseline and not (args.flow and args.baseline):
        print("error: --update-baseline requires --flow and --baseline")
        return 2
    if (args.baseline or args.flow_cache) and not args.flow:
        print("error: --baseline/--flow-cache only apply to --flow mode")
        return 2
    config = LintConfig(select=select, ignore=ignore,
                        package_override=args.as_package,
                        benchmark_override=args.as_benchmark)
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print("error: no such path(s): " + ", ".join(missing))
        return 2
    files = _selected_files(args.paths, args.exclude)
    if args.flow:
        return _run_flow(args, config, files)
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, config=config))
    findings.sort()
    if args.format == "json":
        print(render_json(findings, checked_files=len(files)))
    else:
        print(render_text(findings, checked_files=len(files)))
    return 1 if findings else 0
