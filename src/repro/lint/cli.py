"""The ``rush lint`` subcommand.

Exit codes follow the convention of the other gates: ``0`` clean,
``1`` findings reported, ``2`` usage error (unknown rule id, missing
path).  Wired into the main parser by :mod:`repro.cli`; kept here so
the lint subsystem is self-contained and importable without the rest of
the CLI.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.lint.config import LintConfig
from repro.lint.framework import RULE_REGISTRY, Finding, iter_python_files, lint_file
from repro.lint.reporters import render_json, render_rule_catalog, render_text

__all__ = ["add_lint_arguments", "run_lint_command"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``rush lint`` arguments to a subparser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="check only these rule ids")
    parser.add_argument("--ignore", nargs="+", metavar="RULE", default=[],
                        help="skip these rule ids")
    parser.add_argument("--as-package", dest="as_package",
                        help="classify every file as this repro sub-package "
                             "(for out-of-tree snippets)")
    parser.add_argument("--as-benchmark", action="store_true",
                        help="treat every file as a benchmark fixture "
                             "(forces RL008 context)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _validated_rules(ids: List[str]) -> frozenset:
    unknown = [rule_id for rule_id in ids if rule_id not in RULE_REGISTRY]
    if unknown:
        raise ValueError(
            "unknown rule id(s): " + ", ".join(sorted(unknown))
            + "; known: " + ", ".join(sorted(RULE_REGISTRY)))
    return frozenset(ids)


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute ``rush lint`` for parsed arguments; returns the exit code."""
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    try:
        select = _validated_rules(args.select) if args.select else None
        ignore = _validated_rules(args.ignore) if args.ignore else frozenset()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    config = LintConfig(select=select, ignore=ignore,
                        package_override=args.as_package,
                        benchmark_override=args.as_benchmark)
    findings: List[Finding] = []
    checked = 0
    missing: List[str] = []
    import os

    for path in args.paths:
        if not os.path.exists(path):
            missing.append(path)
    if missing:
        print("error: no such path(s): " + ", ".join(missing))
        return 2
    for path in iter_python_files(args.paths):
        findings.extend(lint_file(path, config=config))
        checked += 1
    findings.sort()
    if args.format == "json":
        print(render_json(findings, checked_files=checked))
    else:
        print(render_text(findings, checked_files=checked))
    return 1 if findings else 0
