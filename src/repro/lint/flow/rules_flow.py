"""Flow rules RL011–RL014 and the project-level lint engine.

These rules subclass :class:`FlowRule`, a :class:`~repro.lint.
framework.Rule` whose per-file ``check`` is a no-op: they only fire
from :func:`lint_project`, which hands them a :class:`ProjectContext`
(symbol index + call graph + shared analyses).  Because they live in
the ordinary ``RULE_REGISTRY`` and emit ordinary ``Finding`` objects,
``--select``/``--ignore``, suppression comments, and both reporters
work on them unchanged.

The four invariants:

* **RL011 rng-provenance** — every value drawn in a deterministic
  package must derive from a seeded generator; violations render the
  full cross-module ``source → hop → … → sink`` path.
* **RL012 solve-path-purity** — nothing reachable from a solver entry
  point (``plan``/``solve_*``/``map_time_slots``/``robust_demand`` in a
  deterministic package) may write module globals, read the wall
  clock, or perform I/O — wherever it lives.
* **RL013 pool-escape** — workers submitted to a ``ProcessPoolExecutor``
  must be picklable top-level functions touching no mutable module
  globals, and RNG-drawing workers need a seeding initializer.
* **RL014 solver-exception-flow** — ``SolverBudgetError``-family raises
  must have a recording path into the degradation ladder, and no
  ``except`` in ``core``/``schedulers`` may swallow the family
  silently.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.framework import (RULE_REGISTRY, SYNTAX_ERROR_ID, Finding,
                                  FileContext, Rule, register_rule)
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.purity import ImpurityFinding, analyze_purity
from repro.lint.flow.symbols import FlowIndex, ModuleSummary, build_index
from repro.lint.flow.taint import TaintAnalysis, analyze_taint

__all__ = ["FlowRule", "ProjectContext", "lint_project"]

#: Packages whose ``except`` clauses RL014 audits for swallowed solver
#: failures (mirrors the degradation ladder's home turf).
_EXCEPTION_AUDIT_PACKAGES = frozenset({"core", "schedulers"})

#: The solver failure family's terminal class name (resolved through
#: base-class chains so subclasses and re-exports count).
_FAMILY_TERMINAL = "SolverBudgetError"

#: Exception names that catch the family via the class hierarchy.
_BROAD_TERMINALS = frozenset({"Exception", "BaseException", "ReproError"})

#: Builtin callables never treated as dynamic dispatch by RL014.
_KNOWN_BUILTINS = frozenset({
    "len", "range", "str", "int", "float", "bool", "list", "dict", "set",
    "tuple", "sorted", "min", "max", "sum", "abs", "enumerate", "zip",
    "map", "filter", "isinstance", "issubclass", "getattr", "setattr",
    "hasattr", "repr", "print", "open", "iter", "next", "round", "any",
    "all", "type", "id", "vars", "format",
})


@dataclass
class ProjectContext:
    """What a flow rule sees: the whole program, pre-digested."""

    index: FlowIndex
    graph: CallGraph
    config: LintConfig
    _taint: Optional[TaintAnalysis] = field(default=None, repr=False)
    _purity: Optional[List[ImpurityFinding]] = field(default=None,
                                                     repr=False)

    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = analyze_taint(self.graph)
        return self._taint

    def purity(self) -> List[ImpurityFinding]:
        if self._purity is None:
            self._purity = analyze_purity(self.graph, self.config)
        return self._purity

    def summary_for(self, path: str) -> Optional[ModuleSummary]:
        return self.index.by_path(path)


class FlowRule(Rule):
    """A rule that needs the whole program, not one file.

    The per-file engine instantiates every registered rule, so
    :meth:`check` must exist — it yields nothing.  The real work
    happens in :meth:`project_check`, invoked by :func:`lint_project`.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def project_check(self, ctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, path: str, line: int,
                        message: str) -> Finding:
        return Finding(path=path, line=line, col=1,
                       rule_id=self.rule_id, message=message)


def _render_chain(chain: Sequence[Tuple[str, int, str]]) -> str:
    return " -> ".join(f"{path}:{line} ({note})"
                       for path, line, note in chain)


@register_rule
class RngProvenanceRule(FlowRule):
    """RL011: cross-module unseeded-RNG provenance."""

    rule_id = "RL011"
    name = "rng-provenance"
    rationale = ("Theorem-level determinism holds only if every random "
                 "draw in the solve path derives from a seeded "
                 "Generator; per-file RL001 cannot see laundering "
                 "through helper modules, this pass can.")

    def project_check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for violation in ctx.taint().findings:
            if not ctx.config.is_deterministic(violation.path):
                continue
            yield self.project_finding(
                violation.path, violation.line,
                f"{violation.message}; taint path: "
                f"{_render_chain(violation.chain)}")


@register_rule
class SolvePathPurityRule(FlowRule):
    """RL012: impurity reachable from a solver entry point."""

    rule_id = "RL012"
    name = "solve-path-purity"
    rationale = ("The incremental planner is bit-identical to the cold "
                 "path only if everything reachable from the solve "
                 "roots is a pure function of its inputs — including "
                 "helpers outside the deterministic packages.")

    def project_check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for imp in ctx.purity():
            chain = " -> ".join(imp.chain)
            yield self.project_finding(
                imp.path, imp.line,
                f"{imp.kind} on the solve path: {imp.detail} "
                f"[reached via {chain}]")


@register_rule
class PoolEscapeRule(FlowRule):
    """RL013: process-pool workers must not smuggle shared state."""

    rule_id = "RL013"
    name = "pool-escape"
    rationale = ("Workers run in forked interpreters: closures over "
                 "mutable module globals silently diverge per process, "
                 "and an RNG-drawing worker without a seeding "
                 "initializer destroys run-to-run determinism.")

    def project_check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for module in sorted(ctx.index.modules):
            summary = ctx.index.modules[module]
            if not ctx.config.is_deterministic(summary.path):
                continue
            for qual in sorted(summary.functions):
                info = summary.functions[qual]
                for submit in info.get("pool_submits", ()):
                    yield from self._check_submit(ctx, summary, submit)

    def _check_submit(self, ctx: ProjectContext, summary: ModuleSummary,
                      submit: Dict[str, Any]) -> Iterator[Finding]:
        worker = submit["worker"]
        line = submit["line"]
        if worker == "<lambda>" or worker.startswith("<nested>"):
            label = ("a lambda" if worker == "<lambda>"
                     else f"nested function "
                          f"'{worker[len('<nested>'):]}'")
            yield self.project_finding(
                summary.path, line,
                f"pool worker is {label}: not picklable and its "
                f"closure escapes analysis; submit a module-level "
                f"function")
            return
        node = ctx.graph.resolve(worker)
        if node is None:
            return  # external callable; nothing to inspect
        closure = ctx.graph.reachable_from([node])
        draws_rng = False
        for fq in sorted(closure):
            wsummary, winfo = ctx.graph.functions[fq]
            chain = " -> ".join(ctx.graph.chain_to_root(fq, closure))
            for read in winfo.get("global_reads", ()):
                owner = ctx.graph.functions[fq][0]
                if owner.globals.get(read["name"]) != "mutable":
                    continue
                yield self.project_finding(
                    summary.path, line,
                    f"pool worker {_terminal(node)}() reads mutable "
                    f"module global '{read['name']}' at "
                    f"{wsummary.path}:{read['line']} [via {chain}]; "
                    f"per-process copies will diverge")
            for write in winfo.get("global_writes", ()):
                yield self.project_finding(
                    summary.path, line,
                    f"pool worker {_terminal(node)}() writes module "
                    f"global '{write['name']}' at "
                    f"{wsummary.path}:{write['line']} [via {chain}]; "
                    f"the write is lost in the parent process")
            if _draws_rng(winfo):
                draws_rng = True
        if draws_rng and not self._has_initializer(ctx, summary, node):
            yield self.project_finding(
                summary.path, line,
                f"pool worker {_terminal(node)}() draws from an RNG "
                f"but no ProcessPoolExecutor in this module passes a "
                f"seeding initializer=; child processes inherit "
                f"unseeded state")

    @staticmethod
    def _has_initializer(ctx: ProjectContext, summary: ModuleSummary,
                         worker: str) -> bool:
        pools = list(summary.pools)
        worker_summary = ctx.graph.functions[worker][0]
        if worker_summary.module != summary.module:
            pools += worker_summary.pools
        if not pools:
            return True  # pool constructed elsewhere; RL010 owns that
        return all(pool.get("has_initializer") for pool in pools)


def _terminal(fq: str) -> str:
    return fq.rsplit(".", 1)[-1]


def _draws_rng(info: Dict[str, Any]) -> bool:
    """Whether a function contains any RNG draw or entropy source."""
    if info.get("sinks"):
        return True

    def _is_source(dep: Optional[Dict[str, Any]]) -> bool:
        return bool(dep) and dep.get("kind") == "source"

    for ret in info.get("returns", ()):
        if _is_source(ret):
            return True
    for call in info.get("calls", ()):
        if any(_is_source(d) for d in call.get("args", ())):
            return True
        if any(_is_source(d) for d in call.get("kwargs", {}).values()):
            return True
    return False


@register_rule
class SolverExceptionFlowRule(FlowRule):
    """RL014: solver failures must reach the degradation ladder."""

    rule_id = "RL014"
    name = "solver-exception-flow"
    rationale = ("Graceful degradation (primary -> cold_exact -> "
                 "last_good -> greedy_edf) only engages if every "
                 "SolverBudgetError propagates to a recording handler; "
                 "a swallowed or unreachable raise turns a planned "
                 "fallback into silent corruption.")

    def project_check(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        raisers = self._family_raisers(ctx)
        covered, covers_all = self._coverage(ctx, raisers)

        for fq in sorted(graph.functions):
            summary, info = graph.functions[fq]
            package = ctx.config.package_of(summary.path)
            # (a) swallow check in the audited packages.
            if package in _EXCEPTION_AUDIT_PACKAGES:
                for handler in info.get("handlers", ()):
                    yield from self._check_handler(
                        ctx, summary, fq, info, handler, raisers)
            # (b) orphan raises: the family must reach a ladder handler.
            if covers_all:
                continue
            for raise_site in info.get("raises", ()):
                if not self._is_family(graph, raise_site["exc"]):
                    continue
                if fq in covered:
                    continue
                yield self.project_finding(
                    summary.path, raise_site["line"],
                    f"{_terminal(raise_site['exc'])} raised here has no "
                    f"path into the degradation ladder: no recording "
                    f"handler catches the solver family on any call "
                    f"chain reaching {_terminal(fq)}()")

    # -- helpers ------------------------------------------------------

    def _is_family(self, graph: CallGraph, exc_fq: str) -> bool:
        """Whether ``exc_fq`` is SolverBudgetError or a subclass."""
        if _terminal(exc_fq) == _FAMILY_TERMINAL:
            return True
        resolved = graph._resolve_class(exc_fq)
        seen: Set[str] = set()
        while resolved is not None and resolved not in seen:
            seen.add(resolved)
            if _terminal(resolved) == _FAMILY_TERMINAL:
                return True
            bases = graph.classes.get(resolved, (None, {}))[1].get(
                "bases", ())
            resolved = None
            for base in bases:
                if _terminal(base) == _FAMILY_TERMINAL:
                    return True
                candidate = graph._resolve_class(base)
                if candidate is not None:
                    resolved = candidate
                    break
        return False

    def _catches_family(self, graph: CallGraph,
                        handler: Dict[str, Any]) -> Tuple[bool, bool]:
        """(catches_family, is_broad) for one except clause."""
        if handler.get("bare"):
            return True, True
        broad = False
        for type_fq in handler.get("types", ()):
            if self._is_family(graph, type_fq):
                return True, False
            if _terminal(type_fq) in _BROAD_TERMINALS:
                broad = True
        return broad, broad

    def _family_raisers(self, ctx: ProjectContext) -> Set[str]:
        """Functions that (transitively) raise the solver family."""
        graph = ctx.graph
        raisers: Set[str] = set()
        for fq, (_summary, info) in graph.functions.items():
            for raise_site in info.get("raises", ()):
                if self._is_family(graph, raise_site["exc"]):
                    raisers.add(fq)
                    break
        changed = True
        while changed:
            changed = False
            for caller, callees in graph.edges.items():
                if caller in raisers:
                    continue
                if any(callee in raisers for callee, _line in callees):
                    raisers.add(caller)
                    changed = True
        return raisers

    def _check_handler(self, ctx: ProjectContext, summary: ModuleSummary,
                       fq: str, info: Dict[str, Any],
                       handler: Dict[str, Any],
                       raisers: Set[str]) -> Iterator[Finding]:
        catches, broad = self._catches_family(ctx.graph, handler)
        if not catches or handler.get("records"):
            return
        if broad:
            # A broad catch only concerns RL014 when the try body can
            # actually raise the family.
            guarded_hits = [g for g in handler.get("guarded", ())
                            if ctx.graph.resolve(g) in raisers]
            if not guarded_hits:
                return
            culprit = _terminal(guarded_hits[0])
            yield self.project_finding(
                summary.path, handler["line"],
                f"broad except swallows the SolverBudgetError family "
                f"raised by {culprit}() without recording a fallback; "
                f"re-raise or route it into the degradation ladder")
            return
        yield self.project_finding(
            summary.path, handler["line"],
            f"except catches the SolverBudgetError family without "
            f"recording a fallback; the degradation ladder never "
            f"sees the failure")

    def _coverage(self, ctx: ProjectContext,
                  raisers: Set[str]) -> Tuple[Set[str], bool]:
        """Raise coverage: functions guarded by a recording handler.

        Returns ``(covered_functions, covers_all)``; the latter is set
        when a recording family handler guards a *dynamic* call (a bare
        callable parameter or local, as in the degradation ladder's
        ``attempt()`` dispatch) that static resolution cannot follow —
        we then assume the ladder can reach any raise site rather than
        flood the report with false orphans.
        """
        graph = ctx.graph
        roots: Set[str] = set()
        covers_all = False
        for fq, (_summary, info) in graph.functions.items():
            for handler in info.get("handlers", ()):
                catches, _broad = self._catches_family(graph, handler)
                if not catches or not handler.get("records"):
                    continue
                for guarded in handler.get("guarded", ()):
                    node = graph.resolve(guarded)
                    if node is not None:
                        roots.add(node)
                    elif ("." not in guarded
                          and guarded not in _KNOWN_BUILTINS
                          and guarded[:1].islower()):
                        covers_all = True
        covered = set(graph.reachable_from(sorted(roots)))
        return covered, covers_all


def lint_project(paths: Sequence[str],
                 config: Optional[LintConfig] = None,
                 cache_path: Optional[str] = None) -> List[Finding]:
    """Run every registered flow rule over a project tree.

    Builds (or refreshes, via ``cache_path``) the symbol index, wires
    the call graph, and applies each enabled :class:`FlowRule`.
    Suppression comments are honored through the index's cached
    suppression tables, so warm runs need no re-tokenization.
    """
    config = config or LintConfig()
    index = build_index(paths, cache_path=cache_path)
    graph = CallGraph(index)
    ctx = ProjectContext(index=index, graph=graph, config=config)
    findings: List[Finding] = []
    for path in sorted(index.broken):
        findings.append(Finding(
            path=path, line=1, col=1, rule_id=SYNTAX_ERROR_ID,
            message=index.broken[path]))
    for rule_id in sorted(RULE_REGISTRY):
        rule_cls = RULE_REGISTRY[rule_id]
        if not issubclass(rule_cls, FlowRule):
            continue
        if not config.enabled(rule_id):
            continue
        rule = rule_cls()
        for finding in rule.project_check(ctx):
            summary = ctx.summary_for(finding.path)
            if summary is not None and summary.suppressed(
                    finding.rule_id, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)
