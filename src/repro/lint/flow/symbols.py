"""Per-module symbol extraction and the content-hash-keyed flow index.

One parse of each file produces a :class:`ModuleSummary`: a JSON-
serializable digest of everything the interprocedural passes need —
import bindings, module globals (with mutability classification), class
structure, and per-function facts (call sites with taint dependencies,
return taint, RNG sinks, global reads/writes, wall-clock and I/O calls,
raise/except structure, process-pool submissions, suppression index).

Because a summary is a pure function of the file's bytes, the whole
index caches cleanly: :func:`build_index` keys each entry on the
blake2b hash of the source and re-extracts only files whose hash
changed, so warm ``rush lint --flow`` runs skip parsing entirely.

Taint dependencies (the ``dep`` dicts threaded through summaries) form
a tiny lattice resolved later by :mod:`repro.lint.flow.taint`:

* ``None`` — clean;
* ``{"kind": "source", ...}`` — derived from an unseeded RNG origin
  (stdlib ``random``, legacy ``numpy.random`` module calls, seedless
  ``default_rng()`` / bit-generator constructors, ``os.urandom``,
  ``secrets``, ``uuid.uuid4``);
* ``{"kind": "param", "index": i, ...}`` — tainted iff argument ``i``
  of the enclosing function is tainted at some call site;
* ``{"kind": "call", "callee": fq, ...}`` — tainted iff the named
  function's return value is tainted.

Every dep carries a ``chain`` of ``{"line", "note"}`` hops recording
the intra-function derivation, so interprocedural findings can render
the full ``source → hop → … → sink`` path with file:line precision.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import _parse_suppressions, iter_python_files

__all__ = [
    "INDEX_VERSION",
    "ModuleSummary",
    "FlowIndex",
    "module_name_for",
    "extract_module",
    "build_index",
]

#: Bump to invalidate cached summaries when the extraction logic changes.
INDEX_VERSION = 1

Dep = Optional[Dict[str, Any]]

#: numpy.random attributes constructing seedable generators (mirrors the
#: per-file RL001 set; anything else on numpy.random is the legacy
#: global-state API and is a taint source unconditionally).
_SEEDABLE_NUMPY = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Fully-qualified call targets that read the wall clock.
_WALL_CLOCK_FQ = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.datetime.fromtimestamp",
    "datetime.date.today", "datetime.date.fromtimestamp",
})

#: Builtin call names that perform I/O.
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: Fully-qualified I/O surfaces beyond the builtins.
_IO_FQ = frozenset({
    "sys.stdout.write", "sys.stderr.write", "builtins.open",
    "builtins.print", "builtins.input",
})

#: Method names that mutate their receiver in place (used to classify a
#: call on a module-global container as a global write).
_MUTATORS = frozenset({
    "append", "add", "update", "pop", "popitem", "clear", "extend",
    "remove", "discard", "insert", "setdefault", "sort", "reverse",
})

#: Handler-body markers treated as "the failure was recorded" (shared
#: vocabulary with the per-file RL006 rule).
_RECORDING_ATTRS = frozenset({"fallback", "counts"})
_RECORDING_CALLS = frozenset({"record", "append", "warning", "error"})


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``.

    Paths under a ``repro`` component map to their real dotted name
    (``src/repro/core/wcde.py`` → ``repro.core.wcde``); anything else is
    addressed by its stem, so a flat fixture directory resolves sibling
    imports (``from helper import f``) naturally.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return ""
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[idx:])
    # Flat/out-of-tree project: climb enclosing packages (directories
    # with an __init__.py) so `pkg/inner.py` names `pkg.inner` and
    # re-exports through `pkg/__init__.py` stay resolvable.
    names = [parts[-1]]
    directory = Path(path).parent
    if Path(path).stem == "__init__":
        directory = directory.parent
    while (directory / "__init__.py").is_file():
        names.insert(0, directory.name)
        directory = directory.parent
    return ".".join(names)


def _dotted(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None


def _hop(line: int, note: str) -> Dict[str, Any]:
    return {"line": line, "note": note}


def _dep_with_hop(dep: Dep, line: int, note: str) -> Dep:
    """A copy of ``dep`` with one derivation hop appended."""
    if dep is None:
        return None
    out = dict(dep)
    out["chain"] = list(dep.get("chain", ())) + [_hop(line, note)]
    return out


@dataclass
class ModuleSummary:
    """Everything the flow passes need to know about one module."""

    module: str
    path: str
    sha: str
    imports: Dict[str, str] = field(default_factory=dict)
    globals: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    pools: List[Dict[str, Any]] = field(default_factory=list)
    suppress_lines: Dict[str, List[str]] = field(default_factory=dict)
    suppress_file: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module, "path": self.path, "sha": self.sha,
            "imports": self.imports, "globals": self.globals,
            "classes": self.classes, "functions": self.functions,
            "pools": self.pools, "suppress_lines": self.suppress_lines,
            "suppress_file": self.suppress_file,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(**data)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line`` in this module."""
        if "all" in self.suppress_file or rule_id in self.suppress_file:
            return True
        ids = self.suppress_lines.get(str(line), ())
        return "all" in ids or rule_id in ids


class _FunctionExtractor:
    """One walk over a function body, producing its summary dict.

    The walk is statement-ordered, so assignments seen earlier shade
    taint for uses later — a cheap flow-sensitive approximation (branch
    bodies are walked in order and their bindings union, which
    over-approximates reachability but never loses a taint).
    """

    def __init__(self, mod: "_ModuleExtractor", fn: ast.AST,
                 qualname: str, class_name: Optional[str]) -> None:
        self.mod = mod
        self.fn = fn
        self.qualname = qualname
        self.class_name = class_name
        args = fn.args
        self.params: List[str] = [a.arg for a in (
            list(args.posonlyargs) + list(args.args))]
        self.kwonly: List[str] = [a.arg for a in args.kwonlyargs]
        self.all_params = self.params + self.kwonly
        self.is_method = class_name is not None and not any(
            _deco_name(d) == "staticmethod" for d in fn.decorator_list)
        self.locals: Set[str] = _collect_locals(fn)
        self.global_decls: Set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Global):
                self.global_decls |= set(sub.names)
        self.env: Dict[str, Dep] = {}
        self.local_types: Dict[str, str] = {}
        self.nested_defs: Set[str] = set()
        self.info: Dict[str, Any] = {
            "name": fn.name, "qualname": qualname, "line": fn.lineno,
            "params": self._param_names(), "calls": [], "returns": [],
            "sinks": [], "global_reads": [], "global_writes": [],
            "wall_clock": [], "io": [], "raises": [], "handlers": [],
            "pool_submits": [],
        }

    def _param_names(self) -> List[str]:
        names = list(self.all_params)
        if self.is_method and names:
            names = names[1:]
        return names

    # -- name resolution ----------------------------------------------

    def _resolve(self, dotted: str) -> str:
        """Resolve a dotted chain against self/locals/imports/module."""
        parts = dotted.split(".")
        head = parts[0]
        if head == "self" and self.is_method and self.class_name:
            cls = self.mod.classes.get(self.class_name, {})
            if len(parts) >= 2:
                attr = parts[1]
                typed = cls.get("attr_types", {}).get(attr)
                if typed is not None:
                    return ".".join([typed] + parts[2:])
                return ".".join(
                    [self.mod.module, self.class_name] + parts[1:])
            return dotted
        if head in self.local_types and len(parts) >= 2:
            return ".".join([self.local_types[head]] + parts[1:])
        if head in self.locals or head in self.all_params:
            return dotted
        return self.mod.resolve(dotted)

    # -- taint sources ------------------------------------------------

    def _source_dep(self, call: ast.Call, fq: str) -> Tuple[Dep, bool]:
        """(dep, handled) for RNG-constructor/source semantics of ``fq``."""
        seedless = not call.args and not call.keywords
        none_seed = (len(call.args) == 1 and not call.keywords
                     and isinstance(call.args[0], ast.Constant)
                     and call.args[0].value is None)
        if fq.startswith("numpy.random."):
            attr = fq[len("numpy.random."):]
            if attr in _SEEDABLE_NUMPY:
                if seedless or none_seed:
                    return ({"kind": "source", "line": call.lineno,
                             "note": f"unseeded numpy.random.{attr}()",
                             "chain": [_hop(call.lineno,
                                            f"unseeded {attr}() entropy "
                                            "source")]}, True)
                return (self._args_dep(call, f"{attr}(...)"), True)
            return ({"kind": "source", "line": call.lineno,
                     "note": f"legacy numpy.random.{attr}() global stream",
                     "chain": [_hop(call.lineno,
                                    f"legacy np.random.{attr}() draws "
                                    "from the hidden global "
                                    "RandomState")]}, True)
        if fq == "random.Random" or fq == "random.SystemRandom":
            if seedless or none_seed or fq.endswith("SystemRandom"):
                return ({"kind": "source", "line": call.lineno,
                         "note": f"unseeded {fq}()",
                         "chain": [_hop(call.lineno,
                                        f"unseeded {fq}()")]}, True)
            return (self._args_dep(call, "Random(...)"), True)
        if fq.startswith("random."):
            return ({"kind": "source", "line": call.lineno,
                     "note": f"stdlib {fq}() hidden global state",
                     "chain": [_hop(call.lineno,
                                    f"stdlib {fq}() draws from hidden "
                                    "global state")]}, True)
        if fq in ("os.urandom", "uuid.uuid4") or fq.startswith("secrets."):
            return ({"kind": "source", "line": call.lineno,
                     "note": f"{fq}() OS entropy",
                     "chain": [_hop(call.lineno,
                                    f"{fq}() reads OS entropy")]}, True)
        return (None, False)

    def _args_dep(self, call: ast.Call, note: str) -> Dep:
        """Taint union over a call's arguments (first tainted wins)."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            dep = self._eval(arg)
            if dep is not None:
                return _dep_with_hop(dep, call.lineno,
                                     f"passed through {note}")
        return None

    # -- expression evaluation ----------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> Dep:
        """Taint of one expression; records calls/sinks as a side effect."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.info["params"]:
                return {"kind": "param",
                        "index": self.info["params"].index(node.id),
                        "chain": []}
            self._note_global_read(node)
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            if base is not None:
                return _dep_with_hop(base, node.lineno,
                                     f"via attribute .{node.attr}")
            return None
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare,
                             ast.Subscript, ast.Tuple, ast.List, ast.Set,
                             ast.Starred, ast.UnaryOp, ast.IfExp,
                             ast.JoinedStr, ast.FormattedValue,
                             ast.NamedExpr)):
            dep = None
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    sub = self._eval(child)
                    if dep is None and sub is not None:
                        dep = sub
                elif isinstance(child, ast.comprehension):
                    self._eval(child.iter)
            if isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name):
                self._bind(node.target.id, dep)
            return dep
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            dep = None
            for gen in node.generators:
                sub = self._eval(gen.iter)
                for target in ast.walk(gen.target):
                    if isinstance(target, ast.Name):
                        self._bind(target.id, sub)
                if dep is None:
                    dep = sub
            if isinstance(node, ast.DictComp):
                for part in (node.key, node.value):
                    sub = self._eval(part)
                    dep = dep if dep is not None else sub
            else:
                sub = self._eval(node.elt)
                dep = dep if dep is not None else sub
            return dep
        if isinstance(node, ast.Dict):
            dep = None
            for part in list(node.keys) + list(node.values):
                if part is not None:
                    sub = self._eval(part)
                    dep = dep if dep is not None else sub
            return dep
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return None

    def _eval_call(self, call: ast.Call) -> Dep:
        func = call.func
        dotted = _dotted(func)
        fq = self._resolve(dotted) if dotted else None

        if fq is not None:
            dep, handled = self._source_dep(call, fq)
            if handled:
                self._eval_arguments_only(call)
                return dep
            if fq in _WALL_CLOCK_FQ:
                self.info["wall_clock"].append(
                    _hop(call.lineno, f"{fq}() reads the wall clock"))
            if fq in _IO_FQ or (fq in _IO_BUILTINS and "." not in fq):
                self.info["io"].append(
                    _hop(call.lineno, f"{fq}() performs I/O"))

        # Method call on a tainted receiver: the canonical sink (a draw
        # from an unseeded generator) — and the result is itself tainted.
        if isinstance(func, ast.Attribute):
            recv = self._eval(func.value)
            if recv is not None:
                self.info["sinks"].append({
                    "line": call.lineno,
                    "note": f".{func.attr}() drawn from a value of "
                            "unseeded-RNG provenance",
                    "cause": recv,
                })
                self._eval_arguments_only(call)
                self._note_pool_submit(call, func)
                self._note_mutator(call, func)
                return _dep_with_hop(recv, call.lineno,
                                     f"result of .{func.attr}()")
            self._note_pool_submit(call, func)
            self._note_mutator(call, func)

        arg_deps = [self._eval(a) for a in call.args]
        kw_deps = {kw.arg: self._eval(kw.value)
                   for kw in call.keywords if kw.arg is not None}
        for kw in call.keywords:
            if kw.arg is None:
                self._eval(kw.value)

        record: Dict[str, Any] = {
            "callee": fq, "raw": dotted or "<expr>", "line": call.lineno,
            "args": arg_deps, "kwargs": kw_deps,
        }
        self.info["calls"].append(record)

        if fq is not None:
            return {"kind": "call", "callee": fq, "line": call.lineno,
                    "chain": []}
        # Unknown callable: conservatively propagate argument taint
        # (e.g. float(x), np.asarray(x) keep provenance).
        for dep in arg_deps + list(kw_deps.values()):
            if dep is not None:
                return _dep_with_hop(dep, call.lineno,
                                     "passed through a call")
        return None

    def _eval_arguments_only(self, call: ast.Call) -> None:
        for arg in call.args:
            self._eval(arg)
        for kw in call.keywords:
            self._eval(kw.value)

    # -- side-effect bookkeeping --------------------------------------

    def _note_global_read(self, node: ast.Name) -> None:
        name = node.id
        if (name in self.mod.globals and name not in self.locals
                and name not in self.all_params
                and name not in self.global_decls):
            self.info["global_reads"].append(
                {"name": name, "line": node.lineno})

    def _note_mutator(self, call: ast.Call, func: ast.Attribute) -> None:
        if func.attr not in _MUTATORS:
            return
        base = func.value
        if (isinstance(base, ast.Name) and base.id in self.mod.globals
                and base.id not in self.locals
                and base.id not in self.all_params):
            self.info["global_writes"].append(
                {"name": base.id, "line": call.lineno,
                 "note": f".{func.attr}() mutates module global"})

    def _note_pool_submit(self, call: ast.Call, func: ast.Attribute) -> None:
        if func.attr not in ("submit", "map") or not call.args:
            return
        if not self.mod.imports_pool_executor:
            return
        worker = call.args[0]
        if isinstance(worker, ast.Lambda):
            name = "<lambda>"
        else:
            dotted = _dotted(worker)
            if dotted is None:
                name = "<expr>"
            elif dotted in self.nested_defs:
                name = f"<nested>{dotted}"
            else:
                name = self._resolve(dotted)
        self.info["pool_submits"].append(
            {"worker": name, "line": call.lineno})

    def _bind(self, name: str, dep: Dep) -> None:
        if dep is None:
            self.env.pop(name, None)
        else:
            self.env[name] = dep

    # -- statements ---------------------------------------------------

    def run(self) -> Dict[str, Any]:
        self._walk_body(self.fn.body)
        return self.info

    def _walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.add(stmt.name)
            return  # nested defs are summarized separately
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            dep = self._eval(stmt.value)
            self._record_assignment_targets(stmt.targets, stmt, dep)
            self._record_local_type(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            dep = self._eval(stmt.value) if stmt.value else None
            self._record_assignment_targets([stmt.target], stmt, dep)
            if stmt.value is not None:
                self._record_local_type([stmt.target], stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            dep = self._eval(stmt.value)
            prior = self._eval(stmt.target) if isinstance(
                stmt.target, ast.Name) else None
            self._record_assignment_targets(
                [stmt.target], stmt, dep if dep is not None else prior)
            return
        if isinstance(stmt, ast.Return):
            dep = self._eval(stmt.value)
            if dep is not None:
                self.info["returns"].append(
                    _dep_with_hop(dep, stmt.lineno, "returned to caller"))
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, ast.Raise):
            self._note_raise(stmt)
            if stmt.exc is not None and isinstance(stmt.exc, ast.Call):
                self._eval_arguments_only(stmt.exc)
            return
        if isinstance(stmt, ast.Try):
            self._note_try(stmt)
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            dep = self._eval(stmt.iter)
            for target in ast.walk(stmt.target):
                if isinstance(target, ast.Name):
                    self._bind(target.id, dep)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                dep = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    if isinstance(item.optional_vars, ast.Name):
                        self._bind(item.optional_vars.id, dep)
                        self._record_local_type(
                            [item.optional_vars], item.context_expr)
            self._walk_body(stmt.body)
            return
        if isinstance(stmt, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to track.

    def _record_assignment_targets(self, targets: Sequence[ast.expr],
                                   stmt: ast.stmt, dep: Dep) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.global_decls:
                    self.info["global_writes"].append(
                        {"name": target.id, "line": stmt.lineno,
                         "note": "rebinds module global (global stmt)"})
                else:
                    self._bind(target.id, dep)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for el in target.elts:
                    self._record_assignment_targets([el], stmt, dep)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = target.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if (isinstance(base, ast.Name)
                        and base.id in self.mod.globals
                        and base.id not in self.locals
                        and base.id not in self.all_params):
                    self.info["global_writes"].append(
                        {"name": base.id, "line": stmt.lineno,
                         "note": "writes through module global"})
                self._eval(target.value)

    def _record_local_type(self, targets: Sequence[ast.expr],
                           value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        dotted = _dotted(value.func)
        if dotted is None:
            return
        fq = self._resolve(dotted)
        if not self.mod.looks_like_class(fq):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = fq

    def _note_raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            self.info["raises"].append(
                {"exc": "<reraise>", "line": stmt.lineno})
            return
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        dotted = _dotted(exc)
        name = self._resolve(dotted) if dotted else "<expr>"
        self.info["raises"].append({"exc": name, "line": stmt.lineno})

    def _note_try(self, stmt: ast.Try) -> None:
        guarded: List[str] = []
        for body_stmt in stmt.body:
            for sub in ast.walk(body_stmt):
                if isinstance(sub, ast.Call):
                    dotted = _dotted(sub.func)
                    if dotted is not None:
                        guarded.append(self._resolve(dotted))
        for handler in stmt.handlers:
            types: List[str] = []
            bare = handler.type is None
            type_nodes: List[ast.expr] = []
            if isinstance(handler.type, ast.Tuple):
                type_nodes = list(handler.type.elts)
            elif handler.type is not None:
                type_nodes = [handler.type]
            for node in type_nodes:
                dotted = _dotted(node)
                if dotted is not None:
                    types.append(self._resolve(dotted))
            self.info["handlers"].append({
                "types": types, "bare": bare, "line": handler.lineno,
                "records": _handler_records(handler),
                "guarded": sorted(set(guarded)),
            })


def _handler_records(handler: ast.ExceptHandler) -> bool:
    """RL006's heuristic: the handler re-raises or leaves a record."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Attribute) and node.attr in _RECORDING_ATTRS:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in _RECORDING_CALLS:
                return True
    return False


def _deco_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_locals(fn: ast.AST) -> Set[str]:
    """Names bound in ``fn``'s own scope (excluding global/nonlocal)."""
    out: Set[str] = set()
    args = fn.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        out.add(arg.arg)
    for star in (args.vararg, args.kwarg):
        if star is not None:
            out.add(star.arg)
    skip: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            skip |= set(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            out.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.add(alias.asname or alias.name.split(".")[0])
    return out - skip


class _ModuleExtractor:
    """Extract one file's :class:`ModuleSummary` from its AST."""

    def __init__(self, module: str, path: str, source: str,
                 tree: ast.Module) -> None:
        self.module = module
        self.path = path
        self.tree = tree
        self.imports: Dict[str, str] = {}
        self.globals: Dict[str, str] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.module_defs: Set[str] = set()
        self.pools: List[Dict[str, Any]] = []
        self.imports_pool_executor = False
        self._collect_imports()
        self._collect_module_scope()
        per_line, whole_file = _parse_suppressions(source)
        self.suppress_lines = {str(line): sorted(ids)
                               for line, ids in per_line.items()}
        self.suppress_file = sorted(whole_file)

    # -- module-scope collection --------------------------------------

    def _collect_imports(self) -> None:
        package = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    self.imports[bound] = target
                    if alias.name.endswith("ProcessPoolExecutor"):
                        self.imports_pool_executor = True
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = self.module.split(".")
                    # one level strips the module name itself, further
                    # levels strip packages.
                    parts = parts[:len(parts) - node.level]
                    base = ".".join(parts + ([node.module]
                                             if node.module else []))
                    base = base or package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = (f"{base}.{alias.name}"
                                           if base else alias.name)
                    if alias.name == "ProcessPoolExecutor":
                        self.imports_pool_executor = True

    def _collect_module_scope(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.module_defs.add(node.name)
                self._collect_class(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.globals[target.id] = _mutability(node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    self.globals[node.target.id] = _mutability(node.value)

    def _collect_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted is not None:
                bases.append(self.resolve(dotted))
        methods = [item.name for item in node.body
                   if isinstance(item, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        self.classes[node.name] = {
            "bases": bases, "methods": methods, "attr_types": {},
            "line": node.lineno,
        }

    def resolve(self, dotted: str) -> str:
        """Resolve a dotted name through this module's import bindings."""
        head, _, rest = dotted.partition(".")
        if head in self.imports:
            base = self.imports[head]
            return f"{base}.{rest}" if rest else base
        if head in self.module_defs or head in self.globals:
            return f"{self.module}.{dotted}"
        return dotted

    def looks_like_class(self, fq: str) -> bool:
        """Heuristic: the terminal dotted component is CapWords."""
        terminal = fq.rsplit(".", 1)[-1]
        return bool(terminal) and terminal[0].isupper()

    # -- extraction ---------------------------------------------------

    def run(self, sha: str) -> ModuleSummary:
        self._collect_attr_types()
        functions: Dict[str, Any] = {}
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _FunctionExtractor(self, node, node.name, None).run()
                functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{item.name}"
                        info = _FunctionExtractor(
                            self, item, qual, node.name).run()
                        functions[qual] = info
        self._collect_pools()
        return ModuleSummary(
            module=self.module, path=self.path, sha=sha,
            imports=self.imports, globals=self.globals,
            classes=self.classes, functions=functions, pools=self.pools,
            suppress_lines=self.suppress_lines,
            suppress_file=self.suppress_file)

    def _collect_attr_types(self) -> None:
        """``self.x = SomeClass(...)`` assignments type class attrs."""
        for node in self.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = self.classes[node.name]
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not isinstance(sub.value, ast.Call):
                    continue
                dotted = _dotted(sub.value.func)
                if dotted is None:
                    continue
                fq = self.resolve(dotted)
                if not self.looks_like_class(fq):
                    continue
                for target in sub.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        info["attr_types"][target.attr] = fq

    def _collect_pools(self) -> None:
        """Every ``ProcessPoolExecutor(...)`` construction in the file."""
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            terminal = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if terminal != "ProcessPoolExecutor":
                continue
            has_initializer = any(kw.arg == "initializer"
                                  for kw in node.keywords)
            has_splat = any(kw.arg is None for kw in node.keywords)
            initializer = None
            for kw in node.keywords:
                if kw.arg == "initializer":
                    dotted = _dotted(kw.value)
                    if dotted is not None:
                        initializer = self.resolve(dotted)
            self.pools.append({
                "line": node.lineno,
                "has_initializer": bool(has_initializer or has_splat),
                "initializer": initializer,
            })


def _mutability(value: Optional[ast.expr]) -> str:
    """``"mutable"`` for containers a worker/global write could corrupt."""
    if value is None:
        return "other"
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name in ("dict", "list", "set", "bytearray", "defaultdict",
                    "OrderedDict", "Counter", "deque",
                    "collections.defaultdict", "collections.OrderedDict",
                    "collections.Counter", "collections.deque"):
            return "mutable"
    return "other"


def extract_module(path: str, source: Optional[str] = None) -> ModuleSummary:
    """Parse one file into its :class:`ModuleSummary`."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    sha = hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()
    tree = ast.parse(source, filename=path)
    extractor = _ModuleExtractor(module_name_for(path), path, source, tree)
    return extractor.run(sha)


@dataclass
class FlowIndex:
    """The project-wide symbol index: one summary per module."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: Paths that failed to parse, with the syntax error message.
    broken: Dict[str, str] = field(default_factory=dict)

    def by_path(self, path: str) -> Optional[ModuleSummary]:
        for summary in self.modules.values():
            if summary.path == path:
                return summary
        return None

    def function(self, fq: str) -> Optional[Tuple[ModuleSummary,
                                                  Dict[str, Any]]]:
        """Look up ``module.qualname`` → (summary, function info)."""
        for module, summary in self.modules.items():
            if fq.startswith(module + "."):
                qual = fq[len(module) + 1:]
                info = summary.functions.get(qual)
                if info is not None:
                    return summary, info
        return None


def build_index(paths: Sequence[str],
                cache_path: Optional[str] = None) -> FlowIndex:
    """Build (or incrementally refresh) the flow index for ``paths``.

    With ``cache_path``, previously extracted summaries are reused for
    every file whose blake2b content hash is unchanged, and the updated
    cache is written back — the warm path re-parses nothing.
    """
    cached: Dict[str, Dict[str, Any]] = {}
    if cache_path is not None and os.path.exists(cache_path):
        try:
            with open(cache_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") == INDEX_VERSION:
                cached = payload.get("modules", {})
        except (OSError, ValueError):
            cached = {}
    index = FlowIndex()
    fresh: Dict[str, Dict[str, Any]] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            index.broken[path] = str(exc)
            continue
        sha = hashlib.blake2b(source.encode("utf-8"),
                              digest_size=16).hexdigest()
        entry = cached.get(path)
        if entry is not None and entry.get("sha") == sha:
            summary = ModuleSummary.from_dict(entry)
        else:
            try:
                summary = extract_module(path, source)
            except SyntaxError as exc:
                index.broken[path] = f"syntax error: {exc.msg}"
                continue
        index.modules[summary.module] = summary
        fresh[path] = summary.to_dict()
    if cache_path is not None:
        try:
            with open(cache_path, "w", encoding="utf-8") as handle:
                json.dump({"version": INDEX_VERSION, "modules": fresh},
                          handle, sort_keys=True)
        except OSError:
            pass  # caching is an optimization, never a failure
    return index


def iter_index_functions(index: FlowIndex) -> Iterable[
        Tuple[ModuleSummary, str, Dict[str, Any]]]:
    """Yield ``(summary, fq_name, info)`` for every indexed function."""
    for module, summary in sorted(index.modules.items()):
        for qual in sorted(summary.functions):
            yield summary, f"{module}.{qual}", summary.functions[qual]
