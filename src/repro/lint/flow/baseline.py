"""The ``lint_baseline.json`` ratchet.

A whole-program analyzer landing on a mature tree inevitably starts
with a tail of pre-existing findings that are individually justified
(observability counters on the solve path, say) but should never grow.
The ratchet encodes that contract: the committed baseline records, per
``(rule, path)``, how many findings are tolerated and why; CI fails on
any finding *above* its baselined count, while counts may only go down
(``--update-baseline`` rewrites the file from the current findings,
preserving justifications for surviving entries, which is how the
count ratchets toward zero).

Keying on ``(rule, path)`` rather than exact messages keeps the
baseline stable under line-number drift while still pinning the scope
of every exemption to one rule in one file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.framework import Finding

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "compare_to_baseline",
]

BASELINE_VERSION = 1

Key = Tuple[str, str]  # (rule_id, path)


@dataclass
class Baseline:
    """Tolerated finding counts, keyed on ``(rule, path)``."""

    #: (rule, path) -> tolerated count
    counts: Dict[Key, int] = field(default_factory=dict)
    #: (rule, path) -> human justification (free-form, review-enforced)
    justifications: Dict[Key, str] = field(default_factory=dict)

    def allowance(self, rule_id: str, path: str) -> int:
        return self.counts.get((rule_id, path), 0)


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return Baseline()
    baseline = Baseline()
    for entry in payload.get("entries", ()):
        key = (entry["rule"], entry["path"])
        baseline.counts[key] = int(entry["count"])
        if entry.get("justification"):
            baseline.justifications[key] = entry["justification"]
    return baseline


def write_baseline(findings: Sequence[Finding], path: str,
                   previous: Optional[Baseline] = None) -> Baseline:
    """Write the baseline matching ``findings``; returns it.

    Justifications from ``previous`` survive for entries that still
    have findings; entries whose count dropped to zero disappear (the
    ratchet only ever tightens).
    """
    previous = previous or Baseline()
    grouped: Dict[Key, int] = {}
    for finding in findings:
        key = (finding.rule_id, finding.path)
        grouped[key] = grouped.get(key, 0) + 1
    baseline = Baseline(counts=dict(grouped))
    entries = []
    for key in sorted(grouped):
        justification = previous.justifications.get(
            key, "TODO: justify or fix")
        baseline.justifications[key] = justification
        entries.append({
            "rule": key[0], "path": key[1], "count": grouped[key],
            "justification": justification,
        })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": BASELINE_VERSION, "entries": entries},
                  handle, indent=2, sort_keys=False)
        handle.write("\n")
    return baseline


def compare_to_baseline(findings: Sequence[Finding],
                        baseline: Baseline
                        ) -> Tuple[List[Finding], List[str]]:
    """Apply the ratchet.

    Returns ``(new_findings, notes)``: findings exceeding their
    ``(rule, path)`` allowance (the excess beyond the tolerated count,
    in deterministic order), plus human-readable notes about baseline
    entries that are now overcounted and should be ratcheted down with
    ``--update-baseline``.
    """
    grouped: Dict[Key, List[Finding]] = {}
    for finding in sorted(findings):
        grouped.setdefault((finding.rule_id, finding.path), []).append(
            finding)
    new: List[Finding] = []
    for key in sorted(grouped):
        allowed = baseline.allowance(*key)
        overflow = grouped[key][allowed:]
        new.extend(overflow)
    notes: List[str] = []
    for key in sorted(baseline.counts):
        current = len(grouped.get(key, ()))
        if current < baseline.counts[key]:
            notes.append(
                f"baseline entry {key[0]} {key[1]} tolerates "
                f"{baseline.counts[key]} finding(s) but only {current} "
                f"remain; run --update-baseline to ratchet down")
    return sorted(new), notes
