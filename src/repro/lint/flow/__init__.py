"""Project-wide dataflow analysis for rushlint (the ``--flow`` engine).

The per-file rules (RL001–RL010) see one AST at a time, so an unseeded
generator laundered through a helper module, a mutable global touched
two call hops below a planner entry point, or a swallowed
``SolverBudgetError`` caught under a different import alias all slip
through.  This subpackage closes that gap with a whole-program pass:

* :mod:`~repro.lint.flow.symbols` parses every file once into a
  serializable per-module summary (imports, functions, call sites with
  taint dependencies, globals, raises/handlers, pool submissions) and
  caches the index keyed on file content hashes so warm runs re-parse
  only what changed;
* :mod:`~repro.lint.flow.callgraph` resolves dotted names through
  import chains and re-exports into a project call graph with
  reachability queries;
* :mod:`~repro.lint.flow.taint` runs the interprocedural RNG-provenance
  fixpoint (multi-hop ``source → … → sink`` paths);
* :mod:`~repro.lint.flow.purity` infers purity for everything reachable
  from the solve roots;
* :mod:`~repro.lint.flow.rules_flow` lands the results as rules
  RL011–RL014 on the ordinary :class:`~repro.lint.framework.Finding`
  plumbing, so ``--select``, suppressions and the JSON reporter work
  unchanged;
* :mod:`~repro.lint.flow.baseline` implements the committed
  ``lint_baseline.json`` ratchet (no new findings; count may only go
  down).

Entry point: :func:`~repro.lint.flow.rules_flow.lint_project`.
"""

from repro.lint.flow.baseline import (Baseline, compare_to_baseline,
                                      load_baseline, write_baseline)
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.rules_flow import FlowRule, ProjectContext, lint_project
from repro.lint.flow.symbols import FlowIndex, ModuleSummary, build_index

__all__ = [
    "FlowIndex",
    "ModuleSummary",
    "build_index",
    "CallGraph",
    "FlowRule",
    "ProjectContext",
    "lint_project",
    "Baseline",
    "load_baseline",
    "write_baseline",
    "compare_to_baseline",
]
