"""Purity inference for the solve paths.

RUSH's incremental planner is bit-identical to the cold path only if
everything reachable from the solve entry points is a pure function of
its arguments: no module-global writes, no wall-clock reads, no I/O.
The per-file rules catch direct violations inside the deterministic
packages; this pass walks the *call graph* from every solver root
(functions whose terminal name is in
:attr:`~repro.lint.config.LintConfig.solver_call_names` and that live in
a deterministic package) and flags impurities anywhere they can reach —
including helper modules outside the deterministic set, which is
exactly where per-file analysis goes blind.

Each report carries the witness call chain from a root to the impure
function, so the reader sees *why* the function is held to the purity
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.flow.callgraph import CallGraph

__all__ = ["ImpurityFinding", "analyze_purity"]


@dataclass(frozen=True)
class ImpurityFinding:
    """One impure operation reachable from a solve root."""

    path: str
    line: int
    kind: str  # "global-write" | "wall-clock" | "io"
    detail: str
    function: str  # fq of the function containing the impurity
    chain: Tuple[str, ...]  # witness call chain root -> ... -> function


def _solver_roots(graph: CallGraph, config: LintConfig) -> List[str]:
    roots: List[str] = []
    for fq, (summary, _info) in graph.functions.items():
        terminal = fq.rsplit(".", 1)[-1]
        if terminal not in config.solver_call_names:
            continue
        if config.package_of(summary.path) in config.deterministic_packages:
            roots.append(fq)
    return sorted(roots)


def analyze_purity(graph: CallGraph,
                   config: Optional[LintConfig] = None
                   ) -> List[ImpurityFinding]:
    """Impurities in everything reachable from the solver roots."""
    config = config or LintConfig()
    roots = _solver_roots(graph, config)
    parents = graph.reachable_from(roots)
    findings: List[ImpurityFinding] = []
    for fq in sorted(parents):
        summary, info = graph.functions[fq]
        chain = tuple(graph.chain_to_root(fq, parents))
        for write in info.get("global_writes", ()):
            findings.append(ImpurityFinding(
                path=summary.path, line=write["line"], kind="global-write",
                detail=(f"writes module global '{write['name']}' "
                        f"({write.get('note', 'assignment')})"),
                function=fq, chain=chain))
        for hop in info.get("wall_clock", ()):
            findings.append(ImpurityFinding(
                path=summary.path, line=hop["line"], kind="wall-clock",
                detail=hop["note"], function=fq, chain=chain))
        for hop in info.get("io", ()):
            findings.append(ImpurityFinding(
                path=summary.path, line=hop["line"], kind="io",
                detail=hop["note"], function=fq, chain=chain))
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.kind, f.detail))
