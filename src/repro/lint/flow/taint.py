"""Interprocedural RNG-provenance (taint) analysis.

The extractor (:mod:`repro.lint.flow.symbols`) leaves three kinds of
taint dependency in each function summary — ``source`` (a literal
unseeded-RNG origin), ``param`` (tainted iff a given parameter is), and
``call`` (tainted iff a given callee's return is).  This module closes
them over the call graph with two fixpoints:

* **tainted returns** — the set of functions whose return value derives
  from an unseeded source through any number of hops, each entry
  carrying its witness chain of ``{path, line, note}`` hops;
* **parameter sinks** — functions that *draw* from a given parameter
  (``def step(rng): rng.normal()``), lifted transitively through
  callers that forward their own parameters.

The output is a list of :class:`TaintFinding` records, one per sink
whose cause resolves to an unseeded origin, with the complete
``source → hop → … → sink`` path stitched across files.  Package
filtering and suppression handling happen later, in the RL011 rule —
the analysis itself is configuration-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.symbols import ModuleSummary

__all__ = ["TaintFinding", "TaintAnalysis", "analyze_taint"]

#: A resolved hop: {"path": str, "line": int, "note": str}.
Hop = Dict[str, Any]

#: Fixpoint iteration cap (paranoia; chains are monotone so the loop
#: terminates on its own, but a bound keeps pathological input linear).
_MAX_ROUNDS = 50


@dataclass(frozen=True)
class TaintFinding:
    """One unseeded-provenance violation with its witness path."""

    path: str
    line: int
    message: str
    chain: Tuple[Tuple[str, int, str], ...]  # (path, line, note) hops

    def render_chain(self) -> str:
        hops = [f"{p}:{ln} ({note})" for p, ln, note in self.chain]
        return " -> ".join(hops)


@dataclass
class TaintAnalysis:
    """Fixpoint state shared by the resolution helpers."""

    graph: CallGraph
    #: fq -> witness chain for a tainted return value.
    tainted_returns: Dict[str, List[Hop]] = field(default_factory=dict)
    #: fq -> {param index -> (local hops to the sink, sink line, note)}
    param_sinks: Dict[str, Dict[int, Tuple[List[Hop], int, str]]] = (
        field(default_factory=dict))
    findings: List[TaintFinding] = field(default_factory=list)


def _located(chain: Optional[List[Dict[str, Any]]],
             path: str) -> List[Hop]:
    """Attach the owning file to intra-module hops lacking a path."""
    out: List[Hop] = []
    for hop in chain or ():
        out.append({"path": hop.get("path", path),
                    "line": hop["line"], "note": hop["note"]})
    return out


def _callee_params(analysis: TaintAnalysis, fq: str) -> List[str]:
    hit = analysis.graph.functions.get(fq)
    if hit is None:
        return []
    return list(hit[1].get("params", ()))


def _arg_dep_at(call: Dict[str, Any], params: List[str],
                index: int) -> Optional[Dict[str, Any]]:
    """The dep flowing into positional parameter ``index`` at a site."""
    args = call.get("args", ())
    if index < len(args):
        return args[index]
    if 0 <= index < len(params):
        return call.get("kwargs", {}).get(params[index])
    return None


def _resolve_dep(analysis: TaintAnalysis, summary: ModuleSummary,
                 info: Dict[str, Any], dep: Optional[Dict[str, Any]],
                 depth: int = 0) -> Optional[List[Hop]]:
    """Witness chain for ``dep`` if it is (currently known) tainted."""
    if dep is None or depth > 8:
        return None
    kind = dep.get("kind")
    local = _located(dep.get("chain"), summary.path)
    if kind == "source":
        return local
    if kind == "call":
        callee = analysis.graph.resolve(dep.get("callee", ""))
        if callee is None:
            return None
        ret = analysis.tainted_returns.get(callee)
        if ret is not None:
            return list(ret) + local
        # Identity-style laundering: the callee returns one of its own
        # parameters — tainted iff the matching argument at THIS site is.
        hit = analysis.graph.functions.get(callee)
        if hit is None:
            return None
        callee_summary, callee_info = hit
        site = _find_call_record(info, dep)
        if site is None:
            return None
        params = list(callee_info.get("params", ()))
        for ret_dep in callee_info.get("returns", ()):
            if ret_dep.get("kind") != "param":
                continue
            arg = _arg_dep_at(site, params, ret_dep.get("index", -1))
            upstream = _resolve_dep(analysis, summary, info, arg, depth + 1)
            if upstream is not None:
                through = _located(ret_dep.get("chain"),
                                   callee_summary.path)
                return upstream + through + local
        return None
    if kind == "param":
        return None  # resolved at call sites via param-sink lifting
    return None


def _find_call_record(info: Dict[str, Any],
                      dep: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    for call in info.get("calls", ()):
        if (call.get("callee") == dep.get("callee")
                and call.get("line") == dep.get("line")):
            return call
    return None


def _run_return_fixpoint(analysis: TaintAnalysis) -> None:
    """Propagate tainted returns until no new function joins the set."""
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fq, (summary, info) in analysis.graph.functions.items():
            if fq in analysis.tainted_returns:
                continue
            for ret_dep in info.get("returns", ()):
                chain = _resolve_dep(analysis, summary, info, ret_dep)
                if chain is not None:
                    analysis.tainted_returns[fq] = chain
                    changed = True
                    break
        if not changed:
            return


def _collect_param_sinks(analysis: TaintAnalysis) -> None:
    """Seed + transitively lift "this function draws from param i"."""
    for fq, (summary, info) in analysis.graph.functions.items():
        for sink in info.get("sinks", ()):
            cause = sink.get("cause") or {}
            if cause.get("kind") != "param":
                continue
            index = cause.get("index", -1)
            if index < 0:
                continue
            hops = _located(cause.get("chain"), summary.path)
            slots = analysis.param_sinks.setdefault(fq, {})
            if index not in slots:
                slots[index] = (hops, sink["line"], sink["note"])
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fq, (summary, info) in analysis.graph.functions.items():
            for call in info.get("calls", ()):
                callee = analysis.graph.resolve(call.get("callee") or "")
                if callee is None or callee not in analysis.param_sinks:
                    continue
                params = _callee_params(analysis, callee)
                for index in analysis.param_sinks[callee]:
                    arg = _arg_dep_at(call, params, index)
                    if arg is None or arg.get("kind") != "param":
                        continue
                    my_index = arg.get("index", -1)
                    if my_index < 0:
                        continue
                    slots = analysis.param_sinks.setdefault(fq, {})
                    if my_index in slots:
                        continue
                    inner_hops, line, note = (
                        analysis.param_sinks[callee][index])
                    forward = _located(arg.get("chain"), summary.path)
                    forward.append({
                        "path": summary.path, "line": call["line"],
                        "note": f"forwarded to {_short(callee)}()"})
                    slots[my_index] = (forward + inner_hops, line, note)
                    changed = True
        if not changed:
            return


def _short(fq: str) -> str:
    return fq.rsplit(".", 1)[-1]


def _sink_findings(analysis: TaintAnalysis) -> None:
    """Emit a finding for every sink whose cause resolves as tainted."""
    for fq, (summary, info) in sorted(analysis.graph.functions.items()):
        # Direct sinks: a draw on a value whose provenance resolves.
        for sink in info.get("sinks", ()):
            chain = _resolve_dep(analysis, summary, info,
                                 sink.get("cause"))
            if chain is None:
                continue
            full = chain + [{"path": summary.path, "line": sink["line"],
                             "note": sink["note"]}]
            analysis.findings.append(_make_finding(
                summary.path, sink["line"], sink["note"], full))
        # Call sites feeding a tainted argument into a param-sink.
        for call in info.get("calls", ()):
            callee = analysis.graph.resolve(call.get("callee") or "")
            if callee is None or callee not in analysis.param_sinks:
                continue
            params = _callee_params(analysis, callee)
            callee_path = analysis.graph.functions[callee][0].path
            for index, (inner_hops, sink_line, note) in sorted(
                    analysis.param_sinks[callee].items()):
                arg = _arg_dep_at(call, params, index)
                chain = _resolve_dep(analysis, summary, info, arg)
                if chain is None:
                    continue
                handoff = [{"path": summary.path, "line": call["line"],
                            "note": f"passed into {_short(callee)}()"}]
                full = (chain + handoff + inner_hops
                        + [{"path": callee_path, "line": sink_line,
                            "note": note}])
                analysis.findings.append(_make_finding(
                    summary.path, call["line"],
                    f"argument to {_short(callee)}() has unseeded-RNG "
                    f"provenance; it is drawn at "
                    f"{callee_path}:{sink_line}", full))


def _make_finding(path: str, line: int, note: str,
                  hops: List[Hop]) -> TaintFinding:
    chain = tuple((h["path"], h["line"], h["note"]) for h in hops)
    return TaintFinding(path=path, line=line, message=note, chain=chain)


def analyze_taint(graph: CallGraph) -> TaintAnalysis:
    """Run both fixpoints and collect every provenance violation."""
    analysis = TaintAnalysis(graph=graph)
    _run_return_fixpoint(analysis)
    _collect_param_sinks(analysis)
    _sink_findings(analysis)
    # Deterministic order + dedup (a sink can resolve through both the
    # direct and the param-lifted route to the same witness).
    unique = sorted(set(analysis.findings),
                    key=lambda f: (f.path, f.line, f.message))
    analysis.findings = unique
    return analysis
