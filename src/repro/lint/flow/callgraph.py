"""Project call graph over the flow index.

Call sites in :class:`~repro.lint.flow.symbols.ModuleSummary` carry
locally-resolved dotted names (``repro.core.wcde.solve_wcde``,
``repro.core.RushPlanner.plan``, …).  This module finishes the job:
it chases re-exports through package ``__init__`` import maps, resolves
method calls through class definitions (including inherited methods),
and materializes an edge set with reachability queries that remember
*how* each function was reached so messages can cite a call chain.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.flow.symbols import FlowIndex, ModuleSummary

__all__ = ["CallGraph"]

#: Node identity: fully-resolved ``module.qualname``.
Node = str


class CallGraph:
    """Resolved call edges + reachability over a :class:`FlowIndex`."""

    def __init__(self, index: FlowIndex) -> None:
        self.index = index
        #: fq function name -> (owning summary, function info dict)
        self.functions: Dict[Node, Tuple[ModuleSummary, Dict[str, Any]]] = {}
        #: fq class name -> (owning summary, class info dict)
        self.classes: Dict[str, Tuple[ModuleSummary, Dict[str, Any]]] = {}
        self._resolve_cache: Dict[str, Optional[Node]] = {}
        for module, summary in index.modules.items():
            for qual, info in summary.functions.items():
                self.functions[f"{module}.{qual}"] = (summary, info)
            for cls, cinfo in summary.classes.items():
                self.classes[f"{module}.{cls}"] = (summary, cinfo)
        #: caller fq -> list of (callee fq, line)
        self.edges: Dict[Node, List[Tuple[Node, int]]] = {}
        for node, (summary, info) in self.functions.items():
            out: List[Tuple[Node, int]] = []
            for call in info["calls"]:
                callee = call.get("callee")
                if callee is None:
                    continue
                resolved = self.resolve(callee)
                if resolved is not None:
                    out.append((resolved, call["line"]))
            self.edges[node] = out

    # -- name resolution ----------------------------------------------

    def resolve(self, fq: str) -> Optional[Node]:
        """Resolve a dotted name to a known function node, if any.

        Handles direct hits, re-exports through package ``__init__``
        modules (``repro.core.solve_wcde`` → ``repro.core.wcde.
        solve_wcde``), class constructor calls (→ ``Cls.__init__`` when
        defined), and method lookup through base classes.
        """
        if fq in self._resolve_cache:
            return self._resolve_cache[fq]
        self._resolve_cache[fq] = None  # cycle guard
        result = self._resolve_uncached(fq, set())
        self._resolve_cache[fq] = result
        return result

    def _resolve_uncached(self, fq: str, seen: Set[str]) -> Optional[Node]:
        if fq in seen:
            return None
        seen.add(fq)
        if fq in self.functions:
            return fq
        # Constructor call: Cls(...) targets Cls.__init__ when defined.
        if fq in self.classes:
            init = self._method_on(fq, "__init__", set())
            return init
        # Split into (module prefix, remainder) at the longest prefix
        # that names an indexed module.
        module, rest = self._split_module(fq)
        if module is None or not rest:
            return None
        summary = self.index.modules[module]
        parts = rest.split(".")
        head = parts[0]
        # Method on a class defined in this module (maybe inherited).
        if head in summary.classes and len(parts) >= 2:
            hit = self._method_on(f"{module}.{head}", parts[1], set())
            if hit is not None:
                return hit
        # Re-export: the module's import map forwards the name.
        if head in summary.imports:
            forwarded = summary.imports[head]
            target = ".".join([forwarded] + parts[1:])
            return self._resolve_uncached(target, seen)
        return None

    def _split_module(self, fq: str) -> Tuple[Optional[str], str]:
        parts = fq.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.index.modules:
                return candidate, ".".join(parts[cut:])
        return None, fq

    def _method_on(self, class_fq: str, method: str,
                   seen: Set[str]) -> Optional[Node]:
        """Find ``method`` on ``class_fq`` or its (resolvable) bases."""
        if class_fq in seen or class_fq not in self.classes:
            return None
        seen.add(class_fq)
        summary, cinfo = self.classes[class_fq]
        if method in cinfo.get("methods", ()):
            cls_name = class_fq.rsplit(".", 1)[-1]
            node = f"{summary.module}.{cls_name}.{method}"
            if node in self.functions:
                return node
        for base in cinfo.get("bases", ()):
            base_fq = self._resolve_class(base)
            if base_fq is not None:
                hit = self._method_on(base_fq, method, seen)
                if hit is not None:
                    return hit
        return None

    def _resolve_class(self, fq: str) -> Optional[str]:
        if fq in self.classes:
            return fq
        module, rest = self._split_module(fq)
        if module is None or not rest:
            return None
        summary = self.index.modules[module]
        parts = rest.split(".")
        head = parts[0]
        if head in summary.classes and len(parts) == 1:
            return f"{module}.{head}"
        if head in summary.imports:
            forwarded = summary.imports[head]
            return self._resolve_class(".".join([forwarded] + parts[1:]))
        return None

    # -- class hierarchy ----------------------------------------------

    def is_subclass_of(self, class_fq: str, ancestor_fq: str) -> bool:
        """Whether ``class_fq`` is ``ancestor_fq`` or derives from it."""
        resolved = self._resolve_class(class_fq)
        target = self._resolve_class(ancestor_fq) or ancestor_fq
        if resolved is None:
            return class_fq == ancestor_fq
        seen: Set[str] = set()
        queue = deque([resolved])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            if current == target:
                return True
            if current in self.classes:
                for base in self.classes[current][1].get("bases", ()):
                    base_fq = self._resolve_class(base)
                    queue.append(base_fq if base_fq is not None else base)
        return False

    # -- reachability -------------------------------------------------

    def reachable_from(self, roots: Iterable[Node]) -> Dict[Node,
                                                            Optional[Node]]:
        """BFS closure of ``roots``; maps node → parent (roots → None).

        Parent pointers let callers reconstruct one witness call chain
        from any reached function back to a root for diagnostics.
        """
        parent: Dict[Node, Optional[Node]] = {}
        queue: deque = deque()
        for root in roots:
            if root in self.functions and root not in parent:
                parent[root] = None
                queue.append(root)
        while queue:
            node = queue.popleft()
            for callee, _line in self.edges.get(node, ()):
                if callee not in parent:
                    parent[callee] = node
                    queue.append(callee)
        return parent

    def chain_to_root(self, node: Node,
                      parent: Dict[Node, Optional[Node]]) -> List[Node]:
        """Witness path ``[root, ..., node]`` from a reachability map."""
        chain: List[Node] = []
        current: Optional[Node] = node
        while current is not None:
            chain.append(current)
            current = parent.get(current)
        return list(reversed(chain))

    def callers_of(self, target: Node) -> List[Tuple[Node, int]]:
        """Every (caller, line) with an edge into ``target``."""
        out: List[Tuple[Node, int]] = []
        for caller, callees in self.edges.items():
            for callee, line in callees:
                if callee == target:
                    out.append((caller, line))
        return sorted(out)
