"""Rendering lint findings: the text and JSON reporters.

The text form is the compiler-style ``path:line:col: RLnnn message``
stream humans and editors parse; the JSON form is a versioned,
schema-stable document CI artifacts and downstream tooling consume
(``tests/test_lint.py`` pins the schema).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.framework import RULE_REGISTRY, Finding

__all__ = ["render_text", "render_json", "render_rule_catalog",
           "JSON_SCHEMA_VERSION"]

#: Bumped whenever a field is added to or removed from the JSON report.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], *,
                checked_files: int = 0) -> str:
    """One line per finding plus a summary tail line."""
    lines = [finding.render() for finding in findings]
    noun = "file" if checked_files == 1 else "files"
    if findings:
        by_rule = _counts(findings)
        breakdown = ", ".join(f"{rule}: {count}"
                              for rule, count in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) in {checked_files} "
                     f"{noun} ({breakdown})")
    else:
        lines.append(f"clean: 0 findings in {checked_files} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *,
                checked_files: int = 0) -> str:
    """The versioned machine-readable report (sorted, reproducible)."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": checked_files,
        "total": len(findings),
        "counts": _counts(findings),
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The ``--list-rules`` table: id, name, rationale."""
    lines = []
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        lines.append(f"{rule_id}  {rule.name}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def _counts(findings: Sequence[Finding]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for finding in findings:
        out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
    return out
