"""Per-run configuration for rushlint.

The interesting part is *path classification*: most rules only apply to
code that must be deterministic (the scheduler core, the cluster
simulator, the fault injectors, the workload generator) or to benchmark
fixtures.  Classification is data, not code, so tests can force a
fixture snippet into any context and downstream projects can widen the
deterministic set as they grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Optional, Tuple

__all__ = ["LintConfig", "DETERMINISTIC_PACKAGES", "ANNOTATION_PACKAGES",
           "TEST_MARKERS"]

#: Sub-packages of ``repro`` whose behaviour must be a pure function of
#: (inputs, seed): no wall clocks, no unseeded randomness.
#:
#: ``service`` is the one deliberate carve-out: its real-time clock
#: (``repro.service.clock.RealTimeClock``) is the single sanctioned
#: wall-clock reader in the codebase — a daemon has to pace slots
#: against real time.  The exemption is *positional*, not a weakening
#: of RL002: the same source forced into a deterministic package still
#: fires (pinned by ``tests/test_clock.py``), and the service engine's
#: decisions remain a pure function of (config, journal) because only
#: integer slots cross the Clock protocol into the core.
DETERMINISTIC_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "cluster", "faults", "workload", "obs"})

#: Sub-packages whose public API must be fully type-annotated (RL007) —
#: the same set ``mypy --strict`` gates in CI (the ratchet list in
#: ``pyproject.toml``).
ANNOTATION_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "estimation", "workload", "obs", "faults"})

#: Path fragments marking benchmark/fixture files for RL008.
BENCHMARK_MARKERS: Tuple[str, ...] = ("benchmarks", "bench_", "fixtures")

#: Path fragments marking test files (RL003's assert exemption).
TEST_MARKERS: Tuple[str, ...] = ("tests", "test_")


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run.

    ``select``/``ignore`` filter by rule id (``select=None`` means all
    registered rules).  ``package_override`` forces every file into one
    package classification — used by the fixture tests and available via
    ``rush lint --as-package`` for checking out-of-tree snippets.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    deterministic_packages: FrozenSet[str] = DETERMINISTIC_PACKAGES
    annotation_packages: FrozenSet[str] = ANNOTATION_PACKAGES
    benchmark_markers: Tuple[str, ...] = BENCHMARK_MARKERS
    test_markers: Tuple[str, ...] = TEST_MARKERS
    package_override: Optional[str] = None
    #: Treat every linted file as a benchmark fixture (RL008 context).
    benchmark_override: bool = False
    #: Function-name suffixes whose calls are assumed float-valued by
    #: RL003, beyond float literals (see the rule's docstring).
    float_call_names: FrozenSet[str] = frozenset(
        {"value", "max_value", "min_value", "mean", "std", "var",
         "cdf_at", "kl_divergence", "total_utility", "demand_at",
         "mean_demand", "quantile_demand", "utility_vector",
         "hit_rate", "completion"})
    #: Attribute names assumed float-valued by RL003.
    float_attr_names: FrozenSet[str] = frozenset(
        {"utility_value", "predicted_utility", "kl", "eta",
         "robust_demand", "reference_demand", "demand", "worst_kl",
         "planned_completion"})
    #: Callables whose invocation marks a ``try`` body as a solver call
    #: site for RL006.
    solver_call_names: FrozenSet[str] = field(
        default_factory=lambda: frozenset(
            {"solve_onion", "solve_wcde", "solve_rem", "map_time_slots",
             "plan", "robust_demand"}))

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True

    # -- path classification -------------------------------------------

    def package_of(self, path: str) -> str:
        """The ``repro`` sub-package a path belongs to (``""`` if none).

        ``src/repro/core/wcde.py`` -> ``"core"``; a path with no
        ``repro`` component classifies as its first directory component,
        so checking a bare tree like ``core/rem.py`` still works.
        """
        if self.package_override is not None:
            return self.package_override
        parts = Path(path).parts
        if "repro" in parts:
            idx = len(parts) - 1 - parts[::-1].index("repro")
            if idx + 1 < len(parts) - 1:
                return parts[idx + 1]
            return ""
        return parts[0] if len(parts) > 1 else ""

    def is_deterministic(self, path: str) -> bool:
        return self.package_of(path) in self.deterministic_packages

    def is_annotated_api(self, path: str) -> bool:
        return self.package_of(path) in self.annotation_packages

    def is_benchmark(self, path: str) -> bool:
        if self.benchmark_override:
            return True
        name = Path(path).name
        parts = Path(path).parts
        for marker in self.benchmark_markers:
            if marker in parts or name.startswith(marker):
                return True
        return False

    def is_test(self, path: str) -> bool:
        """True for test files: a ``tests`` path component or a
        ``test_*`` filename."""
        name = Path(path).name
        parts = Path(path).parts
        for marker in self.test_markers:
            if marker in parts or name.startswith(marker):
                return True
        return False
