"""Command-line interface for the RUSH reproduction.

The subcommands cover the workflow an operator would actually use:

``rush generate``
    Draw a Section V-B workload and freeze it to a JSON-lines trace.
``rush simulate``
    Replay a trace under one scheduling policy and print the outcome
    (optionally under an injected fault plan: ``--faults spec.json``;
    ``--span-trace``/``--metrics``/``--calibration`` switch on the
    repro.obs instruments for the run).
``rush metrics``
    Run a seeded simulation with the metrics registry enabled and print
    the Prometheus text exposition (deterministic per seed).
``rush compare``
    Run several policies over the same workload (the Figure 4/6 loop)
    and print the comparison tables.
``rush plan``
    One offline robust planning round over the jobs of a trace, printing
    the Figure 2 status table (optionally as HTML or JSON).
``rush chaos``
    Sweep a fault plan through a ladder of intensities and print the
    policy's utility/SLO degradation curve.
``rush ingest``
    Parse a Standard Workload Format (SWF) archive, map it onto job
    specs, and freeze the result as a JSON-lines trace.
``rush scenarios``
    The frozen scenario library: ``list`` the shipped scenarios,
    ``run`` one (or ``all``) as a seeded differential benchmark of RUSH
    against the baselines, with an optional per-scenario JSON artifact.
``rush lint``
    Run the rushlint static-analysis pass (domain invariants: seeded
    RNG streams, no wall clocks, float-equality discipline, ...) over a
    source tree; exit 0 means clean.
``rush serve``
    Run the asyncio scheduler daemon: job submit/cancel/query over
    HTTP, an NDJSON status stream, Prometheus ``/metrics``, and
    journal-replay snapshots (``--snapshot``/``--restore``).  With
    ``--smoke`` it instead runs the CI equivalence battery: replay a
    scenario through the HTTP API and diff the outcome digest against
    the simulator path.

Installed as the ``rush`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.analysis.calibration import calibration_report
from repro.analysis.chaos import chaos_sweep
from repro.analysis.experiment import Experiment
from repro.analysis.report import format_table
from repro.core.planner import PlannerJob, RushPlanner
from repro.errors import ReproError
from repro.estimation.gaussian import GaussianEstimator
from repro.faults import FaultPlan, default_chaos_plan, load_fault_plan
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.schedulers import (
    CapacityScheduler,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
    SpeculativeScheduler,
)
from repro.cluster.simulator import run_simulation
from repro.analysis.scenario import render_scenario_text, save_scenario_json
from repro.service import (RealTimeClock, ServiceConfig, ServiceDaemon,
                           ServiceEngine, load_snapshot, open_journal,
                           restore_engine, run_service_smoke,
                           tenants_from_dicts)
from repro.service.smoke import SMOKE_SCENARIO, run_crash_smoke
from repro.ui.status import (render_fault_text, render_profile_text,
                             render_status_html, render_status_text)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import (DEFAULT_BASELINES, KNOWN_BASELINES,
                                      SCENARIOS, run_scenario)
from repro.workload.swf import SwfMapConfig, load_swf_workload
from repro.workload.trace import load_trace, save_trace

__all__ = ["main", "build_parser"]

POLICY_FACTORIES = {
    "fifo": FifoScheduler,
    "edf": EdfScheduler,
    "fair": FairScheduler,
    "capacity": CapacityScheduler,
    "rrh": RrhScheduler,
    "rush": RushScheduler,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rush",
        description="RUSH robust scheduler reproduction (ICDCS 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="draw a workload trace")
    gen.add_argument("--out", required=True, help="trace file to write")
    gen.add_argument("--jobs", type=int, default=100)
    gen.add_argument("--capacity", type=int, default=48)
    gen.add_argument("--ratio", type=float, default=1.5,
                     help="budget / benchmarked-runtime ratio")
    gen.add_argument("--interarrival", type=float, default=130.0)
    gen.add_argument("--time-scale", type=float, default=1.0)
    gen.add_argument("--failure-prob", type=float, default=0.0)
    gen.add_argument("--seed", type=int, default=0)

    simulate = sub.add_parser("simulate", help="replay a trace under one policy")
    simulate.add_argument("--trace", required=True)
    simulate.add_argument("--capacity", type=int, default=48)
    simulate.add_argument("--policy", choices=sorted(POLICY_FACTORIES),
                          default="rush")
    simulate.add_argument("--speculative", action="store_true",
                          help="wrap the policy with speculative execution")
    simulate.add_argument("--profile", action="store_true",
                          help="print the planner-cost profile after the "
                               "run (RUSH policy only)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="failure-injection seed")
    simulate.add_argument("--faults",
                          help="JSON fault-plan spec to inject "
                               "(see repro.faults.plan)")
    simulate.add_argument("--intensity", type=float, default=None,
                          help="scale the fault plan's rates by this factor")
    simulate.add_argument("--max-slots", type=int, default=1_000_000,
                          help="slot cap; a run hitting it is reported as "
                               "censored")
    simulate.add_argument("--span-trace", metavar="PATH",
                          help="record solver spans and write them as "
                               "JSONL to PATH (slot-indexed, "
                               "deterministic)")
    simulate.add_argument("--metrics", action="store_true",
                          help="collect the repro.obs metrics registry "
                               "and print it (Prometheus text) after the "
                               "run")
    simulate.add_argument("--metrics-out", metavar="PATH",
                          help="also write the Prometheus metrics text "
                               "to PATH (implies --metrics collection)")
    simulate.add_argument("--calibration", action="store_true",
                          help="track predicted-vs-actual completions "
                               "and print the calibration report "
                               "(RUSH policy only)")
    simulate.add_argument("--parallel", type=int, default=0, metavar="N",
                          help="shard RUSH's WCDE presolve across N "
                               "worker processes (0 = serial; plans are "
                               "byte-identical either way; RUSH policy "
                               "only)")
    simulate.add_argument("--batch", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="vectorized batch WCDE stage (default); "
                               "--no-batch restores the scalar per-job "
                               "solve for A/B runs (RUSH policy only)")
    simulate.add_argument("--wcde-store", metavar="PATH",
                          help="sqlite file backing the parallel WCDE "
                               "cache so solves are shared across runs "
                               "(requires --parallel)")

    metrics = sub.add_parser(
        "metrics", help="run a seeded simulation with the metrics "
                        "registry enabled and print Prometheus text")
    metrics.add_argument("--trace", required=True)
    metrics.add_argument("--capacity", type=int, default=48)
    metrics.add_argument("--policy", choices=sorted(POLICY_FACTORIES),
                         default="rush")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--faults",
                         help="JSON fault-plan spec to inject")
    metrics.add_argument("--intensity", type=float, default=None,
                         help="scale the fault plan's rates by this factor")
    metrics.add_argument("--max-slots", type=int, default=1_000_000)
    metrics.add_argument("--out", help="also write the text exposition here")

    compare = sub.add_parser("compare", help="run several policies and compare")
    compare.add_argument("--jobs", type=int, default=25)
    compare.add_argument("--capacity", type=int, default=8)
    compare.add_argument("--ratio", type=float, default=1.5)
    compare.add_argument("--interarrival", type=float, default=170.0)
    compare.add_argument("--time-scale", type=float, default=0.25)
    compare.add_argument("--failure-prob", type=float, default=0.0)
    compare.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    compare.add_argument("--policies", nargs="+",
                         choices=sorted(POLICY_FACTORIES),
                         default=["fifo", "edf", "rrh", "rush"])

    plan = sub.add_parser("plan", help="one offline robust planning round")
    plan.add_argument("--trace", required=True)
    plan.add_argument("--capacity", type=int, default=48)
    plan.add_argument("--theta", type=float, default=0.9)
    plan.add_argument("--delta", type=float, default=0.7)
    plan.add_argument("--html", help="also write the status page to this file")
    plan.add_argument("--json", dest="json_out",
                      help="also write the plan as JSON to this file")

    chaos = sub.add_parser(
        "chaos", help="sweep fault intensities and print degradation curves")
    chaos.add_argument("--trace", required=True)
    chaos.add_argument("--capacity", type=int, default=48)
    chaos.add_argument("--policy", choices=sorted(POLICY_FACTORIES),
                       default="rush")
    chaos.add_argument("--speculative", action="store_true",
                       help="wrap the policy with speculative execution")
    chaos.add_argument("--faults",
                       help="JSON fault-plan spec to sweep (default: the "
                            "built-in all-injector chaos plan)")
    chaos.add_argument("--intensities", type=float, nargs="+",
                       default=[0.0, 0.5, 1.0, 2.0],
                       help="fault-rate multipliers, one sweep point each")
    chaos.add_argument("--max-slots", type=int, default=20_000,
                       help="slot cap per sweep point (incomplete jobs are "
                            "censored at the cap)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--out", help="write the sweep report JSON here")

    ingest = sub.add_parser(
        "ingest", help="parse an SWF archive into a JSON-lines trace")
    ingest.add_argument("--swf", required=True,
                        help="Standard Workload Format archive to parse")
    ingest.add_argument("--out", required=True, help="trace file to write")
    ingest.add_argument("--capacity", type=int, default=16,
                        help="simulated cluster width the jobs are scaled to")
    ingest.add_argument("--slot-seconds", type=float, default=60.0,
                        help="trace seconds per simulator slot")
    ingest.add_argument("--max-tasks", type=int, default=16,
                        help="cap on tasks per mapped job")
    ingest.add_argument("--ratio", type=float, default=2.0,
                        help="budget / benchmarked-runtime ratio")
    ingest.add_argument("--max-jobs", type=int, default=None,
                        help="keep only the first N mappable jobs")
    ingest.add_argument("--lenient", action="store_true",
                        help="skip malformed records and unknown header "
                             "directives instead of raising")

    scen = sub.add_parser(
        "scenarios", help="the frozen scenario library (list / run)")
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser("list", help="list the shipped scenarios")
    srun = scen_sub.add_parser(
        "run", help="run one scenario (or 'all') as a differential "
                    "benchmark of RUSH vs the baselines")
    srun.add_argument("name", choices=sorted(SCENARIOS) + ["all"])
    srun.add_argument("--seed", type=int, default=0)
    srun.add_argument("--full", action="store_true",
                      help="paper-scale variant (default: the fast CI "
                           "variant)")
    srun.add_argument("--baselines", nargs="+",
                      choices=sorted(KNOWN_BASELINES),
                      default=list(DEFAULT_BASELINES))
    srun.add_argument("--json", dest="json_out",
                      help="write the scenario's JSON artifact here "
                           "(single scenario only)")
    srun.add_argument("--out-dir",
                      help="write per-scenario JSON artifacts "
                           "<name>-<variant>-seed<N>.json into this "
                           "directory")

    lint = sub.add_parser(
        "lint", help="run the rushlint domain static-analysis pass")
    add_lint_arguments(lint)

    serve = sub.add_parser(
        "serve", help="run the asyncio scheduler daemon (HTTP API)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8350)
    serve.add_argument("--capacity", type=int, default=16)
    serve.add_argument("--policy",
                       choices=sorted(POLICY_FACTORIES), default="rush")
    serve.add_argument("--seed", type=int, default=0,
                       help="fault-stream seed")
    serve.add_argument("--slot-seconds", type=float, default=1.0,
                       help="wall seconds per scheduling slot")
    serve.add_argument("--manual", action="store_true",
                       help="no real-time clock: slots advance only "
                            "through POST /tick (deterministic mode)")
    serve.add_argument("--scheduler-options", metavar="JSON",
                       help="policy keyword options as a JSON object, "
                            'e.g. \'{"theta": 0.95}\'')
    serve.add_argument("--tenants", metavar="JSON",
                       help="tenant list as JSON, e.g. "
                            '\'[{"name": "a", "share": 0.5}, '
                            '{"name": "b", "share": 0.5}]\'')
    serve.add_argument("--chaos", action="store_true",
                       help="enable the /chaos fault-injection endpoints")
    serve.add_argument("--snapshot", metavar="PATH",
                       help="persist POST /snapshot to this file")
    serve.add_argument("--restore", action="store_true",
                       help="restore state from --snapshot at boot "
                            "(journal replay, digest-verified)")
    serve.add_argument("--journal-dir", metavar="DIR",
                       help="durable write-ahead journal: every "
                            "submit/cancel/tick is fsynced to DIR before "
                            "it is applied, and an existing journal is "
                            "recovered (digest-verified) at boot")
    serve.add_argument("--crash-smoke", action="store_true",
                       help="run the crash-recovery smoke battery "
                            "instead of serving: boot a journaled "
                            "daemon, kill -9 it mid-stream, restart, "
                            "and diff the decision digest")
    serve.add_argument("--smoke", action="store_true",
                       help="run the CI equivalence battery instead of "
                            "serving: replay a scenario through the "
                            "HTTP API and diff digests vs the "
                            "simulator path")
    serve.add_argument("--scenario", default=SMOKE_SCENARIO,
                       choices=sorted(SCENARIOS),
                       help="scenario for --smoke")
    serve.add_argument("--full", action="store_true",
                       help="paper-scale --smoke variant")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = WorkloadConfig(
        n_jobs=args.jobs, capacity=args.capacity,
        mean_interarrival=args.interarrival, budget_ratio=args.ratio,
        time_scale=args.time_scale, failure_prob=args.failure_prob)
    specs = WorkloadGenerator(config, seed=args.seed).generate()
    save_trace(specs, args.out)
    total = sum(s.total_work for s in specs)
    print(f"wrote {len(specs)} jobs ({total} container-slots of work) "
          f"to {args.out}")
    return 0


def _build_fault_plan(args: argparse.Namespace,
                      default: Optional[FaultPlan] = None
                      ) -> Optional[FaultPlan]:
    """The fault plan a CLI run asked for, intensity applied; None = legacy."""
    plan = load_fault_plan(args.faults) if args.faults else default
    intensity = getattr(args, "intensity", None)
    if intensity is not None:
        if plan is None:
            plan = FaultPlan.default()
        plan = plan.scaled(intensity)
    return plan


def _cmd_simulate(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)
    wants_planner_knobs = bool(args.parallel or not args.batch
                               or args.wcde_store)
    if wants_planner_knobs and args.policy != "rush":
        raise ReproError(
            "--parallel/--no-batch/--wcde-store tune the RUSH planner; "
            f"they do nothing under --policy {args.policy}")
    if args.wcde_store and not args.parallel:
        raise ReproError("--wcde-store requires --parallel N")
    if wants_planner_knobs:
        policy = RushScheduler(parallel_workers=max(args.parallel, 0),
                               batch_wcde=args.batch,
                               wcde_store_path=args.wcde_store,
                               parallel_seed=args.seed)
    else:
        policy = POLICY_FACTORIES[args.policy]()
    scheduler = SpeculativeScheduler(policy) if args.speculative else policy
    faults = _build_fault_plan(args)
    want_metrics = bool(args.metrics or args.metrics_out)
    want_obs = bool(args.span_trace or want_metrics or args.calibration)
    handle = None
    if want_obs:
        handle = obs.enable(trace=bool(args.span_trace),
                            metrics=want_metrics,
                            ledger=bool(args.calibration))
    try:
        result = run_simulation(specs, args.capacity, scheduler,
                                seed=args.seed, max_slots=args.max_slots,
                                faults=faults)
        return _report_simulate(args, result, policy, faults, handle)
    finally:
        closer = getattr(policy, "close", None)
        if closer is not None:
            closer()
        if want_obs:
            obs.reset()


def _report_simulate(args: argparse.Namespace, result, policy,
                     faults: Optional[FaultPlan],
                     handle: Optional[obs.ObsHandle]) -> int:
    rows = [[r.job_id, r.sensitivity, r.arrival, r.runtime, r.latency,
             r.utility_value, "yes" if r.completed else "NO"]
            for r in result.records]
    print(format_table(
        ["job", "class", "arrived", "runtime", "latency", "utility",
         "completed"], rows, digits=1))
    print(f"\npolicy={result.scheduler_name}  "
          f"completed={result.completed_count}/{len(result.records)}  "
          f"utilization={result.utilization:.2f}  "
          f"task failures={result.task_failures}  "
          f"speculative launches={result.speculative_launches}  "
          f"total utility={result.total_utility():.1f}")
    if faults is not None or result.timed_out:
        print("\n" + render_fault_text(result))
    if args.profile:
        profile = getattr(policy, "profile", None)
        if profile is None:
            print("\n--profile requires a planning policy "
                  f"(got {args.policy}); nothing to report")
        else:
            print("\n" + render_profile_text(profile()))
    if handle is not None:
        _report_obs(args, handle)
    return 0


def _report_obs(args: argparse.Namespace, handle: obs.ObsHandle) -> int:
    """Write/print the observability artifacts a simulate run asked for."""
    if args.span_trace:
        spans = obs.export.write_trace_jsonl(handle.tracer, args.span_trace)
        print(f"\nwrote {spans} spans to {args.span_trace}")
    if args.metrics_out:
        obs.export.write_metrics_text(handle.metrics, args.metrics_out)
        print(f"\nwrote metrics text to {args.metrics_out}")
    if args.metrics:
        print("\n" + handle.metrics.render_prometheus(), end="")
    if args.calibration:
        report = calibration_report(handle.ledger)
        if report.rows:
            print("\n" + report.summary_table())
        else:
            print("\n--calibration saw no completion predictions "
                  f"(policy {args.policy} does not plan); nothing to score")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)
    scheduler = POLICY_FACTORIES[args.policy]()
    faults = _build_fault_plan(args)
    handle = obs.enable(trace=False, metrics=True, ledger=False)
    try:
        run_simulation(specs, args.capacity, scheduler, seed=args.seed,
                       max_slots=args.max_slots, faults=faults)
        text = handle.metrics.render_prometheus()
        print(text, end="")
        if args.out:
            obs.export.write_metrics_text(handle.metrics, args.out)
            print(f"# wrote metrics text to {args.out}", file=sys.stderr)
    finally:
        obs.reset()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = WorkloadConfig(
        n_jobs=args.jobs, capacity=args.capacity,
        mean_interarrival=args.interarrival, budget_ratio=args.ratio,
        size_gb_range=(0.5, 2.0) if args.time_scale < 1.0 else (1.0, 10.0),
        time_scale=args.time_scale, failure_prob=args.failure_prob)
    experiment = Experiment(
        config=config,
        policies={name.upper(): POLICY_FACTORIES[name]
                  for name in args.policies},
        seeds=tuple(args.seeds))
    results = experiment.run()
    print(results.summary_table())
    ranking = results.lexicographic_ranking()
    print("\nlexicographic max-min ranking (best first): "
          + " > ".join(ranking))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)
    planner = RushPlanner(capacity=args.capacity, theta=args.theta,
                          delta=args.delta)
    jobs: List[PlannerJob] = []
    for spec in specs:
        prior = spec.prior_runtime
        if prior is None:
            prior = float(sum(spec.task_durations)) / len(spec.task_durations)
        de = GaussianEstimator(prior_mean=prior, prior_std=0.3 * prior)
        jobs.append(PlannerJob(
            spec.job_id, spec.utility,
            de.estimate(pending_tasks=len(spec.task_durations))))
    plan = planner.plan(jobs)
    print(render_status_text(plan))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_status_html(plan))
        print(f"\nwrote HTML status page to {args.html}")
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote plan JSON to {args.json_out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    specs = load_trace(args.trace)

    def factory():
        policy = POLICY_FACTORIES[args.policy]()
        return SpeculativeScheduler(policy) if args.speculative else policy

    plan = _build_fault_plan(args, default=default_chaos_plan(seed=args.seed))
    report = chaos_sweep(specs, args.capacity, factory, plan,
                         args.intensities, seed=args.seed,
                         max_slots=args.max_slots)
    print(report.summary_table())
    if args.out:
        report.save_json(args.out)
        print(f"\nwrote sweep report to {args.out}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    config = SwfMapConfig(
        capacity=args.capacity, slot_seconds=args.slot_seconds,
        max_tasks=args.max_tasks, budget_ratio=args.ratio,
        max_jobs=args.max_jobs)
    specs = load_swf_workload(args.swf, config=config,
                              strict=not args.lenient)
    save_trace(specs, args.out)
    total = sum(s.total_work for s in specs)
    print(f"ingested {len(specs)} jobs ({total} container-slots of work) "
          f"from {args.swf} to {args.out}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.scenarios_command == "list":
        rows = []
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            rows.append([scenario.name, scenario.kind,
                         scenario.capacity_fast, scenario.capacity_full,
                         scenario.description])
        print(format_table(
            ["scenario", "kind", "cap (fast)", "cap (full)", "description"],
            rows))
        return 0
    names = sorted(SCENARIOS) if args.name == "all" else [args.name]
    if args.json_out and len(names) > 1:
        raise ReproError("--json takes a single scenario; "
                         "use --out-dir with 'all'")
    variant = "full" if args.full else "fast"
    for index, name in enumerate(names):
        outcome = run_scenario(name, seed=args.seed, fast=not args.full,
                               baselines=tuple(args.baselines))
        if index:
            print("\n" + "=" * 72 + "\n")
        print(render_scenario_text(outcome))
        if args.json_out:
            save_scenario_json(outcome, args.json_out)
            print(f"\nwrote scenario JSON to {args.json_out}")
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            path = os.path.join(
                args.out_dir, f"{name}-{variant}-seed{args.seed}.json")
            save_scenario_json(outcome, path)
            print(f"\nwrote scenario JSON to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    if args.smoke:
        report = run_service_smoke(args.scenario, seed=args.seed,
                                   fast=not args.full)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.crash_smoke:
        report = run_crash_smoke(args.journal_dir, seed=args.seed)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.restore and args.journal_dir:
        raise ReproError(
            "--restore and --journal-dir are mutually exclusive: the "
            "journal directory carries its own recovery anchor")

    options = json.loads(args.scheduler_options) \
        if args.scheduler_options else {}
    tenants = tenants_from_dicts(json.loads(args.tenants)) \
        if args.tenants else ()
    config = ServiceConfig(capacity=args.capacity, policy=args.policy,
                           seed=args.seed, scheduler_options=options,
                           tenants=tenants)
    clock = None if args.manual else RealTimeClock(args.slot_seconds)
    durable = bool(args.journal_dir)

    async def _serve() -> None:
        # Enabled before the engine exists so journal recovery lands in
        # the metrics/span registries the daemon will serve.
        obs.enable(trace=True, metrics=True, ledger=True)
        if args.restore:
            if not args.snapshot:
                raise ReproError("--restore requires --snapshot PATH")
            engine = restore_engine(load_snapshot(args.snapshot),
                                    clock=clock)
        elif durable:
            engine, _writer = open_journal(args.journal_dir, config,
                                           clock=clock)
        else:
            engine = ServiceEngine(config, clock=clock)
        daemon = ServiceDaemon(engine, clock=clock, chaos=args.chaos,
                               snapshot_path=args.snapshot)
        await daemon.start(args.host, args.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        mode = "manual ticks" if args.manual \
            else f"{args.slot_seconds:g}s slots"
        extra = f", journal {args.journal_dir}" if durable else ""
        print(f"rush service on http://{args.host}:{daemon.port} "
              f"({args.policy}, capacity {args.capacity}, {mode}{extra}); "
              "Ctrl-C stops", flush=True)
        try:
            await stop.wait()  # serve until SIGTERM/SIGINT
        finally:
            # Graceful: drain in-flight requests, then flush+fsync the
            # journal inside engine.close() before the loop dies.
            await daemon.stop()
            obs.reset()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0
    print("stopped: drained and journal flushed" if durable
          else "stopped")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "simulate": _cmd_simulate,
    "metrics": _cmd_metrics,
    "compare": _cmd_compare,
    "plan": _cmd_plan,
    "chaos": _cmd_chaos,
    "ingest": _cmd_ingest,
    "scenarios": _cmd_scenarios,
    "lint": run_lint_command,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early; the
        # dup2 keeps the interpreter-shutdown flush from re-raising.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
