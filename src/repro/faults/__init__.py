"""Pluggable fault injection for the cluster substrate.

See :mod:`repro.faults.base` for the injector protocol,
:mod:`repro.faults.injectors` for the concrete fault species,
:mod:`repro.faults.plan` for composition, seeding and JSON specs, and
:mod:`repro.faults.disk` for the filesystem fault species that exercise
the service's write-ahead journal.
"""

from repro.faults.base import FaultContext, FaultEvent, FaultInjector, FaultLog
from repro.faults.disk import (DISK_FAULT_SPECIES, DiskFaultError,
                               FaultyFileOps, JournalFileOps,
                               SimulatedCrashError)
from repro.faults.injectors import (
    INJECTOR_REGISTRY,
    ContainerCrashInjector,
    DemandBurstInjector,
    JobKillInjector,
    SampleCorruptionInjector,
    SolverBudgetInjector,
    SpecFailureInjector,
    StragglerInjector,
    injector_from_spec,
)
from repro.faults.plan import FaultPlan, default_chaos_plan, load_fault_plan

__all__ = [
    "FaultContext",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "INJECTOR_REGISTRY",
    "SpecFailureInjector",
    "ContainerCrashInjector",
    "StragglerInjector",
    "DemandBurstInjector",
    "SampleCorruptionInjector",
    "JobKillInjector",
    "SolverBudgetInjector",
    "injector_from_spec",
    "load_fault_plan",
    "default_chaos_plan",
    "DISK_FAULT_SPECIES",
    "DiskFaultError",
    "FaultyFileOps",
    "JournalFileOps",
    "SimulatedCrashError",
]
