"""The fault-injection protocol: injectors, the event log, the context.

RUSH's claim is robustness to *uncertain completion-times*, so the
reproduction needs a way to manufacture that uncertainty on demand: tasks
that crash, containers that vanish, samples that lie, demand that bursts
in correlated waves, and a planner starved of its own time budget.  This
module defines the pluggable protocol the cluster simulator drives; the
concrete injectors live in :mod:`repro.faults.injectors` and are composed
into a :class:`repro.faults.plan.FaultPlan`.

An injector is a small object with three optional hooks:

``on_slot(ctx)``
    Called once per slot, after arrivals are admitted and before any
    scheduling event fires.  The place for cluster-level faults (crashes,
    revocations, demand bursts, job kills, solver sabotage).
``on_launch(ctx, job, task)``
    Called when a task is about to be placed on a container — the
    injection point the old hard-coded ``_maybe_inject_failure`` used.
``on_complete(ctx, job, task)``
    Called when a task attempt completes, before the scheduler observes
    its runtime sample — the place to corrupt the DE unit's feed.

Determinism contract: every injector draws randomness from exactly two
generators handed to it by the plan — a *decision* stream consuming one
draw per decision point regardless of outcome, and a *variation* stream
for fault magnitudes.  Keeping the decision stream's consumption
independent of the fault *intensity* gives monotone coupling: raising the
intensity under a fixed seed fires a superset of the fault events, which
is what makes degradation curves comparable across intensities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

import numpy as np

from repro.obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.container import Container
    from repro.cluster.job import SimJob
    from repro.cluster.simulator import ClusterSimulator
    from repro.cluster.task import Task
    from repro.schedulers.base import Scheduler

__all__ = ["FaultEvent", "FaultLog", "FaultContext", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or degradation fallback), for the record.

    ``slot`` is the simulator clock when the fault fired, ``kind`` the
    injector's registry name (or a ``degradation:*`` tag), ``target`` the
    affected entity (task id, job id, container id, or ``planner``) and
    ``detail`` a small JSON-compatible mapping of fault parameters.
    """

    slot: int
    kind: str
    target: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"slot": self.slot, "kind": self.kind, "target": self.target,
                "detail": dict(self.detail)}


class FaultLog:
    """Append-only record of every fault injected during one run.

    Shared between the fault plan (injections) and the scheduler's
    degradation policy (fallbacks), so one stream tells the whole story
    of a chaotic run.  Exposed on :class:`SimulationResult` as
    ``fault_events``.
    """

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []

    def record(self, slot: int, kind: str, target: str,
               **detail: object) -> FaultEvent:
        event = FaultEvent(slot=slot, kind=kind, target=target, detail=detail)
        self._events.append(event)
        metrics = get_metrics()
        if metrics.active:
            metrics.counter("rush_fault_injections_total",
                            help="Fault-log events by species (includes "
                                 "degradation:* fallback records)",
                            labels=("kind",)).labels(kind).inc()
        return event

    @property
    def events(self) -> List[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def count(self, kind: Optional[str] = None) -> int:
        """Events recorded so far, optionally restricted to one kind."""
        if kind is None:
            return len(self._events)
        return sum(1 for e in self._events if e.kind == kind)

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        return [e.to_dict() for e in self._events]


class FaultContext:
    """What an injector may see and touch during one hook call.

    A thin view over the simulator: the clock, the intensity dial, the
    container/job state and the log.  Injectors mutate *tasks* (their
    failure points, remaining work, observed samples) and *containers*
    (revocations) directly — the simulator's own bookkeeping picks the
    changes up on the next advance, so injectors cannot corrupt counters.
    """

    __slots__ = ("sim", "log", "intensity")

    def __init__(self, sim: "ClusterSimulator", log: FaultLog,
                 intensity: float) -> None:
        self.sim = sim
        self.log = log
        self.intensity = intensity

    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def capacity(self) -> int:
        return self.sim.capacity

    @property
    def active_jobs(self) -> List["SimJob"]:
        return self.sim.active_jobs

    @property
    def containers(self) -> List["Container"]:
        return self.sim.containers

    @property
    def scheduler(self) -> "Scheduler":
        return self.sim.scheduler

    def record(self, kind: str, target: str, **detail: object) -> FaultEvent:
        """Log one injected fault at the current slot."""
        return self.log.record(self.now, kind, target, **detail)


class FaultInjector:
    """Base class for fault injectors.

    Subclasses override any subset of the three hooks, declare a registry
    ``kind`` and implement ``params()`` returning their JSON-compatible
    configuration (used by :meth:`FaultPlan.to_spec` round-trips).

    ``rate`` is the per-decision-point probability at intensity 1.0; the
    effective probability is ``min(rate * intensity, 1.0)``.
    """

    #: Registry name; also the ``kind`` recorded on every event.
    kind: str = "fault"

    def __init__(self, rate: float = 0.0) -> None:
        from repro.errors import ConfigurationError

        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{type(self).__name__}: rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._decide: Optional[np.random.Generator] = None
        self._vary: Optional[np.random.Generator] = None

    # -- wiring (done by the plan) ----------------------------------------

    def bind_rng(self, decide: np.random.Generator,
                 vary: np.random.Generator) -> None:
        """Attach this injector's decision and variation streams."""
        self._decide = decide
        self._vary = vary

    def reset(self) -> None:
        """Drop per-run state (called when a plan is bound to a new sim)."""

    # -- shared helpers ----------------------------------------------------

    def _fires(self, ctx: FaultContext, rate: Optional[float] = None) -> bool:
        """One decision draw; True when the fault fires.

        Consumes exactly one draw from the decision stream regardless of
        the outcome or the intensity — the monotone-coupling invariant.
        """
        assert self._decide is not None, "injector used before bind_rng()"
        p = self.rate if rate is None else rate
        return self._decide.random() < min(p * ctx.intensity, 1.0)

    @property
    def vary(self) -> np.random.Generator:
        assert self._vary is not None, "injector used before bind_rng()"
        return self._vary

    # -- hooks ----------------------------------------------------------------

    def on_slot(self, ctx: FaultContext) -> None:
        """Called once per slot before scheduling events fire."""

    def on_launch(self, ctx: FaultContext, job: "SimJob",
                  task: "Task") -> None:
        """Called when ``task`` is about to be placed on a container."""

    def on_complete(self, ctx: FaultContext, job: "SimJob",
                    task: "Task") -> None:
        """Called when ``task`` completed, before the scheduler sees it."""

    # -- serialization ----------------------------------------------------------

    def params(self) -> Dict[str, object]:
        """JSON-compatible constructor arguments (for spec round-trips)."""
        return {"rate": self.rate}
