"""Filesystem fault injection for the write-ahead journal.

The durability claim of :mod:`repro.service.journal` — "every accepted
event survives a crash, or recovery fails loudly" — is only worth
stating if it is exercised against the ways disks actually betray a
process: a write torn mid-record by a power cut, an fsync that only
persisted a prefix of the dirty bytes, a full volume, a retried append
that landed twice.  This module manufactures exactly those conditions.

The injection point is an *injectable file-op layer*: the journal never
calls ``open``/``write``/``fsync`` directly but goes through an object
satisfying :class:`JournalFileOps`.  Production passes the real
implementation (``repro.service.journal.RealFileOps``, the single
sanctioned writer under lint rule RL015); tests pass a
:class:`FaultyFileOps` wrapper instead — so no prod code is ever
monkeypatched to simulate a disk fault.

Crash semantics are modelled explicitly: bytes written but not yet
fsynced are *volatile*.  When a species fires, the wrapper promotes
whatever the species says survived, truncates every tracked file back
to its durable watermark, closes the handles, and raises
:class:`SimulatedCrashError` — from the caller's point of view the
process died mid-operation and the directory is left exactly as a real
crash would leave it.

Determinism contract: the tear points and surviving prefixes come from
a seeded ``numpy`` generator, so a crash-point sweep is reproducible
draw for draw.  The fault fires on the ``at_op``-th write operation
(1-based), which lets a harness enumerate every journaled event
boundary by sweeping ``at_op`` over the write count of a clean run.
"""

from __future__ import annotations

import os
from typing import IO, Dict, List, Protocol, Tuple

import numpy as np

__all__ = [
    "DISK_FAULT_SPECIES",
    "DiskFaultError",
    "FaultyFileOps",
    "JournalFileOps",
    "SimulatedCrashError",
]


class SimulatedCrashError(Exception):
    """The injected crash: the "process" died inside a file operation.

    Deliberately *not* an :class:`OSError` subclass — the journal wraps
    ``OSError`` into a typed retryable error, but a crash must
    propagate to the harness unhandled, exactly like ``kill -9`` would.
    """


class DiskFaultError(Exception):
    """A :class:`FaultyFileOps` was configured or driven incorrectly."""


class JournalFileOps(Protocol):
    """The file-op seam the journal writes through.

    ``repro.service.journal.RealFileOps`` is the production
    implementation; :class:`FaultyFileOps` wraps any implementation to
    inject faults.  All paths are strings; ``write`` must issue the
    payload as a single operation (the journal's atomic-append
    discipline), and ``fsync`` makes previously written bytes durable.
    """

    def open_append(self, path: str) -> IO[bytes]: ...

    def write(self, fobj: IO[bytes], data: bytes) -> int: ...

    def fsync(self, fobj: IO[bytes]) -> None: ...

    def close(self, fobj: IO[bytes]) -> None: ...

    def write_bytes(self, path: str, data: bytes) -> None: ...

    def replace(self, src: str, dst: str) -> None: ...

    def remove(self, path: str) -> None: ...

    def truncate(self, path: str, size: int) -> None: ...

    def fsync_dir(self, path: str) -> None: ...


#: The disk-fault species, in the order documented in docs/FAULTS.md.
DISK_FAULT_SPECIES: Tuple[str, ...] = (
    "crash",          # die cleanly before the chosen write begins
    "torn_write",     # a seeded prefix of the record survives, then die
    "partial_fsync",  # fsync persists a seeded prefix of dirty bytes, then die
    "enospc",         # the write raises ENOSPC; the process lives on
    "dup_tail",       # the record is written twice (a retried append), then die
)


class _TrackedFile:
    """Durable-vs-volatile accounting for one open journal file."""

    __slots__ = ("path", "inner", "size", "durable")

    def __init__(self, path: str, inner: IO[bytes], size: int) -> None:
        self.path = path
        self.inner = inner
        self.size = size          # bytes written (durable + volatile)
        self.durable = size       # bytes that survive a crash


class FaultyFileOps:
    """A seeded disk-fault wrapper around a :class:`JournalFileOps`.

    ``species`` picks the failure mode (see :data:`DISK_FAULT_SPECIES`)
    and ``at_op`` the 1-based write operation it strikes; every other
    operation delegates untouched.  After a crash fires, every further
    operation raises :class:`SimulatedCrashError` — dead processes do
    not write.  The ``writes`` counter (total write operations seen)
    lets a harness size its crash-point sweep from a clean run.
    """

    def __init__(self, inner: JournalFileOps, *, species: str,
                 at_op: int, seed: int = 0) -> None:
        if species not in DISK_FAULT_SPECIES:
            known = ", ".join(DISK_FAULT_SPECIES)
            raise DiskFaultError(
                f"unknown disk-fault species {species!r}; known: {known}")
        if at_op < 1:
            raise DiskFaultError(
                f"at_op is a 1-based write index; got {at_op}")
        self.inner = inner
        self.species = species
        self.at_op = int(at_op)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self.writes = 0           # write operations observed so far
        self.fired = False        # the configured fault has struck
        self._dead = False
        self._partial_fsync_armed = False
        self._files: Dict[int, _TrackedFile] = {}

    # -- crash machinery -------------------------------------------------

    def _check_alive(self) -> None:
        if self._dead:
            raise SimulatedCrashError(
                "file operation after a simulated crash")

    def _crash(self, message: str) -> None:
        """Apply the durable watermarks and die.

        Volatile (written-but-unsynced) bytes are discarded by
        truncating each tracked file back to its durable size — the
        on-disk state a real crash would expose to recovery.
        """
        self._dead = True
        self.fired = True
        for tracked in self._files.values():
            try:
                tracked.inner.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            os.truncate(tracked.path, tracked.durable)
        self._files.clear()
        raise SimulatedCrashError(message)

    def _seeded_prefix(self, length: int) -> int:
        """A tear point strictly inside ``[0, length)`` when possible."""
        if length <= 1:
            return 0
        return int(self._rng.integers(1, length))

    # -- JournalFileOps ----------------------------------------------------

    def open_append(self, path: str) -> IO[bytes]:
        self._check_alive()
        inner = self.inner.open_append(path)
        size = os.path.getsize(path)
        self._files[id(inner)] = _TrackedFile(path, inner, size)
        return inner

    def write(self, fobj: IO[bytes], data: bytes) -> int:
        self._check_alive()
        self.writes += 1
        tracked = self._files.get(id(fobj))
        if tracked is None:
            raise DiskFaultError("write to a file not opened through "
                                 "this file-op layer")
        if self.writes == self.at_op:
            return self._faulty_write(tracked, data)
        self.inner.write(fobj, data)
        tracked.size += len(data)
        return len(data)

    def _faulty_write(self, tracked: _TrackedFile, data: bytes) -> int:
        if self.species == "crash":
            self._crash("simulated crash before append")
        if self.species == "torn_write":
            keep = self._seeded_prefix(len(data))
            if keep:
                self.inner.write(tracked.inner, data[:keep])
                tracked.size += keep
                tracked.durable = tracked.size  # the torn prefix persisted
            self._crash(f"simulated torn write ({keep}/{len(data)} bytes)")
        if self.species == "enospc":
            self.fired = True
            raise OSError(28, "No space left on device (injected)")
        if self.species == "dup_tail":
            self.inner.write(tracked.inner, data + data)
            tracked.size += 2 * len(data)
            tracked.durable = tracked.size  # both copies persisted
            self._crash("simulated duplicated tail record")
        # partial_fsync: the write itself succeeds in full; the fault
        # strikes at the following fsync, which persists only a prefix.
        self.inner.write(tracked.inner, data)
        tracked.size += len(data)
        self._partial_fsync_armed = True
        return len(data)

    def fsync(self, fobj: IO[bytes]) -> None:
        self._check_alive()
        tracked = self._files.get(id(fobj))
        if tracked is None:
            raise DiskFaultError("fsync of a file not opened through "
                                 "this file-op layer")
        if self._partial_fsync_armed:
            pending = tracked.size - tracked.durable
            kept = self._seeded_prefix(pending)
            tracked.durable += kept
            self._crash(f"simulated partial fsync ({kept}/{pending} "
                        "dirty bytes persisted)")
        self.inner.fsync(fobj)
        tracked.durable = tracked.size

    def close(self, fobj: IO[bytes]) -> None:
        self._check_alive()
        tracked = self._files.pop(id(fobj), None)
        self.inner.close(fobj)
        if tracked is not None:
            # An explicit close flushes user-space buffers; without an
            # fsync the bytes are still volatile.  Keep the watermark.
            self._files.pop(id(fobj), None)

    def write_bytes(self, path: str, data: bytes) -> None:
        self._check_alive()
        self.writes += 1
        if self.writes == self.at_op:
            if self.species == "enospc":
                self.fired = True
                raise OSError(28, "No space left on device (injected)")
            if self.species in ("torn_write", "partial_fsync"):
                keep = self._seeded_prefix(len(data))
                self.inner.write_bytes(path, data[:keep])
                self._crash(f"simulated torn file write ({keep}/"
                            f"{len(data)} bytes)")
            if self.species == "crash":
                self._crash("simulated crash before file write")
            # dup_tail is meaningless for whole-file writes; fall through.
        self.inner.write_bytes(path, data)

    def replace(self, src: str, dst: str) -> None:
        self._check_alive()
        self.inner.replace(src, dst)

    def remove(self, path: str) -> None:
        self._check_alive()
        self.inner.remove(path)

    def truncate(self, path: str, size: int) -> None:
        self._check_alive()
        self.inner.truncate(path, size)

    def fsync_dir(self, path: str) -> None:
        self._check_alive()
        self.inner.fsync_dir(path)

    # -- reporting -------------------------------------------------------

    def params(self) -> Dict[str, object]:
        """The injector's configuration, FaultPlan-spec style."""
        return {"species": self.species, "at_op": self.at_op,
                "seed": self.seed}

    def open_paths(self) -> List[str]:
        """Paths currently tracked (diagnostics for leak checks)."""
        return sorted(t.path for t in self._files.values())
