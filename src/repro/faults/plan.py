"""Fault plans: composable, seeded, intensity-scalable injector sets.

A :class:`FaultPlan` bundles any number of injectors with one seed and an
intensity dial.  The plan owns the determinism story:

* the seed expands through a :class:`numpy.random.SeedSequence` into one
  (decision, variation) generator pair per injector, in list order, so a
  plan rebuilt from the same spec replays the identical fault stream;
* ``scaled(intensity)`` returns a fresh plan whose injectors fire with
  ``rate * intensity`` while consuming the *same* decision draws —
  raising the intensity fires a superset of the events (monotone
  coupling), which is what makes the ``rush chaos`` degradation curves
  comparable points of one experiment rather than unrelated runs.

Plans serialize to/from a small JSON spec::

    {"seed": 7, "intensity": 1.0,
     "injectors": [{"kind": "container_crash", "rate": 0.02},
                   {"kind": "straggler", "rate": 0.05, "slowdown": 2.0}]}

``rush simulate --faults spec.json`` and ``rush chaos`` consume exactly
this format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.base import FaultContext, FaultInjector, FaultLog
from repro.faults.injectors import SpecFailureInjector, injector_from_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.job import SimJob
    from repro.cluster.simulator import ClusterSimulator
    from repro.cluster.task import Task

__all__ = ["FaultPlan", "load_fault_plan", "default_chaos_plan"]


class FaultPlan:
    """An ordered set of injectors plus the seed and intensity dials.

    Parameters
    ----------
    injectors:
        The injectors, fired in list order at every hook.
    seed:
        Seed for the fault streams; ``None`` defers to the simulator's
        seed at bind time, so ``--seed`` reproduces fault runs end-to-end
        without repeating itself in the fault spec.
    intensity:
        Global rate multiplier (0 disables everything, 1 is nominal);
        swept by ``rush chaos``.
    """

    def __init__(self, injectors: Sequence[FaultInjector], *,
                 seed: Optional[int] = None,
                 intensity: float = 1.0) -> None:
        if intensity < 0.0:
            raise ConfigurationError(
                f"intensity must be >= 0, got {intensity}")
        for injector in injectors:
            if not isinstance(injector, FaultInjector):
                raise ConfigurationError(
                    f"not a FaultInjector: {injector!r}")
        self.injectors: List[FaultInjector] = list(injectors)
        self.seed = seed
        self.intensity = intensity
        self._ctx: Optional[FaultContext] = None
        self.log = FaultLog()

    # -- composition -------------------------------------------------------

    def scaled(self, intensity: float) -> "FaultPlan":
        """A fresh, unbound copy of this plan at a different intensity."""
        return FaultPlan([injector_from_spec(
            {"kind": i.kind, **i.params()}) for i in self.injectors],
            seed=self.seed, intensity=intensity)

    # -- wiring --------------------------------------------------------------

    def bind(self, sim: "ClusterSimulator", fallback_seed: int = 0) -> None:
        """Attach to a simulator: fresh log, fresh deterministic streams."""
        if self._ctx is not None:
            raise ConfigurationError(
                "FaultPlan is already bound to a simulator; build a fresh "
                "plan (or .scaled copy) per run")
        seed = self.seed if self.seed is not None else fallback_seed
        children = np.random.SeedSequence(seed).spawn(
            2 * max(len(self.injectors), 1))
        for k, injector in enumerate(self.injectors):
            injector.bind_rng(np.random.default_rng(children[2 * k]),
                              np.random.default_rng(children[2 * k + 1]))
            injector.reset()
        self.log = FaultLog()
        self._ctx = FaultContext(sim, self.log, self.intensity)

    @property
    def bound(self) -> bool:
        return self._ctx is not None

    # -- hook fan-out ---------------------------------------------------------

    def on_slot(self) -> None:
        assert self._ctx is not None, "FaultPlan used before bind()"
        for injector in self.injectors:
            injector.on_slot(self._ctx)

    def on_launch(self, job: "SimJob", task: "Task") -> None:
        assert self._ctx is not None, "FaultPlan used before bind()"
        for injector in self.injectors:
            injector.on_launch(self._ctx, job, task)

    def on_complete(self, job: "SimJob", task: "Task") -> None:
        assert self._ctx is not None, "FaultPlan used before bind()"
        for injector in self.injectors:
            injector.on_complete(self._ctx, job, task)

    # -- serialization ----------------------------------------------------------

    def to_spec(self) -> Dict[str, object]:
        """The JSON-compatible spec this plan round-trips through."""
        return {
            "seed": self.seed,
            "intensity": self.intensity,
            "injectors": [{"kind": i.kind, **i.params()}
                          for i in self.injectors],
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from its spec mapping (see module docstring)."""
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"fault spec must be a mapping, got {type(spec).__name__}")
        unknown = set(spec) - {"seed", "intensity", "injectors"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault-spec keys: {sorted(unknown)}")
        raw = spec.get("injectors", [])
        if not isinstance(raw, list):
            raise ConfigurationError("'injectors' must be a list")
        seed = spec.get("seed")
        if seed is not None:
            seed = int(seed)
        return cls([injector_from_spec(entry) for entry in raw],
                   seed=seed, intensity=float(spec.get("intensity", 1.0)))

    @classmethod
    def default(cls, seed: Optional[int] = None) -> "FaultPlan":
        """The legacy behaviour: only per-spec task failures."""
        return cls([SpecFailureInjector()], seed=seed)


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a fault plan from a JSON spec file."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed fault spec {path}: {exc}") from None
    return FaultPlan.from_spec(spec)


def default_chaos_plan(seed: Optional[int] = None,
                       intensity: float = 1.0) -> FaultPlan:
    """The all-injector plan ``rush chaos`` sweeps when none is given.

    Moderate nominal rates: at intensity 1.0 a mid-size run sees a
    handful of each fault species without drowning in them.
    """
    return FaultPlan.from_spec({
        "seed": seed,
        "intensity": intensity,
        "injectors": [
            {"kind": "spec_failure"},
            {"kind": "container_crash", "rate": 0.004, "revoke_slots": 2},
            {"kind": "straggler", "rate": 0.01, "slowdown": 2.0},
            {"kind": "demand_burst", "rate": 0.005, "magnitude": 1.5,
             "width": 3},
            {"kind": "sample_corruption", "rate": 0.05, "low": 0.25,
             "high": 4.0},
            {"kind": "job_kill", "rate": 0.002},
            {"kind": "solver_budget", "rate": 0.01, "depth": 1},
        ],
    })
