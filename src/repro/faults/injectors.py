"""The concrete fault injectors.

Each injector manufactures one species of the completion-time uncertainty
the paper's robust formulation is meant to absorb:

* :class:`SpecFailureInjector` — the workload's own per-spec task failure
  probability (the behaviour previously hard-coded in the simulator);
* :class:`ContainerCrashInjector` — a busy container dies mid-task and
  may stay revoked for a few slots (shared-cloud preemption);
* :class:`StragglerInjector` — a running task silently slows down,
  stretching its remaining work (the LATE-paper scenario);
* :class:`DemandBurstInjector` — a correlated burst window inflating the
  ground-truth duration of every task launched during it (co-tenant
  interference hitting the whole cluster at once);
* :class:`SampleCorruptionInjector` — the runtime sample reported to the
  scheduler's DE unit is corrupted while the ground truth is untouched
  (mispredicted completion-times, the PCS failure mode);
* :class:`JobKillInjector` — every running attempt of one job is killed
  at once, forcing a task-level resubmit of its in-flight work;
* :class:`SolverBudgetInjector` — arms a forced solver failure on the
  scheduler, exercising the degradation ladder at a chosen depth.

All injectors follow the decision/variation stream contract of
:class:`repro.faults.base.FaultInjector`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Set, Type

from repro.errors import ConfigurationError
from repro.faults.base import FaultContext, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.job import SimJob
    from repro.cluster.task import Task

__all__ = [
    "SpecFailureInjector",
    "ContainerCrashInjector",
    "StragglerInjector",
    "DemandBurstInjector",
    "SampleCorruptionInjector",
    "JobKillInjector",
    "SolverBudgetInjector",
    "INJECTOR_REGISTRY",
    "injector_from_spec",
]


class SpecFailureInjector(FaultInjector):
    """Arm per-launch failure points per the job spec's ``failure_prob``.

    Reproduces the simulator's legacy built-in behaviour: each launched
    task of a job with ``failure_prob = p`` fails partway with
    probability ``p`` (scaled by the plan intensity), at a failure point
    uniform over its duration.
    """

    kind = "spec_failure"

    def __init__(self, rate: float = 1.0) -> None:
        # ``rate`` multiplies the per-spec probability (1.0 = as specified).
        super().__init__(rate)

    def on_launch(self, ctx: FaultContext, job: "SimJob",
                  task: "Task") -> None:
        p = job.spec.failure_prob * self.rate
        if p <= 0.0:
            return
        if self._fires(ctx, rate=p):
            task.fail_after = int(self.vary.integers(1, task.duration + 1))
            ctx.record(self.kind, task.task_id, job_id=job.job_id,
                       fail_after=task.fail_after)


class ContainerCrashInjector(FaultInjector):
    """Crash busy containers; optionally revoke them for a few slots.

    Every slot, each busy container dies with probability
    ``rate * intensity``: its running task fails on the next advance and,
    when ``revoke_slots > 0``, the container stays offline for that many
    slots (a shared-cloud preemption/revocation).
    """

    kind = "container_crash"

    def __init__(self, rate: float = 0.01, revoke_slots: int = 0) -> None:
        super().__init__(rate)
        if revoke_slots < 0:
            raise ConfigurationError(
                f"revoke_slots must be >= 0, got {revoke_slots}")
        self.revoke_slots = revoke_slots

    def on_slot(self, ctx: FaultContext) -> None:
        for container in ctx.containers:
            task = container.task
            if task is None:
                continue
            if not self._fires(ctx):
                continue
            task.fail_after = task.executed + 1
            if self.revoke_slots:
                container.offline_until = ctx.now + 1 + self.revoke_slots
            ctx.record(self.kind, task.task_id,
                       container=container.container_id,
                       job_id=task.job_id, revoke_slots=self.revoke_slots)

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "revoke_slots": self.revoke_slots}


class StragglerInjector(FaultInjector):
    """Silently stretch a running task's remaining work.

    Every slot, each running task straggles with probability
    ``rate * intensity``: its remaining work is multiplied by
    ``slowdown`` (duration grows in step, so the eventual runtime sample
    honestly reports the longer execution).  Each task attempt straggles
    at most once — repeated multiplicative stretching would make the
    expected drift of long tasks positive, and they would never finish.
    """

    kind = "straggler"

    def __init__(self, rate: float = 0.02, slowdown: float = 2.0) -> None:
        super().__init__(rate)
        if slowdown <= 1.0:
            raise ConfigurationError(
                f"slowdown must be > 1, got {slowdown}")
        self.slowdown = slowdown
        self._struck: Set[str] = set()

    def reset(self) -> None:
        self._struck = set()

    def on_slot(self, ctx: FaultContext) -> None:
        for container in ctx.containers:
            task = container.task
            if task is None or task.remaining <= 0:
                continue
            if task.task_id in self._struck:
                continue
            if not self._fires(ctx):
                continue
            self._struck.add(task.task_id)
            extra = max(1, int(round(task.remaining * (self.slowdown - 1.0))))
            task.remaining += extra
            task.duration += extra
            ctx.record(self.kind, task.task_id, job_id=task.job_id,
                       extra_slots=extra)

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "slowdown": self.slowdown}


class DemandBurstInjector(FaultInjector):
    """Correlated demand bursts: a window inflating every launch at once.

    Every slot, a burst starts with probability ``rate * intensity`` and
    lasts ``width`` slots.  Every task launched inside a burst window has
    its ground-truth duration multiplied by ``magnitude`` — the faults
    are *correlated across jobs*, the regime where independent per-task
    estimates are most wrong.
    """

    kind = "demand_burst"

    def __init__(self, rate: float = 0.01, magnitude: float = 1.5,
                 width: int = 3) -> None:
        super().__init__(rate)
        if magnitude <= 1.0:
            raise ConfigurationError(
                f"magnitude must be > 1, got {magnitude}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.magnitude = magnitude
        self.width = width
        self._burst_until = -1

    def reset(self) -> None:
        self._burst_until = -1

    @property
    def bursting(self) -> bool:
        return self._burst_until >= 0

    def on_slot(self, ctx: FaultContext) -> None:
        if ctx.now >= self._burst_until:
            self._burst_until = -1
        fires = self._fires(ctx)
        if self._burst_until < 0 and fires:
            self._burst_until = ctx.now + self.width
            ctx.record(self.kind, "cluster", until_slot=self._burst_until)

    def on_launch(self, ctx: FaultContext, job: "SimJob",
                  task: "Task") -> None:
        if ctx.now >= self._burst_until:
            return
        extra = max(1, int(round(task.duration * (self.magnitude - 1.0))))
        task.duration += extra
        task.remaining += extra
        ctx.record(self.kind, task.task_id, job_id=job.job_id,
                   extra_slots=extra)

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "magnitude": self.magnitude,
                "width": self.width}


class SampleCorruptionInjector(FaultInjector):
    """Corrupt the runtime sample the scheduler observes.

    The task's ground truth is untouched — only ``observed_duration``
    (what the DE units ingest) is rescaled by a factor drawn uniformly
    from ``[low, high]``.  This is pure estimator poison: the cluster
    behaves identically, the planner's beliefs drift.
    """

    kind = "sample_corruption"

    def __init__(self, rate: float = 0.05, low: float = 0.2,
                 high: float = 4.0) -> None:
        super().__init__(rate)
        if not 0.0 < low <= high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={low}, high={high}")
        self.low = low
        self.high = high

    def on_complete(self, ctx: FaultContext, job: "SimJob",
                    task: "Task") -> None:
        if not self._fires(ctx):
            return
        factor = float(self.vary.uniform(self.low, self.high))
        task.observed_duration = max(1.0, task.duration * factor)
        ctx.record(self.kind, task.task_id, job_id=job.job_id,
                   factor=round(factor, 4),
                   observed=task.observed_duration)

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "low": self.low, "high": self.high}


class JobKillInjector(FaultInjector):
    """Kill one job's running attempts, forcing a task-level resubmit.

    Every slot, with probability ``rate * intensity``, one active job
    with running work (chosen uniformly) has every running attempt
    killed.  The simulator's retry machinery requeues each logical task,
    so the job restarts its in-flight work from scratch — the
    kill/resubmit cycle operators inflict on stuck jobs.
    """

    kind = "job_kill"

    def __init__(self, rate: float = 0.002) -> None:
        super().__init__(rate)

    def on_slot(self, ctx: FaultContext) -> None:
        if not self._fires(ctx):
            return
        candidates = [j for j in ctx.active_jobs if j.running_count > 0]
        if not candidates:
            return
        job = candidates[int(self.vary.integers(len(candidates)))]
        killed = 0
        for task in job.running_attempts():
            task.fail_after = task.executed + 1
            killed += 1
        ctx.record(self.kind, job.job_id, killed_attempts=killed)


class SolverBudgetInjector(FaultInjector):
    """Starve the planner: force the next solve(s) to fail.

    Every slot, with probability ``rate * intensity``, arms a forced
    solver failure on schedulers exposing ``inject_solver_fault(depth)``
    (the RUSH scheduler's degradation ladder).  ``depth`` controls how
    many rungs fail: 1 kills the primary (incremental) solve, 2 also the
    cold exact re-solve, 3 additionally discards the last good plan —
    landing the scheduler on its greedy-EDF floor.
    """

    kind = "solver_budget"

    def __init__(self, rate: float = 0.01, depth: int = 1) -> None:
        super().__init__(rate)
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth

    def on_slot(self, ctx: FaultContext) -> None:
        if not self._fires(ctx):
            return
        arm = getattr(ctx.scheduler, "inject_solver_fault", None)
        if arm is None:
            return  # policy has no solver to sabotage
        arm(self.depth)
        ctx.record(self.kind, "planner", depth=self.depth)

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate, "depth": self.depth}


INJECTOR_REGISTRY: Dict[str, Type[FaultInjector]] = {
    cls.kind: cls
    for cls in (SpecFailureInjector, ContainerCrashInjector,
                StragglerInjector, DemandBurstInjector,
                SampleCorruptionInjector, JobKillInjector,
                SolverBudgetInjector)
}


def injector_from_spec(spec: Mapping[str, object]) -> FaultInjector:
    """Build one injector from its ``{"kind": ..., **params}`` mapping."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ConfigurationError(
            f"injector spec must be a mapping with a 'kind', got {spec!r}")
    kind = spec["kind"]
    cls = INJECTOR_REGISTRY.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown injector kind {kind!r}; known: "
            + ", ".join(sorted(INJECTOR_REGISTRY)))
    params = {k: v for k, v in spec.items() if k != "kind"}
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for injector {kind!r}: {exc}") from None
