"""RUSH: a RobUst ScHeduler for uncertain completion-times in shared clouds.

A faithful, laptop-scale reproduction of *RUSH: A RobUst ScHeduler to
Manage Uncertain Completion-Times in Shared Clouds* (ICDCS 2016).  The
package provides:

* :mod:`repro.core` — the paper's algorithms: the closed-form REM solver
  (Algorithm 1), the WCDE bisection (Algorithm 2), onion peeling
  (Algorithm 3), continuous time-slot mapping (Algorithm 4), the LP
  baseline, and the end-to-end :class:`~repro.core.planner.RushPlanner`;
* :mod:`repro.utility` — the job utility classes (piece-wise linear,
  sigmoid, constant and extensions) with the configuration/XML interface;
* :mod:`repro.estimation` — the distribution-estimator units (mean
  impulse, Gaussian, empirical) and the PMF toolkit;
* :mod:`repro.cluster` — a slotted YARN-like cluster simulator with
  homogeneous containers and the scheduling-event feedback cycle;
* :mod:`repro.schedulers` — RUSH plus the FIFO, EDF, RRH and Fair
  baselines;
* :mod:`repro.workload` — PUMA-like templates, the Section V-B workload
  generator and a trace format;
* :mod:`repro.analysis` — boxplot/CDF statistics, text rendering for
  regenerating the paper's figures, and fault-intensity chaos sweeps;
* :mod:`repro.faults` — composable, seeded fault injectors (crashes,
  stragglers, kills, corrupted samples, solver starvation) with JSON
  specs and a monotone intensity knob;
* :mod:`repro.obs` — deterministic, slot-indexed observability: solver
  span tracing, a counters/gauges/histograms registry with Prometheus
  text export, and a predicted-vs-actual completion-time ledger scored
  by :func:`repro.analysis.calibration.calibration_report`.

Quickstart::

    from repro import (GaussianEstimator, PlannerJob, RushPlanner,
                       SigmoidUtility)

    de = GaussianEstimator(prior_mean=60, prior_std=20)
    de.observe_many([55, 62, 71, 58])
    job = PlannerJob("analytics", SigmoidUtility(budget=600, priority=5),
                     de.estimate(pending_tasks=40))
    plan = RushPlanner(capacity=48, theta=0.9, delta=0.7).plan([job])
    print(plan.jobs["analytics"].target_completion)
"""

from repro.errors import (
    ConfigurationError,
    DistributionError,
    EstimationError,
    InfeasiblePlanError,
    ReproError,
    SimulationError,
    SolverBudgetError,
)
from repro.core import (
    ContainerPlan,
    IncrementalPlanner,
    JobPlan,
    MappingJob,
    OnionJob,
    OnionResult,
    ParallelPlanner,
    PlannerJob,
    PlanStats,
    PresolvedDemand,
    RushPlanner,
    SchedulePlan,
    SqliteWcdeStore,
    WcdeCache,
    WcdeResult,
    map_time_slots,
    solve_onion,
    solve_rem,
    solve_tas_lp,
    solve_wcde,
    solve_wcde_batch,
    worst_case_demand,
)
from repro import obs
from repro.analysis.calibration import CalibrationReport, calibration_report
from repro.analysis.chaos import ChaosPoint, ChaosReport, chaos_sweep
from repro.analysis.experiment import Experiment, ExperimentResults
from repro.core.degradation import DegradationOutcome, DegradationPolicy
from repro.obs import CompletionLedger, MetricsRegistry, SpanTracer
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    default_chaos_plan,
    load_fault_plan,
)
from repro.estimation import (
    DemandEstimate,
    DistributionEstimator,
    EmpiricalEstimator,
    EwmaGaussianEstimator,
    FailureAwareEstimator,
    GaussianEstimator,
    MeanTimeEstimator,
    Pmf,
    kl_divergence,
)
from repro.cluster import (
    ClusterSimulator,
    JobRecord,
    JobSpec,
    SimulationResult,
    run_simulation,
)
from repro.schedulers import (
    CapacityScheduler,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    RrhScheduler,
    RushScheduler,
    Scheduler,
    SpeculativeScheduler,
)
from repro.ui import (render_cluster_text, render_profile_text,
                      render_status_html, render_status_text)
from repro.utility import (
    ConstantUtility,
    LinearUtility,
    PiecewiseUtility,
    SigmoidUtility,
    StepUtility,
    UtilityFunction,
    utility_from_config,
    utility_from_xml,
)
from repro.workload import (
    PUMA_TEMPLATES,
    JobTemplate,
    WorkloadConfig,
    WorkloadGenerator,
    generate_workload,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "DistributionError",
    "EstimationError",
    "InfeasiblePlanError",
    "SimulationError",
    "SolverBudgetError",
    # core
    "solve_rem",
    "solve_wcde",
    "solve_wcde_batch",
    "worst_case_demand",
    "WcdeCache",
    "WcdeResult",
    "OnionJob",
    "OnionResult",
    "solve_onion",
    "solve_tas_lp",
    "MappingJob",
    "ContainerPlan",
    "map_time_slots",
    "PlannerJob",
    "JobPlan",
    "PlanStats",
    "PresolvedDemand",
    "SchedulePlan",
    "RushPlanner",
    "IncrementalPlanner",
    "ParallelPlanner",
    "SqliteWcdeStore",
    "DegradationPolicy",
    "DegradationOutcome",
    # estimation
    "Pmf",
    "kl_divergence",
    "DemandEstimate",
    "DistributionEstimator",
    "MeanTimeEstimator",
    "GaussianEstimator",
    "EmpiricalEstimator",
    "EwmaGaussianEstimator",
    "FailureAwareEstimator",
    # utility
    "UtilityFunction",
    "LinearUtility",
    "SigmoidUtility",
    "ConstantUtility",
    "StepUtility",
    "PiecewiseUtility",
    "utility_from_config",
    "utility_from_xml",
    # cluster
    "JobSpec",
    "ClusterSimulator",
    "run_simulation",
    "JobRecord",
    "SimulationResult",
    # schedulers
    "Scheduler",
    "RushScheduler",
    "FifoScheduler",
    "EdfScheduler",
    "RrhScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "SpeculativeScheduler",
    # faults
    "FaultInjector",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "default_chaos_plan",
    "load_fault_plan",
    # observability
    "obs",
    "SpanTracer",
    "MetricsRegistry",
    "CompletionLedger",
    "CalibrationReport",
    "calibration_report",
    # analysis / ui
    "Experiment",
    "ExperimentResults",
    "ChaosPoint",
    "ChaosReport",
    "chaos_sweep",
    "render_status_text",
    "render_status_html",
    "render_cluster_text",
    "render_profile_text",
    # workload
    "JobTemplate",
    "PUMA_TEMPLATES",
    "WorkloadConfig",
    "WorkloadGenerator",
    "generate_workload",
    "save_trace",
    "load_trace",
]
