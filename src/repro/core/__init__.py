"""The paper's core algorithms: REM, WCDE, onion peeling, mapping, planner."""

from repro.core.clock import (
    CancelEvent,
    Clock,
    ClusterEvent,
    EventSource,
    QueueEventSource,
    SimulatedClock,
    SubmitEvent,
)
from repro.core.feasibility import (
    first_violation,
    minimum_capacity,
    staircase_feasible,
)
from repro.core.mapping import ContainerPlan, MappingJob, Segment, map_time_slots
from repro.core.parallel import ParallelPlanner, SqliteWcdeStore
from repro.core.onion import (
    JobTarget,
    LayerHint,
    OnionJob,
    OnionResult,
    default_horizon,
    solve_onion,
)
from repro.core.planner import (
    IncrementalPlanner,
    JobPlan,
    PlannerJob,
    PlanStats,
    PresolvedDemand,
    RushPlanner,
    SchedulePlan,
)
from repro.core.rem import (
    RemSolution,
    rem_min_kl,
    rem_min_kl_from_cdf,
    rem_min_kl_from_cdf_array,
    solve_rem,
)
from repro.core.tas_lp import lp_feasible, solve_tas_lp
from repro.core.wcde import (WcdeCache, WcdeResult, solve_wcde,
                             solve_wcde_batch, worst_case_demand)

__all__ = [
    "Clock",
    "SimulatedClock",
    "SubmitEvent",
    "CancelEvent",
    "ClusterEvent",
    "EventSource",
    "QueueEventSource",
    "RemSolution",
    "solve_rem",
    "rem_min_kl",
    "rem_min_kl_from_cdf",
    "rem_min_kl_from_cdf_array",
    "WcdeCache",
    "WcdeResult",
    "solve_wcde",
    "solve_wcde_batch",
    "worst_case_demand",
    "OnionJob",
    "JobTarget",
    "OnionResult",
    "LayerHint",
    "solve_onion",
    "default_horizon",
    "MappingJob",
    "Segment",
    "ContainerPlan",
    "map_time_slots",
    "lp_feasible",
    "solve_tas_lp",
    "staircase_feasible",
    "first_violation",
    "minimum_capacity",
    "PlannerJob",
    "JobPlan",
    "PlanStats",
    "PresolvedDemand",
    "SchedulePlan",
    "RushPlanner",
    "IncrementalPlanner",
    "ParallelPlanner",
    "SqliteWcdeStore",
]
