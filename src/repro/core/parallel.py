"""Process-parallel WCDE presolve and a shared sqlite solve store.

The planner's WCDE stage is embarrassingly parallel: each dirty job's
robust demand is a pure function of ``(reference fingerprint, theta,
delta)``.  :class:`ParallelPlanner` exploits that by sharding the dirty
set across a :class:`concurrent.futures.ProcessPoolExecutor` *before*
handing the round to the wrapped :class:`~repro.core.planner
.IncrementalPlanner` — the pool's answers are installed into the
planner's content-addressed :class:`~repro.core.wcde.WcdeCache`, so the
serial planning code runs unchanged and every downstream byte of the
plan is identical to the serial path.

Determinism contract
--------------------
``solve_wcde_batch`` is batch-composition invariant: each row's narrow
scan and lockstep bisection depend only on that row's own CDF bracket
(padding columns are saturated and never feasible), so splitting a
batch into shards cannot change any row's answer.  Workers therefore
return bit-identical ``(eta_bin, reference_quantile, iterations)``
triples no matter how many workers the pool has, and
``SchedulePlan.to_dict()`` output is byte-identical across 1, 2 or 4
workers and the serial planner (pinned by ``tests/test_parallel.py``).

The optional :class:`SqliteWcdeStore` persists solves keyed by the same
blake2b fingerprints, so concurrent planners and restarts share work.
A stored row is lossless: ``worst_pmf``/``worst_kl`` are lazy
derivations from the reference PMF, so the three stored integers fully
determine the rehydrated :class:`~repro.core.wcde.WcdeResult`.

One observable difference from the serial path: rows presolved by the
pool (or the store) enter the cache before the round starts, so
``PlanStats`` attributes them as cache *hits* rather than misses.  The
``rush_parallel_*`` metrics carry the true attribution.
"""

from __future__ import annotations

import pickle
import sqlite3
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.planner import (
    IncrementalPlanner,
    PlannerJob,
    RushPlanner,
    SchedulePlan,
)
from repro.core.wcde import WcdeResult, solve_wcde_batch
from repro.errors import ConfigurationError, SolverBudgetError
from repro.estimation.pmf import Pmf
from repro.obs import get_metrics, get_tracer

__all__ = ["ParallelPlanner", "SqliteWcdeStore", "seed_worker"]


def seed_worker(seed: int) -> None:
    """Process-pool initializer: pin every RNG a worker might inherit.

    RL010 requires every ``ProcessPoolExecutor`` constructed in a
    deterministic package to install a seeding initializer, extending
    RL001's seeded-RNG discipline across the fork boundary: a worker
    that inherits (or lazily re-randomizes) hidden global RNG state
    could silently diverge between runs.  The WCDE solve itself draws
    no randomness — this belt-and-braces seed exists so that any future
    worker-side code path inherits a pinned stream.
    """
    import random

    import numpy as np

    random.seed(seed)  # rushlint: disable=RL001 (initializer pins inherited global RNG state)
    np.random.seed(seed % (2 ** 32))  # rushlint: disable=RL001 (initializer pins inherited global RNG state)


def _solve_shard(payload: bytes) -> bytes:
    """Worker entry point: solve one pickled shard of references.

    The payload is ``pickle((theta, delta, [Pmf, ...]))``; the reply is
    ``pickle([(eta_bin, reference_quantile, iterations), ...])`` in the
    same order.  Only the three integers cross back over the pipe — the
    parent rehydrates lazy :class:`WcdeResult` objects against its own
    references.
    """
    theta, delta, references = pickle.loads(payload)
    solved = solve_wcde_batch(references, theta, delta)
    return pickle.dumps(
        [(r.eta_bin, r.reference_quantile, r.iterations) for r in solved])


class SqliteWcdeStore:
    """Persistent WCDE solve store shared between planners and restarts.

    Rows are keyed ``(fingerprint, theta, delta)`` — the identical
    content address the in-memory :class:`~repro.core.wcde.WcdeCache`
    uses — and hold the three integers that fully determine a
    :class:`WcdeResult`.  ``worst_pmf`` and ``worst_kl`` are lazy
    functions of the reference PMF, so :meth:`load` rehydrates a result
    indistinguishable from a fresh solve (pinned by the round-trip test
    in ``tests/test_parallel.py``).

    The default ``":memory:"`` path gives a private throwaway store; a
    filesystem path makes solves survive restarts and lets concurrent
    planner processes share them (sqlite serializes writers).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS wcde_results ("
            " fingerprint BLOB NOT NULL,"
            " theta REAL NOT NULL,"
            " delta REAL NOT NULL,"
            " eta_bin INTEGER NOT NULL,"
            " reference_quantile INTEGER NOT NULL,"
            " iterations INTEGER NOT NULL,"
            " PRIMARY KEY (fingerprint, theta, delta))")
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteWcdeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM wcde_results").fetchone()
        return int(row[0])

    def get(self, fingerprint: bytes, theta: float,
            delta: float) -> Optional[Tuple[int, int, int]]:
        """Stored ``(eta_bin, reference_quantile, iterations)`` or None."""
        row = self._conn.execute(
            "SELECT eta_bin, reference_quantile, iterations"
            " FROM wcde_results"
            " WHERE fingerprint = ? AND theta = ? AND delta = ?",
            (fingerprint, float(theta), float(delta))).fetchone()
        if row is None:
            return None
        return (int(row[0]), int(row[1]), int(row[2]))

    def put_rows(self, rows: Iterable[Tuple[bytes, float, float,
                                            int, int, int]]) -> None:
        """Upsert ``(fingerprint, theta, delta, eta, refq, iters)`` rows."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO wcde_results VALUES (?, ?, ?, ?, ?, ?)",
            list(rows))
        self._conn.commit()

    def save(self, reference: Pmf, theta: float, delta: float,
             result: WcdeResult) -> None:
        """Persist one solve under its reference's content address."""
        self.put_rows([(reference.fingerprint(), float(theta), float(delta),
                        int(result.eta_bin), int(result.reference_quantile),
                        int(result.iterations))])

    def load(self, reference: Pmf, theta: float,
             delta: float) -> Optional[WcdeResult]:
        """Rehydrate the stored solve for ``reference``, if any."""
        row = self.get(reference.fingerprint(), theta, delta)
        if row is None:
            return None
        return WcdeResult(eta_bin=row[0], reference_quantile=row[1],
                          iterations=row[2], reference=reference,
                          theta=float(theta))


def _note_pool(workers: int, shards: int, rows: int,
               store_hits: int) -> None:
    metrics = get_metrics()
    if not metrics.active:
        return
    metrics.counter(
        "rush_parallel_rows_total",
        help="WCDE rows presolved ahead of the round, by source",
        labels=("source",)).labels("pool").inc(rows)
    metrics.counter(
        "rush_parallel_rows_total",
        help="WCDE rows presolved ahead of the round, by source",
        labels=("source",)).labels("store").inc(store_hits)
    metrics.counter(
        "rush_parallel_shards_total",
        help="shards dispatched to process-pool workers").inc(shards)
    metrics.gauge(
        "rush_parallel_pool_utilization",
        help="fraction of pool workers given a shard in the last "
             "presolve").set(shards / workers if workers else 0.0)


class ParallelPlanner:
    """Drop-in :class:`IncrementalPlanner` that shards WCDE presolve.

    Wraps a :class:`RushPlanner` (which must carry a ``WcdeCache``) in
    its own :class:`IncrementalPlanner` and, before each round, solves
    every job the memo will *not* presolve: cache hits are skipped, the
    optional :class:`SqliteWcdeStore` is consulted next, and only the
    remaining misses are sharded across a ``ProcessPoolExecutor`` (one
    contiguous chunk per worker, reassembled in input order).  All
    answers are installed into the planner's cache, so the serial
    planning round that follows performs zero fresh bisections and
    produces byte-identical output — see the module docstring for the
    batch-composition-invariance argument.

    With ``workers=1`` the shard is solved inline (same vectorized
    batch path, no fork overhead), which keeps the 1-worker
    configuration exactly as cheap as the serial planner.
    """

    def __init__(self, planner: RushPlanner, *, workers: int = 2,
                 warm_start: bool = True,
                 store: Optional[SqliteWcdeStore] = None,
                 seed: int = 0) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"ParallelPlanner workers must be >= 1, got {workers}")
        if planner.wcde_cache is None:
            raise ConfigurationError(
                "ParallelPlanner requires the wrapped planner to have a "
                "WcdeCache (wcde_cache_size > 0): pool results are "
                "installed through it")
        self.planner = planner
        self.workers = int(workers)
        self.store = store
        self.seed = int(seed)
        self._incremental = IncrementalPlanner(planner,
                                               warm_start=warm_start)
        self._executor: Optional[ProcessPoolExecutor] = None
        self.pool_rows = 0
        self.store_hits = 0

    # -- IncrementalPlanner surface -------------------------------------------

    @property
    def warm_start(self) -> bool:
        return self._incremental.warm_start

    @property
    def presolve_hits(self) -> int:
        return self._incremental.presolve_hits

    @property
    def presolve_misses(self) -> int:
        return self._incremental.presolve_misses

    def forget(self, job_id: str) -> None:
        """Drop a departed job's incremental state."""
        self._incremental.forget(job_id)

    def reset(self) -> None:
        """Drop all incremental state (presolves and warm-start hints)."""
        self._incremental.reset()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelPlanner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the parallel presolve ------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=seed_worker,
                initargs=(self.seed,))
        return self._executor

    def _presolve(self, jobs: Sequence[PlannerJob],
                  deadline: Optional[float]) -> None:
        planner = self.planner
        cache = planner.wcde_cache
        assert cache is not None
        theta = planner.theta
        # Group the jobs the incremental memo will not presolve by
        # resolved delta, dedupe by content address, and drop anything
        # the cache or store already knows.
        groups: Dict[float, "Dict[bytes, Pmf]"] = {}
        for job in self._incremental.pending_jobs(jobs):
            resolved = float(planner.delta if job.delta is None
                             else job.delta)
            pmf = job.estimate.pmf
            if cache.peek(pmf, theta, resolved) is not None:
                continue
            groups.setdefault(resolved, {}).setdefault(
                pmf.fingerprint(), pmf)
        store = self.store
        store_hits = 0
        shards_used = 0
        pool_rows = 0
        for resolved, by_print in groups.items():
            misses: List[Pmf] = []
            for fingerprint, pmf in by_print.items():
                row = None if store is None else store.get(
                    fingerprint, theta, resolved)
                if row is not None:
                    cache.install(pmf, theta, resolved, WcdeResult(
                        eta_bin=row[0], reference_quantile=row[1],
                        iterations=row[2], reference=pmf, theta=theta))
                    store_hits += 1
                else:
                    misses.append(pmf)
            if not misses:
                continue
            if deadline is not None and time.perf_counter() > deadline:
                raise SolverBudgetError(
                    "planning round exceeded its time budget during the "
                    "parallel WCDE presolve")
            if self.workers == 1 or len(misses) < 2 * self.workers:
                solved = solve_wcde_batch(misses, theta, resolved)
                shards_used += 1
            else:
                chunk = -(-len(misses) // self.workers)
                shards = [misses[i:i + chunk]
                          for i in range(0, len(misses), chunk)]
                futures: List["Future[bytes]"] = [self._pool().submit(
                    _solve_shard, pickle.dumps((theta, resolved, shard)))
                    for shard in shards]
                solved = []
                for shard, future in zip(shards, futures):
                    for pmf, row in zip(shard, pickle.loads(future.result())):
                        solved.append(WcdeResult(
                            eta_bin=row[0], reference_quantile=row[1],
                            iterations=row[2], reference=pmf, theta=theta))
                shards_used += len(shards)
            pool_rows += len(misses)
            store_rows = []
            for pmf, result in zip(misses, solved):
                cache.install(pmf, theta, resolved, result)
                if store is not None:
                    store_rows.append(
                        (pmf.fingerprint(), float(theta), float(resolved),
                         int(result.eta_bin),
                         int(result.reference_quantile),
                         int(result.iterations)))
            if store_rows:
                store.put_rows(store_rows)
        self.pool_rows += pool_rows
        self.store_hits += store_hits
        tracer = get_tracer()
        if tracer.active and (pool_rows or store_hits):
            tracer.event("planner.parallel_presolve", workers=self.workers,
                         shards=shards_used, rows=pool_rows,
                         store_hits=store_hits)
        if pool_rows or store_hits:
            _note_pool(self.workers, shards_used, pool_rows, store_hits)

    def plan(self, jobs: Sequence[PlannerJob],
             horizon: Optional[int] = None, *,
             time_budget: Optional[float] = None) -> SchedulePlan:
        """One planning round with the WCDE stage presolved in parallel.

        ``time_budget`` covers the whole round including the presolve:
        the budget is checked cooperatively between shards, and the
        remainder is handed to the serial round.
        """
        started = time.perf_counter()
        if time_budget is not None and time_budget <= 0.0:
            raise ConfigurationError(
                f"time_budget must be positive, got {time_budget}")
        deadline = None if time_budget is None else started + time_budget
        self._presolve(jobs, deadline)
        remaining: Optional[float] = None
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0:
                raise SolverBudgetError(
                    "planning round exceeded its time budget during the "
                    "parallel WCDE presolve")
        return self._incremental.plan(jobs, horizon, time_budget=remaining)
