"""Theorem 2's staircase feasibility test as a public helper.

Condition (12) of the paper — ``sum of the demands due by each deadline
never exceeds capacity x deadline`` — is the schedulability criterion
underlying the whole TAS layer.  The onion peeling and LP solvers embed
vectorized variants internally; this module exposes the plain form so
users (and the test suite) can verify schedules independently.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["staircase_feasible", "first_violation", "minimum_capacity"]


def _normalize(pairs: Iterable[Tuple[float, float]]) -> Sequence[Tuple[float, float]]:
    items = [(float(d), float(eta)) for d, eta in pairs]
    for deadline, demand in items:
        if demand < 0 or math.isnan(demand):
            raise ConfigurationError(f"demand must be >= 0, got {demand}")
        if math.isnan(deadline):
            raise ConfigurationError("deadline must not be NaN")
    return sorted(items)


def first_violation(pairs: Iterable[Tuple[float, float]],
                    capacity: float) -> int | None:
    """Index (in deadline order) of the first violated constraint.

    ``pairs`` are ``(deadline, demand)`` tuples; returns ``None`` when the
    staircase condition holds everywhere.  Jobs with zero demand never
    violate; a positive demand with a non-positive deadline always does.
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    prefix = 0.0
    for index, (deadline, demand) in enumerate(_normalize(pairs)):
        prefix += demand
        if prefix > 0.0 and prefix > capacity * deadline + 1e-9:
            return index
    return None


def staircase_feasible(pairs: Iterable[Tuple[float, float]],
                       capacity: float) -> bool:
    """Whether demands fit their deadlines on ``capacity`` containers.

    By Theorem 2 this is equivalent to the existence of a (fractional)
    container schedule meeting every deadline — the LP feasibility of
    :func:`repro.core.tas_lp.lp_feasible`.
    """
    return first_violation(pairs, capacity) is None


def minimum_capacity(pairs: Iterable[Tuple[float, float]]) -> float:
    """The smallest capacity for which the pairs are staircase-feasible.

    Useful for capacity planning: ``max over deadlines of (cumulative
    demand / deadline)``.  Raises if any positive demand has a
    non-positive deadline (no finite capacity suffices).
    """
    worst = 0.0
    prefix = 0.0
    for deadline, demand in _normalize(pairs):
        prefix += demand
        if prefix <= 0:
            continue
        if deadline <= 0:
            raise ConfigurationError(
                "positive demand with non-positive deadline has no finite "
                "capacity requirement")
        worst = max(worst, prefix / deadline)
    return worst
