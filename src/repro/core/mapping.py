"""Continuous time-slot mapping — Algorithm 4 of the paper.

The onion peeling layer decides *when* each job should finish; this module
decides *which containers run which tasks when*, under the practical
constraint that a task, once placed on a container, occupies it
continuously until it finishes (no preemption mid-task).

The cluster's ``C`` containers are modeled as ``C`` queues.  Jobs are
processed in order of their target completion-time ``T_i``; each job's
robust demand ``eta_i`` is split into tasks of the average container
runtime ``R_i`` and poured into the queues front-to-back: a queue keeps
accepting tasks of job ``i`` while its occupation is below ``T_i`` (so the
last task may overshoot to at most ``T_i + R_i``), then the residual moves
to the next queue.  Theorem 3 guarantees that whenever the staircase
condition (12) held for the targets, every job completes by
``T_i + R_i`` — which is why the onion layer pre-compensates deadlines by
``R_i``.

When the targets were *not* feasible (an overloaded cluster that the
planner intentionally lets degrade), the residual that fits nowhere is
force-assigned to the least-occupied queue and the affected jobs are
reported in :attr:`ContainerPlan.overflowed` — they will simply finish
late, mirroring the zero-utility "red rows" of the paper's web interface.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.errors import ConfigurationError
from repro.obs import get_metrics, get_tracer

__all__ = ["MappingJob", "Segment", "ContainerPlan", "map_time_slots"]


@dataclass(frozen=True)
class MappingJob:
    """Input to the mapping stage for one job.

    ``demand`` is the robust workload ``eta_i`` (container-time-slots),
    ``runtime`` the average container runtime ``R_i`` and
    ``target_completion`` the onion-peeled ``T_i``, all in slots from now.

    ``tie_break`` orders jobs sharing a target completion-time: larger
    values run first.  The planner sets it to the utility still
    recoverable by finishing earlier, so a late-but-salvageable sigmoid
    job is packed ahead of a completion-time-insensitive one when both
    were deferred to the horizon.
    """

    job_id: str
    demand: float
    runtime: float
    target_completion: int
    tie_break: float = 0.0

    def __post_init__(self) -> None:
        if self.demand < 0 or not math.isfinite(self.demand):
            raise ConfigurationError(
                f"job {self.job_id!r}: demand must be finite and >= 0")
        if self.runtime <= 0 or not math.isfinite(self.runtime):
            raise ConfigurationError(
                f"job {self.job_id!r}: runtime must be finite and > 0")
        if self.target_completion < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: target completion must be >= 0")

    @property
    def task_count(self) -> int:
        """Number of whole tasks of duration ``runtime`` covering the demand."""
        return int(math.ceil(self.demand / self.runtime - 1e-9))


@dataclass(frozen=True)
class Segment:
    """A run of consecutive tasks of one job on one container queue."""

    job_id: str
    queue: int
    start: float
    tasks: int
    runtime: float

    @property
    def end(self) -> float:
        return self.start + self.tasks * self.runtime


@dataclass
class ContainerPlan:
    """The concrete container assignment produced by the mapping.

    The plan is both a record (segments, per-job completions) and a query
    interface: :meth:`allocation_at` answers "how many containers does each
    job hold at time t", which is what the CA unit reads to pick the next
    container grant.
    """

    capacity: int
    segments: List[Segment] = field(default_factory=list)
    completions: Dict[str, float] = field(default_factory=dict)
    overflowed: Set[str] = field(default_factory=set)
    _queue_segments: List[List[Segment]] = field(default_factory=list, repr=False)
    _queue_starts: List[List[float]] = field(default_factory=list, repr=False)

    def completion(self, job_id: str) -> float:
        """The planned completion-time of a job (slots from now)."""
        return self.completions[job_id]

    @property
    def makespan(self) -> float:
        """Completion-time of the last job, 0 for an empty plan."""
        return max(self.completions.values(), default=0.0)

    def allocation_at(self, t: float) -> Dict[str, int]:
        """Containers held by each job at time ``t`` under this plan."""
        counts: Dict[str, int] = {}
        for starts, segs in zip(self._queue_starts, self._queue_segments):
            idx = bisect_right(starts, t) - 1
            if idx < 0:
                continue
            seg = segs[idx]
            if seg.start <= t < seg.end:
                counts[seg.job_id] = counts.get(seg.job_id, 0) + 1
        return counts

    def next_slot_allocation(self) -> Dict[str, int]:
        """The assignment for the immediate next slot.

        The RUSH feedback cycle only ever *applies* this first column of
        the plan — a fresh plan is computed at the next scheduling event.
        """
        return self.allocation_at(0.0)

    def _index(self) -> None:
        per_queue: List[List[Segment]] = [[] for _ in range(self.capacity)]
        for seg in self.segments:
            per_queue[seg.queue].append(seg)
        for segs in per_queue:
            segs.sort(key=lambda s: s.start)
        self._queue_segments = per_queue
        self._queue_starts = [[s.start for s in segs] for segs in per_queue]


def map_time_slots(jobs: Sequence[MappingJob], capacity: int) -> ContainerPlan:
    """Run Algorithm 4 and return the resulting container plan.

    Jobs are sorted by target completion-time; ties resolve by job id so
    the mapping is deterministic.  Each queue accepts whole tasks of a job
    while its occupation is still below the job's target, overshooting by
    less than one task runtime — the source of Theorem 3's ``T_i + R_i``
    completion bound.
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("job ids must be unique within one mapping")

    with get_tracer().span("mapping.solve", jobs=len(jobs),
                           capacity=capacity) as span:
        plan = ContainerPlan(capacity=capacity)
        occupation = [0.0] * capacity
        for job in sorted(jobs, key=lambda j: (j.target_completion,
                                               -j.tie_break, j.job_id)):
            remaining = job.task_count
            if remaining == 0:
                plan.completions[job.job_id] = 0.0
                continue
            finish = 0.0
            target = float(job.target_completion)
            for k in range(capacity):
                if remaining == 0:
                    break
                if occupation[k] >= target:
                    continue
                # Tasks placeable while the queue occupation stays below T_i;
                # the last one may overshoot to < T_i + R_i.
                fit = int(math.ceil((target - occupation[k]) / job.runtime
                                    - 1e-9))
                take = min(fit, remaining)
                if take <= 0:
                    continue
                seg = Segment(job_id=job.job_id, queue=k, start=occupation[k],
                              tasks=take, runtime=job.runtime)
                plan.segments.append(seg)
                occupation[k] = seg.end
                finish = max(finish, seg.end)
                remaining -= take
            while remaining > 0:
                # Infeasible targets: force the residue onto the
                # least-occupied queue, one task at a time, and flag the job
                # as overflowed.
                plan.overflowed.add(job.job_id)
                k = min(range(capacity), key=occupation.__getitem__)
                seg = Segment(job_id=job.job_id, queue=k, start=occupation[k],
                              tasks=1, runtime=job.runtime)
                plan.segments.append(seg)
                occupation[k] = seg.end
                finish = max(finish, seg.end)
                remaining -= 1
            plan.completions[job.job_id] = finish
        plan._index()
        span.note(makespan=plan.makespan, overflowed=len(plan.overflowed))
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_mapping_solves_total",
                        help="Continuous time-slot mappings").inc()
    return plan
