"""The end-to-end RUSH planner: WCDE -> onion peeling -> mapping.

This is the library's primary entry point for one *planning round* of the
robust scheduling problem (RS) of Section II.  Given a snapshot of the
active jobs — each with a utility function and a demand estimate from its
DE unit — the planner

1. solves the WCDE problem per job (Algorithm 2 with the closed-form REM
   of Algorithm 1) to obtain the robust demand ``eta_i``,
2. runs onion peeling (Algorithm 3) to pick lexicographically max-min
   optimal target completion-times, with deadlines pre-compensated by
   ``R_i`` per Theorem 3, and
3. maps the targets onto ``C`` container queues (Algorithm 4), yielding a
   concrete assignment whose first slot the CA unit applies.

The planner's *decisions* are stateless — the surrounding system (the
cluster simulator's :class:`~repro.schedulers.rush.RushScheduler`, or a
real resource manager) re-invokes it on every scheduling event, closing
the paper's feedback cycle of estimation, recalculation and allocation —
but between consecutive events most jobs' DE output is bit-identical, so
re-solving everything from scratch wastes almost all of the work.  The
incremental machinery amortizes it three ways:

* a content-addressed :class:`~repro.core.wcde.WcdeCache` memoizes WCDE
  solves under ``(PMF fingerprint, theta, delta)``;
* callers that track job dirtiness can hand back :class:`PresolvedDemand`
  values so clean jobs skip stage 1 entirely (see
  :class:`IncrementalPlanner`);
* the onion warm start re-probes the previous plan's per-layer brackets,
  collapsing unchanged layers to two feasibility checks.

Every plan carries a :class:`PlanStats` record (cache hits/misses,
per-stage seconds, peels, feasibility checks) so the cost of the pipeline
is an observable number rather than a guess.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SolverBudgetError
from repro.core.mapping import ContainerPlan, MappingJob, map_time_slots
from repro.core.onion import LayerHint, OnionJob, solve_onion
from repro.core.wcde import WcdeCache, solve_wcde, solve_wcde_batch
from repro.estimation.base import DemandEstimate
from repro.obs import get_metrics, get_tracer
from repro.utility.base import UtilityFunction

__all__ = ["PlannerJob", "JobPlan", "PlanStats", "PresolvedDemand",
           "SchedulePlan", "RushPlanner", "IncrementalPlanner"]

#: Histogram buckets for staircase feasibility checks per planning round.
_CHECK_BUCKETS = (2.0, 8.0, 32.0, 128.0, 512.0, 2048.0)


def _note_plan(stats: "PlanStats") -> None:
    """Record one completed planning round in the metrics registry."""
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_plans_total",
                        help="Robust planning rounds completed").inc()
        metrics.histogram("rush_plan_feasibility_checks",
                          buckets=_CHECK_BUCKETS,
                          help="Staircase feasibility checks per round",
                          unit="checks").observe(stats.feasibility_checks)


@dataclass(frozen=True)
class PlannerJob:
    """A job snapshot handed to the planner.

    Attributes
    ----------
    job_id:
        Unique identifier within one planning round.
    utility:
        Utility function of *total* completion-time (slots since
        submission).
    estimate:
        The DE unit's current report for the remaining demand.
    elapsed:
        Slots already elapsed since the job's submission.
    delta:
        Optional per-job entropy threshold overriding the planner default,
        matching the per-job ``delta_i`` of the formulation.
    extra_demand:
        Deterministic demand (container-time-slots) added on top of the
        robust quantile — typically the expected remaining work of the
        job's currently *running* tasks, which occupy containers beyond
        the present slot but are not part of the pending-task estimate.
    """

    job_id: str
    utility: UtilityFunction
    estimate: DemandEstimate
    elapsed: float = 0.0
    delta: Optional[float] = None
    extra_demand: float = 0.0


@dataclass(frozen=True)
class PresolvedDemand:
    """A WCDE answer computed in an earlier round, still valid for a job.

    ``eta`` and ``reference`` are in container-time-slots (bin width
    already applied); ``iterations`` preserves the original bisection
    count for reporting.  Valid exactly as long as the job's reference
    PMF, ``theta`` and ``delta`` are unchanged — the invariant the caller
    (scheduler dirty tracking) is responsible for.
    """

    eta: float
    reference: float
    iterations: int


@dataclass(frozen=True)
class JobPlan:
    """The planner's decision for one job.

    ``robust_demand`` is ``eta_i`` plus the job's ``extra_demand``
    (container-time-slots); ``reference_demand`` the non-robust
    theta-quantile of the reference distribution, for comparison.
    ``target_completion`` is the onion target and ``planned_completion``
    the completion under the concrete container plan (at most
    ``target + R_i`` when targets were feasible).  ``achievable`` is false
    when the expected utility is zero — the paper's red-row warning that
    the job cannot meet any useful deadline.
    """

    job_id: str
    robust_demand: float
    reference_demand: float
    target_completion: int
    planned_completion: float
    predicted_utility: float
    achievable: bool
    layer: int
    wcde_iterations: int


@dataclass
class PlanStats:
    """Perf counters for one planning round.

    ``wcde_presolved`` jobs skipped stage 1 entirely (the caller supplied
    a still-valid eta), ``wcde_cache_hits`` hit the content-addressed
    memo, ``wcde_cache_misses`` paid a full bisection.  Stage seconds are
    wall-clock; ``peels`` is the onion layer count and
    ``feasibility_checks`` the staircase evaluations (the onion's unit of
    work).  ``warm_start`` records whether the onion received hints.
    """

    wcde_presolved: int = 0
    wcde_cache_hits: int = 0
    wcde_cache_misses: int = 0
    wcde_seconds: float = 0.0
    onion_seconds: float = 0.0
    mapping_seconds: float = 0.0
    peels: int = 0
    feasibility_checks: int = 0
    warm_start: bool = False
    #: Degradation-ladder rung that produced this plan: "" for the
    #: primary solve, else "cold_exact" / "last_good" (set by the
    #: scheduler's :class:`~repro.core.degradation.DegradationPolicy`).
    fallback: str = ""


@dataclass
class SchedulePlan:
    """Complete output of one planning round."""

    jobs: Dict[str, JobPlan]
    container_plan: ContainerPlan
    theta: float
    horizon: int
    layers: int
    feasibility_checks: int
    solve_seconds: float
    stats: PlanStats = field(default_factory=PlanStats)
    onion_hints: Tuple[LayerHint, ...] = field(default=(), repr=False)
    _order: List[str] = field(default_factory=list, repr=False)
    _presolved: Dict[str, PresolvedDemand] = field(default_factory=dict,
                                                   repr=False)

    def next_slot_allocation(self) -> Dict[str, int]:
        """Containers each job should hold in the immediate next slot."""
        return self.container_plan.next_slot_allocation()

    def impossible_jobs(self) -> List[str]:
        """Jobs whose predicted utility is zero (the UI's red rows)."""
        return [job_id for job_id in self._order
                if not self.jobs[job_id].achievable]

    def utility_vector(self) -> List[float]:
        """Predicted utilities sorted non-decreasingly."""
        return sorted(plan.predicted_utility for plan in self.jobs.values())

    def presolved_demands(self) -> Dict[str, PresolvedDemand]:
        """Per-job WCDE answers (pre-``extra_demand``), for the next round.

        Feed entries for *clean* jobs back into :meth:`RushPlanner.plan`
        as ``presolved`` so they skip stage 1; :class:`IncrementalPlanner`
        does this bookkeeping automatically.
        """
        return dict(self._presolved)

    def to_dict(self) -> dict:
        """JSON-compatible dump of the plan (schema-stable export).

        Floats are rounded to 6 decimals so the output is reproducible
        across platforms; ``rush plan --json`` writes exactly this.
        """
        def num(x: float) -> Optional[float]:
            if not math.isfinite(x):
                return None
            return round(float(x), 6)

        return {
            "theta": num(self.theta),
            "horizon": self.horizon,
            "layers": self.layers,
            "feasibility_checks": self.feasibility_checks,
            "fallback": self.stats.fallback,
            "jobs": [
                {
                    "job_id": job_id,
                    "robust_demand": num(plan.robust_demand),
                    "reference_demand": num(plan.reference_demand),
                    "target_completion": plan.target_completion,
                    "planned_completion": num(plan.planned_completion),
                    "predicted_utility": num(plan.predicted_utility),
                    "achievable": plan.achievable,
                    "layer": plan.layer,
                    "wcde_iterations": plan.wcde_iterations,
                }
                for job_id, plan in ((jid, self.jobs[jid])
                                     for jid in self._order)
            ],
        }


class RushPlanner:
    """Solver for one round of the robust scheduling problem.

    Parameters
    ----------
    capacity:
        Cluster capacity ``C`` in containers.
    theta:
        Completion-probability percentile of the robust constraint (3).
    delta:
        Default entropy threshold ``delta_i`` for every job; the paper's
        experiments use values around 0.7.
    tolerance:
        Bisection tolerance ``Delta`` of the onion peeling.
    compensate_runtime:
        Subtract ``R_i`` from each deadline so Theorem 3's mapping bound
        still meets the original deadline (Section III-C).  Disable only
        for experiments isolating the mapping error.
    wcde_cache_size:
        Entry bound of the content-addressed WCDE memo; 0 disables
        memoization (every solve pays the full bisection).  The cache
        never changes results — an entry is keyed by everything the solve
        depends on — so this is purely a speed/memory dial.
    batch_wcde:
        Route stage 1 through the vectorized :func:`~repro.core.wcde
        .solve_wcde_batch` sweep (the default).  ``False`` falls back to
        the scalar per-job solve — element-wise identical by the batch
        equivalence property, kept as an A/B and debugging lever
        (surfaced as ``rush simulate --no-batch``).
    """

    def __init__(self, capacity: int, *, theta: float = 0.9, delta: float = 0.7,
                 tolerance: float = 0.01, compensate_runtime: bool = True,
                 wcde_cache_size: int = 4096, batch_wcde: bool = True) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta={theta} outside [0, 1]")
        if delta < 0.0:
            raise ConfigurationError(f"delta={delta} must be >= 0")
        if tolerance <= 0.0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        if wcde_cache_size < 0:
            raise ConfigurationError(
                f"wcde_cache_size must be >= 0, got {wcde_cache_size}")
        self.capacity = capacity
        self.theta = theta
        self.delta = delta
        self.tolerance = tolerance
        self.compensate_runtime = compensate_runtime
        self.batch_wcde = batch_wcde
        self.wcde_cache: Optional[WcdeCache] = (
            WcdeCache(wcde_cache_size) if wcde_cache_size else None)

    def robust_demand(self, estimate: DemandEstimate,
                      delta: Optional[float] = None) -> tuple[float, float, int]:
        """WCDE for one job: (eta, reference quantile, iterations), in slots."""
        theta = self.theta
        resolved_delta = self.delta if delta is None else delta
        if self.wcde_cache is not None:
            result = self.wcde_cache.solve(estimate.pmf, theta, resolved_delta)
        else:
            result = solve_wcde(estimate.pmf, theta, resolved_delta,
                                need_worst_pmf=False)
        return (estimate.demand_at(result.eta_bin),
                estimate.demand_at(result.reference_quantile),
                result.iterations)

    def plan(self, jobs: Sequence[PlannerJob],
             horizon: Optional[int] = None, *,
             presolved: Optional[Mapping[str, PresolvedDemand]] = None,
             warm_start: Optional[Sequence[LayerHint]] = None,
             time_budget: Optional[float] = None) -> SchedulePlan:
        """Produce a complete schedule plan for the given job snapshot.

        ``presolved`` maps job ids to WCDE answers from an earlier round
        that the caller knows are still valid (unchanged reference PMF,
        theta and delta); those jobs skip stage 1.  ``warm_start`` is the
        previous plan's ``onion_hints``; see :func:`repro.core.onion
        .solve_onion` for its exact (probe-only) semantics.

        ``time_budget`` is a wall-clock allowance in seconds for the
        whole round; exceeding it raises
        :class:`~repro.errors.SolverBudgetError` from the stage that
        noticed (checked cooperatively per WCDE batch, per onion
        feasibility probe and before the mapping stage), leaving the
        planner's caches consistent so a retry or fallback is safe.
        """
        started = time.perf_counter()
        if time_budget is not None and time_budget <= 0.0:
            raise ConfigurationError(
                f"time_budget must be positive, got {time_budget}")
        deadline = None if time_budget is None else started + time_budget
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("job ids must be unique within one plan")
        with get_tracer().span("planner.plan", jobs=len(jobs)) as span:
            stats = PlanStats(warm_start=warm_start is not None)
            cache = self.wcde_cache
            hits0 = cache.hits if cache is not None else 0
            misses0 = cache.misses if cache is not None else 0

            etas: Dict[str, float] = {}
            refs: Dict[str, float] = {}
            iters: Dict[str, int] = {}
            presolved_out: Dict[str, PresolvedDemand] = {}
            onion_jobs: List[OnionJob] = []

            # Stage 1, batched: presolved jobs skip the solve entirely;
            # everything else is grouped by resolved delta (theta is
            # planner-wide) and handed to the vectorized batch solver in
            # one call per group — element-wise identical to the scalar
            # per-job path, without its per-job Python bisection loops.
            dirty: List[PlannerJob] = []
            for job in jobs:
                pre = presolved.get(job.job_id) if presolved else None
                if pre is not None:
                    stats.wcde_presolved += 1
                    presolved_out[job.job_id] = pre
                else:
                    dirty.append(job)
            if cache is not None and stats.wcde_presolved:
                cache.note_presolve_reuse(stats.wcde_presolved)
            groups: Dict[float, List[PlannerJob]] = {}
            for job in dirty:
                resolved = self.delta if job.delta is None else job.delta
                groups.setdefault(float(resolved), []).append(job)
            for resolved, group in groups.items():
                if deadline is not None and time.perf_counter() > deadline:
                    raise SolverBudgetError(
                        "planning round exceeded its time budget during the "
                        "WCDE stage")
                pmfs = [job.estimate.pmf for job in group]
                if not self.batch_wcde:
                    # Scalar A/B path: one solve per job, same answers.
                    if cache is not None:
                        solved = [cache.solve(pmf, self.theta, resolved)
                                  for pmf in pmfs]
                    else:
                        solved = [solve_wcde(pmf, self.theta, resolved,
                                             need_worst_pmf=False)
                                  for pmf in pmfs]
                elif cache is not None:
                    solved = cache.solve_batch(pmfs, self.theta, resolved)
                else:
                    solved = solve_wcde_batch(pmfs, self.theta, resolved)
                for job, result in zip(group, solved):
                    presolved_out[job.job_id] = PresolvedDemand(
                        eta=job.estimate.demand_at(result.eta_bin),
                        reference=job.estimate.demand_at(
                            result.reference_quantile),
                        iterations=result.iterations)
            for job in jobs:
                pre = presolved_out[job.job_id]
                eta = pre.eta + max(job.extra_demand, 0.0)
                etas[job.job_id] = eta
                refs[job.job_id] = pre.reference
                iters[job.job_id] = pre.iterations
                compensation = (job.estimate.container_runtime
                                if self.compensate_runtime else 0.0)
                onion_jobs.append(OnionJob(
                    job_id=job.job_id, demand=eta, utility=job.utility,
                    elapsed=job.elapsed, compensation=compensation))
            if cache is not None:
                stats.wcde_cache_hits = cache.hits - hits0
                stats.wcde_cache_misses = cache.misses - misses0
            stats.wcde_seconds = time.perf_counter() - started

            if horizon is None:
                total = sum(etas.values())
                max_runtime = max((job.estimate.container_runtime for job in jobs),
                                  default=1.0)
                horizon = max(1, int(math.ceil(total / self.capacity))
                              + int(math.ceil(max_runtime)) + 1)

            onion_started = time.perf_counter()
            onion = solve_onion(onion_jobs, self.capacity,
                                tolerance=self.tolerance, horizon=horizon,
                                warm_start=warm_start, budget_deadline=deadline)
            stats.onion_seconds = time.perf_counter() - onion_started
            stats.peels = onion.layers
            stats.feasibility_checks = onion.feasibility_checks

            if deadline is not None and time.perf_counter() > deadline:
                raise SolverBudgetError(
                    "planning round exceeded its time budget before the "
                    "mapping stage")
            mapping_started = time.perf_counter()
            mapping_jobs = []
            for job in jobs:
                target = onion.targets[job.job_id].target_completion
                runtime = job.estimate.container_runtime
                # Tie-break equal targets by the utility recoverable from
                # finishing one task-runtime earlier, so a salvageable late job
                # is packed ahead of a completion-time-insensitive one.
                earlier = max(target - runtime, 0.0)
                recoverable = (job.utility.value(job.elapsed + earlier)
                               - job.utility.value(job.elapsed + target))
                mapping_jobs.append(MappingJob(
                    job_id=job.job_id, demand=etas[job.job_id], runtime=runtime,
                    target_completion=target, tie_break=recoverable))
            container_plan = map_time_slots(mapping_jobs, self.capacity)
            stats.mapping_seconds = time.perf_counter() - mapping_started

            job_plans: Dict[str, JobPlan] = {}
            for job in jobs:
                target = onion.targets[job.job_id]
                job_plans[job.job_id] = JobPlan(
                    job_id=job.job_id,
                    robust_demand=etas[job.job_id],
                    reference_demand=refs[job.job_id],
                    target_completion=target.target_completion,
                    planned_completion=container_plan.completion(job.job_id),
                    predicted_utility=target.utility_value,
                    achievable=target.achievable,
                    layer=target.layer,
                    wcde_iterations=iters[job.job_id])

            plan = SchedulePlan(
                jobs=job_plans, container_plan=container_plan, theta=self.theta,
                horizon=onion.horizon, layers=onion.layers,
                feasibility_checks=onion.feasibility_checks,
                solve_seconds=time.perf_counter() - started,
                stats=stats, onion_hints=onion.hints,
                _order=list(ids), _presolved=presolved_out)
            span.note(layers=onion.layers,
                      feasibility_checks=onion.feasibility_checks,
                      presolved=stats.wcde_presolved)
        _note_plan(stats)
        return plan


@dataclass
class _JobMemo:
    """Per-job incremental state: the estimate the presolve belongs to."""

    estimate: DemandEstimate
    delta: Optional[float]
    presolved: PresolvedDemand


class IncrementalPlanner:
    """A planning session that carries state from one round to the next.

    Wraps a :class:`RushPlanner` and keeps, per job, the WCDE answer of
    the last round together with the exact :class:`DemandEstimate` object
    it was computed from.  A job whose caller hands back the *same
    estimate object* (and per-job delta) is clean — its eta cannot have
    changed — and is presolved; anything else falls through to the
    planner's content-addressed WCDE cache and, failing that, a fresh
    bisection.  The previous plan's onion hints are forwarded as a warm
    start unless ``warm_start=False``.

    With warm start off, every plan is bit-identical to what a cold
    :class:`RushPlanner` would produce for the same snapshot (the
    equivalence the property tests pin down); with it on, drifted
    snapshots may settle on within-tolerance different utility levels in
    exchange for collapsing unchanged onion layers to two feasibility
    checks.
    """

    def __init__(self, planner: RushPlanner, *, warm_start: bool = True) -> None:
        self.planner = planner
        self.warm_start = warm_start
        self._memo: Dict[str, _JobMemo] = {}
        self._hints: Optional[Tuple[LayerHint, ...]] = None
        self.presolve_hits = 0
        self.presolve_misses = 0

    def forget(self, job_id: str) -> None:
        """Drop a departed job's state."""
        self._memo.pop(job_id, None)

    def pending_jobs(self, jobs: Sequence[PlannerJob]) -> List[PlannerJob]:
        """The jobs the next :meth:`plan` call will *not* presolve.

        Pure query (no counter or memo changes): a job is pending unless
        the memo holds the identical estimate object under the same
        per-job delta.  :class:`~repro.core.parallel.ParallelPlanner`
        uses this to ship exactly the to-be-solved set to its worker
        pool ahead of the round.
        """
        pending: List[PlannerJob] = []
        for job in jobs:
            memo = self._memo.get(job.job_id)
            if not (memo is not None and memo.estimate is job.estimate
                    and memo.delta == job.delta):
                pending.append(job)
        return pending

    def reset(self) -> None:
        """Drop all incremental state (presolves and warm-start hints)."""
        self._memo.clear()
        self._hints = None

    def plan(self, jobs: Sequence[PlannerJob],
             horizon: Optional[int] = None, *,
             time_budget: Optional[float] = None) -> SchedulePlan:
        """One planning round; clean jobs skip the WCDE stage."""
        presolved: Dict[str, PresolvedDemand] = {}
        for job in jobs:
            memo = self._memo.get(job.job_id)
            if (memo is not None and memo.estimate is job.estimate
                    and memo.delta == job.delta):
                presolved[job.job_id] = memo.presolved
                self.presolve_hits += 1
            else:
                self.presolve_misses += 1
        plan = self.planner.plan(
            jobs, horizon, presolved=presolved,
            warm_start=self._hints if self.warm_start else None,
            time_budget=time_budget)
        fresh = plan.presolved_demands()
        for job in jobs:
            self._memo[job.job_id] = _JobMemo(
                estimate=job.estimate, delta=job.delta,
                presolved=fresh[job.job_id])
        self._hints = plan.onion_hints
        return plan
