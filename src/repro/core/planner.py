"""The end-to-end RUSH planner: WCDE -> onion peeling -> mapping.

This is the library's primary entry point for one *planning round* of the
robust scheduling problem (RS) of Section II.  Given a snapshot of the
active jobs — each with a utility function and a demand estimate from its
DE unit — the planner

1. solves the WCDE problem per job (Algorithm 2 with the closed-form REM
   of Algorithm 1) to obtain the robust demand ``eta_i``,
2. runs onion peeling (Algorithm 3) to pick lexicographically max-min
   optimal target completion-times, with deadlines pre-compensated by
   ``R_i`` per Theorem 3, and
3. maps the targets onto ``C`` container queues (Algorithm 4), yielding a
   concrete assignment whose first slot the CA unit applies.

The planner is stateless: the surrounding system (the cluster simulator's
:class:`~repro.schedulers.rush.RushScheduler`, or a real resource manager)
re-invokes it on every scheduling event, closing the paper's feedback
cycle of estimation, recalculation and allocation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.mapping import ContainerPlan, MappingJob, map_time_slots
from repro.core.onion import OnionJob, solve_onion
from repro.core.wcde import solve_wcde
from repro.estimation.base import DemandEstimate
from repro.utility.base import UtilityFunction

__all__ = ["PlannerJob", "JobPlan", "SchedulePlan", "RushPlanner"]


@dataclass(frozen=True)
class PlannerJob:
    """A job snapshot handed to the planner.

    Attributes
    ----------
    job_id:
        Unique identifier within one planning round.
    utility:
        Utility function of *total* completion-time (slots since
        submission).
    estimate:
        The DE unit's current report for the remaining demand.
    elapsed:
        Slots already elapsed since the job's submission.
    delta:
        Optional per-job entropy threshold overriding the planner default,
        matching the per-job ``delta_i`` of the formulation.
    extra_demand:
        Deterministic demand (container-time-slots) added on top of the
        robust quantile — typically the expected remaining work of the
        job's currently *running* tasks, which occupy containers beyond
        the present slot but are not part of the pending-task estimate.
    """

    job_id: str
    utility: UtilityFunction
    estimate: DemandEstimate
    elapsed: float = 0.0
    delta: Optional[float] = None
    extra_demand: float = 0.0


@dataclass(frozen=True)
class JobPlan:
    """The planner's decision for one job.

    ``robust_demand`` is ``eta_i`` (container-time-slots);
    ``reference_demand`` the non-robust theta-quantile of the reference
    distribution, for comparison.  ``target_completion`` is the onion
    target and ``planned_completion`` the completion under the concrete
    container plan (at most ``target + R_i`` when targets were feasible).
    ``achievable`` is false when the expected utility is zero — the
    paper's red-row warning that the job cannot meet any useful deadline.
    """

    job_id: str
    robust_demand: float
    reference_demand: float
    target_completion: int
    planned_completion: float
    predicted_utility: float
    achievable: bool
    layer: int
    wcde_iterations: int


@dataclass
class SchedulePlan:
    """Complete output of one planning round."""

    jobs: Dict[str, JobPlan]
    container_plan: ContainerPlan
    theta: float
    horizon: int
    layers: int
    feasibility_checks: int
    solve_seconds: float
    _order: List[str] = field(default_factory=list, repr=False)

    def next_slot_allocation(self) -> Dict[str, int]:
        """Containers each job should hold in the immediate next slot."""
        return self.container_plan.next_slot_allocation()

    def impossible_jobs(self) -> List[str]:
        """Jobs whose predicted utility is zero (the UI's red rows)."""
        return [job_id for job_id in self._order
                if not self.jobs[job_id].achievable]

    def utility_vector(self) -> List[float]:
        """Predicted utilities sorted non-decreasingly."""
        return sorted(plan.predicted_utility for plan in self.jobs.values())


class RushPlanner:
    """Stateless solver for one round of the robust scheduling problem.

    Parameters
    ----------
    capacity:
        Cluster capacity ``C`` in containers.
    theta:
        Completion-probability percentile of the robust constraint (3).
    delta:
        Default entropy threshold ``delta_i`` for every job; the paper's
        experiments use values around 0.7.
    tolerance:
        Bisection tolerance ``Delta`` of the onion peeling.
    compensate_runtime:
        Subtract ``R_i`` from each deadline so Theorem 3's mapping bound
        still meets the original deadline (Section III-C).  Disable only
        for experiments isolating the mapping error.
    """

    def __init__(self, capacity: int, *, theta: float = 0.9, delta: float = 0.7,
                 tolerance: float = 0.01, compensate_runtime: bool = True) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta={theta} outside [0, 1]")
        if delta < 0.0:
            raise ConfigurationError(f"delta={delta} must be >= 0")
        if tolerance <= 0.0:
            raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
        self.capacity = capacity
        self.theta = theta
        self.delta = delta
        self.tolerance = tolerance
        self.compensate_runtime = compensate_runtime

    def robust_demand(self, estimate: DemandEstimate,
                      delta: Optional[float] = None) -> tuple[float, float, int]:
        """WCDE for one job: (eta, reference quantile, iterations), in slots."""
        result = solve_wcde(estimate.pmf, self.theta,
                            self.delta if delta is None else delta)
        return (estimate.demand_at(result.eta_bin),
                estimate.demand_at(result.reference_quantile),
                result.iterations)

    def plan(self, jobs: Sequence[PlannerJob],
             horizon: Optional[int] = None) -> SchedulePlan:
        """Produce a complete schedule plan for the given job snapshot."""
        started = time.perf_counter()
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("job ids must be unique within one plan")

        etas: Dict[str, float] = {}
        refs: Dict[str, float] = {}
        iters: Dict[str, int] = {}
        onion_jobs: List[OnionJob] = []
        for job in jobs:
            eta, ref, n_iter = self.robust_demand(job.estimate, job.delta)
            eta += max(job.extra_demand, 0.0)
            etas[job.job_id] = eta
            refs[job.job_id] = ref
            iters[job.job_id] = n_iter
            compensation = (job.estimate.container_runtime
                            if self.compensate_runtime else 0.0)
            onion_jobs.append(OnionJob(
                job_id=job.job_id, demand=eta, utility=job.utility,
                elapsed=job.elapsed, compensation=compensation))

        if horizon is None:
            total = sum(etas.values())
            max_runtime = max((job.estimate.container_runtime for job in jobs),
                              default=1.0)
            horizon = max(1, int(math.ceil(total / self.capacity))
                          + int(math.ceil(max_runtime)) + 1)

        onion = solve_onion(onion_jobs, self.capacity,
                            tolerance=self.tolerance, horizon=horizon)

        mapping_jobs = []
        for job in jobs:
            target = onion.targets[job.job_id].target_completion
            runtime = job.estimate.container_runtime
            # Tie-break equal targets by the utility recoverable from
            # finishing one task-runtime earlier, so a salvageable late job
            # is packed ahead of a completion-time-insensitive one.
            earlier = max(target - runtime, 0.0)
            recoverable = (job.utility.value(job.elapsed + earlier)
                           - job.utility.value(job.elapsed + target))
            mapping_jobs.append(MappingJob(
                job_id=job.job_id, demand=etas[job.job_id], runtime=runtime,
                target_completion=target, tie_break=recoverable))
        container_plan = map_time_slots(mapping_jobs, self.capacity)

        job_plans: Dict[str, JobPlan] = {}
        for job in jobs:
            target = onion.targets[job.job_id]
            job_plans[job.job_id] = JobPlan(
                job_id=job.job_id,
                robust_demand=etas[job.job_id],
                reference_demand=refs[job.job_id],
                target_completion=target.target_completion,
                planned_completion=container_plan.completion(job.job_id),
                predicted_utility=target.utility_value,
                achievable=target.achievable,
                layer=target.layer,
                wcde_iterations=iters[job.job_id])

        return SchedulePlan(
            jobs=job_plans, container_plan=container_plan, theta=self.theta,
            horizon=onion.horizon, layers=onion.layers,
            feasibility_checks=onion.feasibility_checks,
            solve_seconds=time.perf_counter() - started,
            _order=list(ids))
