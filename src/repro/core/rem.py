"""Relative Entropy Minimization — Algorithm 1 of the paper.

The WCDE bisection (Algorithm 2) repeatedly asks: *can the adversary find
a demand distribution whose CDF at bin ``L`` is at most theta, while
staying within KL distance delta of the reference?*  The cheapest such
distribution is the solution of the REM problem

    minimize    sum_l p_l ln(p_l / phi_l)
    subject to  sum_l p_l = 1,   sum_{l <= L} p_l <= theta,   p >= 0.

Theorem 1 of the paper shows the KKT conditions admit a closed form: the
optimum keeps the *shape* of the reference on each side of ``L`` and only
rescales the two sides so that exactly ``theta`` mass sits at or below
``L`` (when the reference places more than ``theta`` there).  This module
implements that closed form, plus an O(1) evaluation of the optimal KL
value from the reference CDF alone, which is what makes the WCDE search
logarithmic-time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError
from repro.estimation.pmf import Pmf

__all__ = ["RemSolution", "solve_rem", "rem_min_kl", "rem_min_kl_from_cdf",
           "rem_min_kl_from_cdf_array"]


@dataclass(frozen=True)
class RemSolution:
    """Outcome of one REM solve.

    Attributes
    ----------
    feasible:
        Whether any distribution satisfies the tail constraint.  The only
        infeasible case is a reference with no probability mass above
        ``L`` (the adversary cannot conjure mass where the reference has
        none without infinite KL cost) while ``theta < 1``.
    kl:
        The minimal KL divergence, ``math.inf`` when infeasible.
    pmf:
        The minimizing distribution, ``None`` when infeasible.
    """

    feasible: bool
    kl: float
    pmf: Optional[Pmf]


def _validate_theta(theta: float) -> float:
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta={theta} outside [0, 1]")
    return float(theta)


def rem_min_kl_from_cdf(reference_cdf_at_l: float, theta: float) -> float:
    """Minimal KL cost of pushing the CDF at a bin down to ``theta``.

    ``reference_cdf_at_l`` is ``Phi(L) = sum_{l <= L} phi_l``.  By Theorem 1
    the optimal distribution rescales the reference below and above ``L``,
    so the divergence collapses to the binary KL between ``(theta, 1-theta)``
    and ``(Phi(L), 1-Phi(L))``::

        g(L) = theta ln(theta / Phi(L)) + (1-theta) ln((1-theta)/(1-Phi(L)))

    with ``0 ln 0 = 0``.  Returns 0 when the reference already satisfies
    the constraint and ``inf`` when no distribution can (``Phi(L) = 1`` with
    ``theta < 1``).
    """
    theta = _validate_theta(theta)
    phi_l = min(max(float(reference_cdf_at_l), 0.0), 1.0)
    if phi_l <= theta:
        return 0.0
    if theta >= 1.0:
        return 0.0
    if phi_l >= 1.0:
        return math.inf
    # rushlint: disable=RL003 (theta is caller input passed through
    # unchanged; exact 0 selects the 0*ln(0)=0 convention, and any
    # tolerance would misclassify tiny positive thetas)
    head = 0.0 if theta == 0.0 else theta * math.log(theta / phi_l)
    tail = (1.0 - theta) * math.log((1.0 - theta) / (1.0 - phi_l))
    return head + tail


def rem_min_kl_from_cdf_array(reference_cdf: npt.NDArray[np.float64],
                              theta: float) -> npt.NDArray[np.float64]:
    """Vectorized :func:`rem_min_kl_from_cdf` over an array of CDF values.

    Evaluates the binary-KL objective ``g`` at every entry in one numpy
    pass, which lets the WCDE solver sweep a whole candidate range in a
    single call instead of one scalar evaluation per bisection probe.
    Entries where the constraint is slack evaluate to 0 and saturated
    entries (``Phi(L) = 1`` with ``theta < 1``) to ``inf``, exactly like
    the scalar form.
    """
    theta = _validate_theta(theta)
    phi = np.clip(np.asarray(reference_cdf, dtype=float), 0.0, 1.0)
    out = np.zeros(phi.shape)
    if theta >= 1.0:
        return out
    binding = phi > theta
    saturated = phi >= 1.0
    out[saturated] = math.inf
    active = binding & ~saturated
    if np.any(active):
        p = phi[active]
        # rushlint: disable=RL003 (exact-zero sentinel, same convention
        # as the scalar form above)
        head = 0.0 if theta == 0.0 else theta * np.log(theta / p)
        tail = (1.0 - theta) * np.log((1.0 - theta) / (1.0 - p))
        out[active] = head + tail
    return out


def rem_min_kl(reference: Pmf, target_bin: int, theta: float) -> float:
    """Minimal KL divergence for the REM problem at ``target_bin``."""
    return rem_min_kl_from_cdf(reference.cdf_at(target_bin), theta)


def solve_rem(reference: Pmf, target_bin: int, theta: float) -> RemSolution:
    """Closed-form REM solve (Algorithm 1 with infeasibility handling).

    Parameters
    ----------
    reference:
        The quantized reference distribution ``phi_i``.
    target_bin:
        The candidate objective ``L`` of the WCDE bisection.
    theta:
        The completion-probability percentile of the robust constraint.

    Returns the minimizing distribution and its divergence.  When the
    reference already places at most ``theta`` mass at or below ``L`` the
    reference itself is optimal with zero divergence (constraint (10) of
    the paper is slack, so its multiplier ``nu`` is zero).
    """
    theta = _validate_theta(theta)
    if target_bin < 0:
        raise ConfigurationError(f"target_bin={target_bin} must be >= 0")
    phi = reference.probs
    head_mass = reference.cdf_at(target_bin)
    if head_mass <= theta or theta >= 1.0:
        return RemSolution(feasible=True, kl=0.0, pmf=reference)
    tail_mass = 1.0 - head_mass
    if tail_mass <= 0.0:
        return RemSolution(feasible=False, kl=math.inf, pmf=None)

    probs = np.array(phi, dtype=float)
    cut = min(target_bin, reference.tau_max)
    head = probs[: cut + 1]
    tail = probs[cut + 1:]
    # Rescale each side: theta mass below (inclusive), 1 - theta above.
    head *= theta / head_mass
    tail *= (1.0 - theta) / tail_mass
    kl = rem_min_kl_from_cdf(head_mass, theta)
    # rushlint: disable=RL003 (exact-zero sentinel: only a literal
    # theta=0 moves *all* mass above L; near-zero thetas keep the
    # rescaled head)
    if theta == 0.0:
        # All mass moves above L; bins at or below L become exact zeros.
        probs[: cut + 1] = 0.0
    return RemSolution(feasible=True, kl=kl, pmf=Pmf(probs, normalize=True))
