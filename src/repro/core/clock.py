"""Clock and event-source protocols: the simulator/driver boundary.

The slotted simulator used to own time outright (``self.now += 1``),
which welded the RUSH core to batch simulation.  These two small
protocols invert that dependency so the *same* core — simulator,
schedulers, planner — can be driven by any loop:

:class:`Clock`
    Whoever owns time implements ``slot`` (the current discrete slot)
    and ``advance()`` (move to the next one).  :class:`SimulatedClock`
    is the slot counter the simulator defaults to; the asyncio
    real-time clock (:class:`repro.service.clock.RealTimeClock`) paces
    the same integer sequence against wall time.  Decisions only ever
    read the integer slot, so a run is bit-identical under any clock
    that yields the same slot sequence.

:class:`EventSource`
    External inputs — job submissions and cancellations — delivered at
    slot boundaries.  The simulator polls the source once per slot
    *before* admitting arrivals; a run with no source behaves exactly
    as before.  :class:`QueueEventSource` is the deterministic buffered
    implementation the service daemon (and snapshot replay) feed.

Both live in ``core`` because they are part of the deterministic
contract: nothing here may read a wall clock (RL002); real time enters
only through the sanctioned ``repro.service`` carve-out.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Protocol, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.job import JobSpec

__all__ = [
    "Clock", "SimulatedClock", "SubmitEvent", "CancelEvent",
    "ClusterEvent", "EventSource", "QueueEventSource",
]


class Clock(Protocol):
    """Who owns time: a monotone integer slot sequence."""

    @property
    def slot(self) -> int:
        """The current discrete slot."""
        ...  # pragma: no cover - protocol signature

    def advance(self) -> int:
        """Move to the next slot and return it."""
        ...  # pragma: no cover - protocol signature


class SimulatedClock:
    """The plain slot counter — the simulator's default time source."""

    __slots__ = ("_slot",)

    def __init__(self, start: int = 0) -> None:
        self._slot = int(start)

    @property
    def slot(self) -> int:
        return self._slot

    def advance(self) -> int:
        self._slot += 1
        return self._slot


@dataclass(frozen=True)
class SubmitEvent:
    """A job submission delivered from outside the slot loop.

    ``spec.arrival`` must be at or after the slot the event is applied
    in; the simulator then admits the job at that arrival slot exactly
    as if it had been pre-registered before the run.
    """

    spec: "JobSpec"


@dataclass(frozen=True)
class CancelEvent:
    """A client-initiated cancellation of a submitted job.

    Applied leniently: cancelling a job that already completed (the
    request raced the finish) is a no-op, not an error.
    """

    job_id: str


ClusterEvent = Union[SubmitEvent, CancelEvent]


class EventSource(Protocol):
    """External inputs the simulator polls once per slot."""

    def poll(self, slot: int) -> Sequence[ClusterEvent]:
        """Drain the events due at or before ``slot``, in delivery order."""
        ...  # pragma: no cover - protocol signature


class QueueEventSource:
    """Deterministic buffered event source.

    Events pushed without a due slot fire at the next poll; events
    pushed with one are held until the clock reaches it.  Delivery
    order is total and reproducible: by (due slot, push sequence), so a
    journal replay that pushes the same events with the same due slots
    drains identically.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, ClusterEvent]] = []
        self._seq = 0

    def push(self, event: ClusterEvent, *, due: int = -1) -> None:
        """Enqueue ``event``; ``due`` < 0 means "next poll"."""
        heapq.heappush(self._heap, (due, self._seq, event))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def poll(self, slot: int) -> Sequence[ClusterEvent]:
        drained: List[ClusterEvent] = []
        while self._heap and self._heap[0][0] <= slot:
            drained.append(heapq.heappop(self._heap)[2])
        return drained
