"""Linear-programming baseline for the TAS problem.

Section III-B notes that TAS can be solved with linear programming (the
approach of the authors' earlier CORA scheduler) but that the number of
decision variables — one ``x_{i,t}`` per job per slot — makes the LP slow
as instances grow, which motivates onion peeling.  This module implements
that baseline so the claim is checkable:

* :func:`lp_feasible` decides, via an LP feasibility program over
  ``x_{i,t} >= 0``, whether a set of per-job deadlines and demands fits
  the capacity — the exact question Theorem 2 answers with the O(N log N)
  staircase test (12);
* :func:`solve_tas_lp` runs the same lexicographic layer/bisection
  structure as :func:`repro.core.onion.solve_onion` but uses the LP as the
  feasibility oracle.

Equality of the two solvers' answers (up to the bisection tolerance) is a
property test; their runtime gap is the onion-vs-LP ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.core.onion import (
    JobTarget,
    OnionJob,
    OnionResult,
    _DeadlineBank,
    _PeeledLedger,
    _lookahead_level,
    default_horizon,
)

__all__ = ["lp_feasible", "solve_tas_lp"]


def lp_feasible(deadlines: Sequence[float], demands: Sequence[float],
                capacity: int, horizon: int) -> bool:
    """LP feasibility of completing ``demands`` by ``deadlines``.

    Variables ``x_{i,t}`` (containers of job i in slot t, relaxed to the
    reals) must satisfy the capacity constraint per slot and deliver each
    job's demand within its deadline.  Deadlines of ``-inf`` (unreachable
    utility level) or non-positive values with positive demand are
    immediately infeasible; infinite deadlines are capped at the horizon.
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    jobs: List[Tuple[int, float]] = []  # (deadline_slots, demand)
    for d, eta in zip(deadlines, demands):
        if eta <= 0:
            continue
        if not math.isfinite(d):
            if d < 0:
                return False
            d = horizon
        d_slots = int(min(math.floor(d + 1e-9), horizon))
        if d_slots < 1:
            return False
        jobs.append((d_slots, eta))
    if not jobs:
        return True

    n = len(jobs)
    t_max = max(d for d, _ in jobs)
    n_vars = n * t_max  # x[i, t] flattened; slots 1..t_max -> index t-1

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    b_ub: List[float] = []
    # Capacity per slot: sum_i x[i, t] <= C.
    for t in range(t_max):
        for i in range(n):
            rows.append(t)
            cols.append(i * t_max + t)
            vals.append(1.0)
        b_ub.append(float(capacity))
    # Demand per job: -sum_{t <= d_i} x[i, t] <= -eta_i.
    for i, (d_slots, eta) in enumerate(jobs):
        row = t_max + i
        for t in range(d_slots):
            rows.append(row)
            cols.append(i * t_max + t)
            vals.append(-1.0)
        b_ub.append(-eta)

    a_ub = coo_matrix((vals, (rows, cols)), shape=(t_max + n, n_vars))
    result = linprog(c=np.zeros(n_vars), A_ub=a_ub, b_ub=np.asarray(b_ub),
                     bounds=(0, None), method="highs")
    return bool(result.status == 0)


def solve_tas_lp(jobs: Sequence[OnionJob], capacity: int, *,
                 tolerance: float = 0.01,
                 horizon: Optional[int] = None,
                 lookahead: int = 4) -> OnionResult:
    """Lexicographic max-min TAS with the LP feasibility oracle.

    Mirrors :func:`repro.core.onion.solve_onion` layer for layer; only the
    feasibility test differs.  The bottleneck of a layer is still located
    with the staircase test (the LP reports feasibility, not a certificate),
    which is sound because Theorem 2 makes the two tests equivalent.
    """
    if capacity <= 0:
        raise InfeasiblePlanError(f"cluster capacity must be positive, got {capacity}")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    if horizon is None:
        horizon = default_horizon(jobs, capacity)

    targets: Dict[str, JobTarget] = {}
    active: List[int] = []
    for i, job in enumerate(jobs):
        if job.demand <= 0.0:
            value = job.utility.value(job.elapsed)
            targets[job.job_id] = JobTarget(
                job_id=job.job_id, target_completion=0,
                utility_value=value, layer=0, achievable=value > 0.0)
        else:
            active.append(i)

    bank = _DeadlineBank(jobs, horizon)
    ledger = _PeeledLedger()
    demands = np.array([job.demand for job in jobs], dtype=float)
    checks = 0

    def lp_check(level: float, active_idx: np.ndarray) -> bool:
        nonlocal checks
        checks += 1
        d = bank.deadlines(level)[active_idx]
        # Fold the peeled ledger in as additional fixed jobs.
        extra_d = list(ledger._sorted_times)
        extra_eta = list(np.diff(ledger._cum, prepend=0.0)) if ledger._cum.size else []
        return lp_feasible(list(d) + extra_d,
                           list(demands[active_idx]) + extra_eta,
                           capacity, horizon)

    def staircase(level: float, active_idx: np.ndarray,
                  extra_times=(), extra_demands=()):
        d_active = bank.deadlines(level)[active_idx]
        d_all = np.concatenate([d_active, ledger.times,
                                np.asarray(extra_times, dtype=float)])
        eta_all = np.concatenate([demands[active_idx], ledger.demands,
                                  np.asarray(extra_demands, dtype=float)])
        is_active = np.zeros(d_all.size, dtype=bool)
        is_active[: d_active.size] = True
        order = np.argsort(d_all, kind="stable")
        prefix = np.cumsum(eta_all[order])
        active_sorted = is_active[order]
        with np.errstate(invalid="ignore"):
            slack = capacity * d_all[order] - prefix
        violated = np.nonzero(~(slack >= -1e-9))[0]
        if violated.size == 0:
            return True, []
        first = int(violated[0])
        active_positions = np.nonzero(active_sorted[: first + 1])[0]
        if not active_positions.size:  # pragma: no cover - defensive
            active_positions = np.nonzero(active_sorted)[0][:1]
        return False, [int(active_idx[order[pos]]) for pos in active_positions]

    global_floor = min((job.utility.min_value() for job in jobs), default=0.0)
    global_floor = min(global_floor, 0.0)

    layer = 0
    while active:
        layer += 1
        active_idx = np.array(active, dtype=int)
        ceiling = max(jobs[i].utility.max_value() for i in active)
        if lp_check(ceiling, active_idx):
            deadlines = bank.deadlines(ceiling)[active_idx]
            for pos, i in enumerate(active_idx):
                _peel(jobs[i], float(deadlines[pos]), ledger, targets, layer, horizon)
            active.clear()
            break
        low, high = global_floor, ceiling
        if not lp_check(low, active_idx):
            raise InfeasiblePlanError(
                "even the minimum utility layer does not fit the horizon "
                f"(horizon={horizon}, capacity={capacity})")
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            if lp_check(mid, active_idx):
                low = mid
            else:
                high = mid
        _, candidates = staircase(high, active_idx)
        if not candidates:  # pragma: no cover - defensive
            candidates = [active[0]]
        bottleneck = candidates[-1]
        # Same floor-level sacrifice lookahead as solve_onion (Theorem 2
        # lets the cheap staircase oracle stand in for the LP here).
        if (lookahead > 0 and len(candidates) > 1
                and low <= global_floor + tolerance):
            best_level = -math.inf
            for candidate in candidates[-lookahead:]:
                pin = min(max(float(bank.deadlines(low)[candidate]), 1.0),
                          horizon)
                if not math.isfinite(pin):
                    pin = float(horizon)
                remaining = np.array([i for i in active if i != candidate],
                                     dtype=int)
                level = _lookahead_level(
                    staircase, remaining, [pin],
                    [float(demands[candidate])], global_floor,
                    max((jobs[i].utility.max_value() for i in remaining),
                        default=global_floor),
                    tolerance)
                if level > best_level + 1e-12:
                    best_level = level
                    bottleneck = candidate
        deadline = float(bank.deadlines(low)[bottleneck])
        _peel(jobs[bottleneck], deadline, ledger, targets, layer, horizon)
        active.remove(bottleneck)

    return OnionResult(targets=targets, layers=layer,
                       feasibility_checks=checks, horizon=horizon)


def _peel(job: OnionJob, deadline: float, ledger: _PeeledLedger,
          targets: Dict[str, JobTarget], layer: int, horizon: int) -> None:
    if not math.isfinite(deadline):
        completion = horizon
    else:
        completion = int(min(max(deadline, 1.0), horizon))
    value = job.utility.value(job.elapsed + completion)
    ledger.commit(completion, job.demand)
    targets[job.job_id] = JobTarget(
        job_id=job.job_id, target_completion=completion,
        utility_value=value, layer=layer, achievable=value > 1e-9)
