"""Worst-Case Distribution Estimation — Algorithm 2 of the paper.

Given a reference demand distribution ``phi_i`` (from a distribution
estimator), a completion-probability percentile ``theta`` and an entropy
threshold ``delta_i``, the WCDE problem finds the largest theta-quantile
any distribution within KL distance ``delta_i`` of the reference can have:

    eta_i = max_{omega : D(omega || phi_i) <= delta_i}  Omega_i^{-1}(theta).

Allocating at least ``eta_i`` container-time-slots to job ``i`` then
guarantees the robust constraint (3): the job receives enough resources
with probability at least ``theta`` under *every* distribution in the KL
ball, not just the estimated one.

The search exploits two monotonicity facts:

* the minimal KL cost of forcing ``CDF(L) <= theta`` (the REM value
  ``g(L)``) is non-decreasing in ``L``, so feasibility of a candidate
  objective is monotone and bisection applies;
* no distribution at finite KL distance can place mass above the
  reference's support, so the support maximum caps the answer.

With the O(1) REM evaluation of :mod:`repro.core.rem`, one WCDE solve
costs ``O(log tau_max)`` bisection steps over the reference's cached CDF
(narrow search ranges are swept in a single vectorized REM evaluation
instead).  The adversary's boundary distribution is *not* materialized by
the solve: :attr:`WcdeResult.worst_pmf` runs the closed-form REM solve on
first access, so hot paths that only consume ``eta_bin`` — the planner —
never pay for the allocation.  For planning loops that re-solve the same
references every scheduling event, :class:`WcdeCache` memoizes whole
results under the content key ``(PMF fingerprint, theta, delta)``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.rem import (rem_min_kl_from_cdf, rem_min_kl_from_cdf_array,
                            solve_rem)
from repro.estimation.pmf import Pmf
from repro.obs import get_metrics, get_tracer

__all__ = ["WcdeResult", "WcdeCache", "solve_wcde", "solve_wcde_batch",
           "worst_case_demand"]

#: Candidate ranges at most this wide skip the bisection loop and are
#: swept with one vectorized REM evaluation over the cached CDF.
_SCAN_WIDTH = 64

#: Histogram buckets for bisection steps per solve (a range sweep is 1).
_ITER_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def _note_solve(iterations: int) -> None:
    """Record one completed WCDE solve in the metrics registry."""
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_wcde_solves_total",
                        help="WCDE robust-quantile solves").inc()
        metrics.histogram("rush_wcde_iterations", buckets=_ITER_BUCKETS,
                          help="Bisection steps per WCDE solve",
                          unit="iterations").observe(iterations)


def _note_cache_outcome(outcome: str, theta: float, delta: float) -> None:
    """Record one :class:`WcdeCache` lookup (``outcome``: hit | miss).

    Hits are the steady-state hot path (one per job per warm replan), so
    they only bump the aggregate counter; a per-hit trace event would put
    span construction inside the planner's inner loop and blow the
    benchmark's observability-overhead gate.  Misses are rare (cold cache
    or churned estimate) and carry diagnostic value, so they also emit a
    zero-width trace event.
    """
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_wcde_cache_total",
                        help="WcdeCache lookups by outcome",
                        labels=("outcome",)).labels(outcome).inc()
    if outcome == "miss":
        tracer = get_tracer()
        if tracer.active:
            tracer.event("wcde.cache_miss", theta=theta, delta=delta)


class WcdeResult:
    """Outcome of a WCDE solve.

    Attributes
    ----------
    eta_bin:
        The robust demand quantile in *bins*.  Multiply by the estimator's
        bin width to obtain ``eta_i`` in container-time-slots.
    reference_quantile:
        ``Phi^{-1}(theta)`` of the reference — the non-robust answer, and
        the bisection's lower anchor.  ``eta_bin >= reference_quantile``
        always: the reference itself lies inside every KL ball.
    worst_pmf:
        The adversary's boundary distribution: the REM minimizer at
        ``eta_bin - 1``, whose CDF there equals ``theta`` exactly in the
        binding case.  Any infinitesimally stronger perturbation would push
        the quantile to ``eta_bin``, which is why ``eta_bin`` slots must be
        reserved.  Computed lazily on first access (the planner's hot path
        only reads ``eta_bin`` and never pays for it).
    worst_kl:
        Its divergence from the reference.  Also lazy.
    iterations:
        Number of bisection steps taken (a vectorized range sweep counts
        as one).
    """

    __slots__ = ("eta_bin", "reference_quantile", "iterations",
                 "_reference", "_theta", "_worst_pmf", "_worst_kl")

    def __init__(self, eta_bin: int, reference_quantile: int, iterations: int,
                 reference: Pmf, theta: float) -> None:
        self.eta_bin = eta_bin
        self.reference_quantile = reference_quantile
        self.iterations = iterations
        self._reference = reference
        self._theta = theta
        self._worst_pmf: Optional[Pmf] = None
        self._worst_kl: Optional[float] = None

    def _materialize(self) -> None:
        boundary = max(self.eta_bin - 1, 0)
        sol = solve_rem(self._reference, boundary, self._theta)
        self._worst_pmf = sol.pmf if sol.pmf is not None else self._reference
        self._worst_kl = sol.kl

    @property
    def worst_pmf(self) -> Pmf:
        if self._worst_pmf is None:
            self._materialize()
        return self._worst_pmf  # type: ignore[return-value]

    @property
    def worst_kl(self) -> float:
        if self._worst_kl is None:
            self._materialize()
        return self._worst_kl  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WcdeResult(eta_bin={self.eta_bin}, "
                f"reference_quantile={self.reference_quantile}, "
                f"iterations={self.iterations})")


def solve_wcde(reference: Pmf, theta: float, delta: float, *,
               need_worst_pmf: bool = True) -> WcdeResult:
    """Solve the WCDE problem by bisection (Algorithm 2).

    Parameters
    ----------
    reference:
        Quantized reference distribution ``phi_i`` reported by the DE unit.
    theta:
        Required completion probability, in ``[0, 1]``.
    delta:
        Entropy threshold ``delta_i >= 0``; larger values concede more
        ground to the adversary and yield more conservative schedules.
    need_worst_pmf:
        When true (the default, matching the historical API), the
        adversary's boundary distribution is materialized before the
        result is returned.  Pass ``False`` on hot paths that only
        consume ``eta_bin``/``reference_quantile``; the ``worst_pmf`` and
        ``worst_kl`` attributes then run the REM solve lazily on first
        access.
    """
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta={theta} outside [0, 1]")
    if delta < 0.0 or math.isnan(delta):
        raise ConfigurationError(f"delta={delta} must be >= 0")

    with get_tracer().span("wcde.solve", theta=theta, delta=delta) as span:
        anchor = reference.quantile(theta)
        ceiling = reference.support_max()

        # Exact semantics: the adversary's quantile exceeds a bin L iff it
        # can push CDF(L) strictly below theta, which costs (arbitrarily
        # close to) the REM value g(L) whenever the reference keeps some
        # mass above L.  Hence eta = 1 + max{ L < support_max : g(L) <=
        # delta }, clamped to at least the reference quantile.  Two
        # boundary regimes short-circuit: theta = 1 demands covering the
        # whole support, and delta = 0 leaves the adversary no room at all
        # (strict improvement has positive cost).
        if theta >= 1.0:
            eta = ceiling
            iterations = 0
        # rushlint: disable=RL003 (exact-zero sentinel: delta=0 means the
        # adversary has literally no KL budget; any positive delta, however
        # small, must take the search path)
        elif delta == 0.0 or anchor >= ceiling:
            eta = anchor
            iterations = 0
        else:
            cdf = reference.cdf()
            low = anchor - 1    # CDF(anchor - 1) < theta, so g = 0: feasible
            high = ceiling      # g(support_max) = inf: infeasible
            if high - low <= _SCAN_WIDTH:
                # One vectorized REM sweep over the whole candidate range:
                # feasibility is a prefix property (g is non-decreasing), so
                # the last feasible level is the bisection's fixed point.
                g = rem_min_kl_from_cdf_array(cdf[low + 1: high], theta)
                feasible = np.nonzero(g <= delta + 1e-12)[0]
                low = low + 1 + int(feasible[-1]) if feasible.size else low
                iterations = 1
            else:
                def feasible_at(level: int) -> bool:
                    return (rem_min_kl_from_cdf(float(cdf[level]), theta)
                            <= delta + 1e-12)

                iterations = 0
                while high - low > 1:
                    mid = (low + high) // 2
                    iterations += 1
                    if feasible_at(mid):
                        low = mid
                    else:
                        high = mid
            eta = max(low + 1, anchor)

        result = WcdeResult(eta_bin=eta, reference_quantile=anchor,
                            iterations=iterations, reference=reference,
                            theta=theta)
        if need_worst_pmf:
            result._materialize()
        span.note(eta_bin=eta, anchor=anchor, iterations=iterations)
    _note_solve(iterations)
    return result


#: Histogram buckets for batch sizes handed to :func:`solve_wcde_batch`.
_BATCH_BUCKETS = (1.0, 8.0, 64.0, 256.0, 1024.0, 4096.0)


def _note_batch(size: int, narrow: int, bisect: int, shortcut: int) -> None:
    """Record one :func:`solve_wcde_batch` call in the metrics registry.

    ``rush_wcde_batch_rows_total{path}`` splits the rows by solve path so
    the vector-path fraction (``narrow`` rows over all rows) is a direct
    PromQL/ratio query; ``rush_wcde_batch_size`` tracks how much work each
    batch amortizes.
    """
    metrics = get_metrics()
    if not metrics.active:
        return
    metrics.histogram("rush_wcde_batch_size", buckets=_BATCH_BUCKETS,
                      help="References per WCDE batch solve",
                      unit="references").observe(size)
    rows = metrics.counter("rush_wcde_batch_rows_total",
                           help="WCDE batch rows by solve path",
                           labels=("path",))
    if narrow:
        rows.labels("narrow").inc(narrow)
    if bisect:
        rows.labels("bisect").inc(bisect)
    if shortcut:
        rows.labels("shortcut").inc(shortcut)


def solve_wcde_batch(references: Sequence[Pmf], theta: float,
                     delta: float) -> List[WcdeResult]:
    """Solve the WCDE problem for a whole batch of references at once.

    Element-wise identical to calling :func:`solve_wcde` per reference —
    same ``eta_bin``, ``reference_quantile``, ``iterations`` and (lazily
    materialized) worst-case distribution — but the per-job Python
    bisection loops collapse into vectorized numpy passes:

    * *narrow* rows (candidate range at most ``_SCAN_WIDTH`` wide, the
      overwhelmingly common case for calibrated estimators) are stacked
      into one padded CDF matrix and swept with a single
      :func:`rem_min_kl_from_cdf_array` call — padding with ``CDF = 1``
      makes every padded cell saturated (``g = inf``), so it can never be
      selected as feasible;
    * *wide* rows run a lockstep mask-per-row bisection: each step
      gathers one CDF value per still-open row and evaluates the REM
      objective for all of them in one vectorized call, so a batch of
      ``k`` rows costs ``O(log tau_max)`` numpy passes instead of
      ``O(k log tau_max)`` scalar evaluations.

    Results are returned in input order.  Like :class:`WcdeCache`, the
    hot path never materializes ``worst_pmf`` (lazy on first access).
    """
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta={theta} outside [0, 1]")
    if delta < 0.0 or math.isnan(delta):
        raise ConfigurationError(f"delta={delta} must be >= 0")

    n = len(references)
    results: List[Optional[WcdeResult]] = [None] * n
    with get_tracer().span("wcde.solve_batch", size=n, theta=theta,
                           delta=delta) as span:
        narrow: List[Tuple[int, int, int, np.ndarray]] = []
        wide: List[Tuple[int, int, int, np.ndarray]] = []
        shortcuts = 0
        for i, reference in enumerate(references):
            anchor = reference.quantile(theta)
            ceiling = reference.support_max()
            if theta >= 1.0:
                results[i] = WcdeResult(eta_bin=ceiling,
                                        reference_quantile=anchor,
                                        iterations=0, reference=reference,
                                        theta=theta)
                shortcuts += 1
            # rushlint: disable=RL003 (exact-zero sentinel, same convention
            # as the scalar solve above)
            elif delta == 0.0 or anchor >= ceiling:
                results[i] = WcdeResult(eta_bin=anchor,
                                        reference_quantile=anchor,
                                        iterations=0, reference=reference,
                                        theta=theta)
                shortcuts += 1
            else:
                low, high = anchor - 1, ceiling
                row = (i, anchor, ceiling, reference.cdf())
                if high - low <= _SCAN_WIDTH:
                    narrow.append(row)
                else:
                    wide.append(row)

        if narrow:
            k = len(narrow)
            widths = [row[2] - row[1] for row in narrow]  # high - low - 1
            padded = np.ones((k, max(widths) if widths else 1))
            for r, (_, anchor, ceiling, cdf) in enumerate(narrow):
                padded[r, :widths[r]] = cdf[anchor: ceiling]
            g = rem_min_kl_from_cdf_array(padded, theta)
            feas = g <= delta + 1e-12
            has_feasible = feas.any(axis=1)
            last = padded.shape[1] - 1 - np.argmax(feas[:, ::-1], axis=1)
            for r, (i, anchor, ceiling, _) in enumerate(narrow):
                low = anchor - 1
                if has_feasible[r]:
                    low = low + 1 + int(last[r])
                results[i] = WcdeResult(eta_bin=max(low + 1, anchor),
                                        reference_quantile=anchor,
                                        iterations=1, reference=references[i],
                                        theta=theta)

        if wide:
            k = len(wide)
            lows = np.array([row[1] - 1 for row in wide], dtype=np.int64)
            highs = np.array([row[2] for row in wide], dtype=np.int64)
            iters = np.zeros(k, dtype=np.int64)
            cdfs = [row[3] for row in wide]
            open_rows = np.nonzero(highs - lows > 1)[0]
            while open_rows.size:
                mids = (lows[open_rows] + highs[open_rows]) // 2
                p = np.empty(open_rows.size)
                for j, r in enumerate(open_rows):
                    p[j] = cdfs[r][mids[j]]
                feas = (rem_min_kl_from_cdf_array(p, theta)
                        <= delta + 1e-12)
                iters[open_rows] += 1
                lows[open_rows] = np.where(feas, mids, lows[open_rows])
                highs[open_rows] = np.where(feas, highs[open_rows], mids)
                open_rows = open_rows[
                    highs[open_rows] - lows[open_rows] > 1]
            for r, (i, anchor, ceiling, _) in enumerate(wide):
                results[i] = WcdeResult(
                    eta_bin=max(int(lows[r]) + 1, anchor),
                    reference_quantile=anchor, iterations=int(iters[r]),
                    reference=references[i], theta=theta)

        span.note(narrow_rows=len(narrow), bisect_rows=len(wide),
                  shortcut_rows=shortcuts)
    for result in results:
        _note_solve(result.iterations)  # type: ignore[union-attr]
    _note_batch(n, len(narrow), len(wide), shortcuts)
    return results  # type: ignore[return-value]


class WcdeCache:
    """Bounded LRU memo of WCDE solves, keyed by distribution content.

    The key is ``(reference.fingerprint(), theta, delta)`` — a pure
    content address: any two references with bit-identical probability
    vectors share an entry, no matter which estimator produced them.
    Cached results are the lazy :class:`WcdeResult` objects themselves, so
    a hit costs one dict lookup and materializing ``worst_pmf`` through a
    cached result benefits every later caller of the same entry.

    ``hits`` / ``misses`` counters make the cache's effectiveness an
    observable number (surfaced by the planner's :class:`PlanStats
    <repro.core.planner.PlanStats>`).  ``presolve_reuses`` counts jobs
    whose WCDE answer was reused via :class:`~repro.core.planner
    .PresolvedDemand` without consulting the cache at all — those reuses
    are memoization wins just like hits, so :attr:`hit_rate` folds them
    in; keeping them out of ``hits`` preserves the invariant that
    ``hits + misses`` equals the number of actual cache lookups.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ConfigurationError(
                f"WcdeCache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.presolve_reuses = 0
        self._entries: "OrderedDict[Tuple[bytes, float, float], WcdeResult]" = \
            OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/reuse counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.presolve_reuses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of demand queries answered without a fresh solve.

        Presolve reuses count toward the numerator and denominator: a
        job that skipped the lookup because the caller proved its answer
        unchanged is a memoization win the hit-rate must not undercount.
        """
        total = self.hits + self.presolve_reuses + self.misses
        return (self.hits + self.presolve_reuses) / total if total else 0.0

    def note_presolve_reuse(self, count: int = 1) -> None:
        """Record ``count`` jobs that reused a presolved WCDE answer.

        Called by the planner when :class:`~repro.core.planner
        .PresolvedDemand` short-circuits stage 1; surfaces in the
        ``rush_wcde_cache_total{outcome="presolve_reuse"}`` metric so
        hit-rate telemetry sees reuse that never touches the cache dict.
        """
        self.presolve_reuses += count
        metrics = get_metrics()
        if metrics.active:
            metrics.counter("rush_wcde_cache_total",
                            help="WcdeCache lookups by outcome",
                            labels=("outcome",)).labels(
                                "presolve_reuse").inc(count)

    def peek(self, reference: Pmf, theta: float,
             delta: float) -> Optional[WcdeResult]:
        """Return the cached entry without touching counters or LRU order.

        Used by :class:`~repro.core.parallel.ParallelPlanner` to decide
        what to ship to the worker pool; a peek is not a lookup the
        planning round performs, so it must not skew hit-rate telemetry.
        """
        return self._entries.get(
            (reference.fingerprint(), float(theta), float(delta)))

    def install(self, reference: Pmf, theta: float, delta: float,
                result: WcdeResult) -> None:
        """Insert an externally computed solve (no counter changes).

        The entry point for pool workers and the sqlite store: results
        proven identical to a fresh solve are seeded into the LRU so the
        serial round that follows hits them.  Counters are untouched —
        the install is attributed by the ``rush_parallel_*`` metrics
        instead.
        """
        key = (reference.fingerprint(), float(theta), float(delta))
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def solve(self, reference: Pmf, theta: float, delta: float) -> WcdeResult:
        """Memoized :func:`solve_wcde` with the lazy-``worst_pmf`` path."""
        key = (reference.fingerprint(), float(theta), float(delta))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            _note_cache_outcome("hit", theta, delta)
            return entry
        self.misses += 1
        _note_cache_outcome("miss", theta, delta)
        entry = solve_wcde(reference, theta, delta, need_worst_pmf=False)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def solve_batch(self, references: Sequence[Pmf], theta: float,
                    delta: float) -> List[WcdeResult]:
        """Memoized :func:`solve_wcde_batch`: only cache misses are solved.

        Lookup accounting matches a sequential loop over :meth:`solve`
        exactly: the first occurrence of a fingerprint missing from the
        cache counts as a miss, and every later duplicate in the same
        batch counts as a hit (a scalar loop would have populated the
        entry by then).  Only the deduplicated misses enter the vectorized
        batch solve.
        """
        t, d = float(theta), float(delta)
        n = len(references)
        results: List[Optional[WcdeResult]] = [None] * n
        pending: "OrderedDict[Tuple[bytes, float, float], List[int]]" = \
            OrderedDict()
        for i, reference in enumerate(references):
            key = (reference.fingerprint(), t, d)
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                _note_cache_outcome("hit", t, d)
                results[i] = entry
                continue
            positions = pending.get(key)
            if positions is not None:
                # Duplicate within the batch: a scalar loop would hit the
                # entry created by the first occurrence.
                self.hits += 1
                _note_cache_outcome("hit", t, d)
            else:
                positions = pending[key] = []
                self.misses += 1
                _note_cache_outcome("miss", t, d)
            positions.append(i)
        if pending:
            miss_refs = [references[positions[0]]
                         for positions in pending.values()]
            solved = solve_wcde_batch(miss_refs, theta, delta)
            for (key, positions), entry in zip(pending.items(), solved):
                self._entries[key] = entry
                for i in positions:
                    results[i] = entry
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return results  # type: ignore[return-value]


def worst_case_demand(reference: Pmf, theta: float, delta: float) -> int:
    """Convenience wrapper returning only the robust demand bin."""
    return solve_wcde(reference, theta, delta, need_worst_pmf=False).eta_bin
