"""Worst-Case Distribution Estimation — Algorithm 2 of the paper.

Given a reference demand distribution ``phi_i`` (from a distribution
estimator), a completion-probability percentile ``theta`` and an entropy
threshold ``delta_i``, the WCDE problem finds the largest theta-quantile
any distribution within KL distance ``delta_i`` of the reference can have:

    eta_i = max_{omega : D(omega || phi_i) <= delta_i}  Omega_i^{-1}(theta).

Allocating at least ``eta_i`` container-time-slots to job ``i`` then
guarantees the robust constraint (3): the job receives enough resources
with probability at least ``theta`` under *every* distribution in the KL
ball, not just the estimated one.

The search exploits two monotonicity facts:

* the minimal KL cost of forcing ``CDF(L) <= theta`` (the REM value
  ``g(L)``) is non-decreasing in ``L``, so feasibility of a candidate
  objective is monotone and bisection applies;
* no distribution at finite KL distance can place mass above the
  reference's support, so the support maximum caps the answer.

With the O(1) REM evaluation of :mod:`repro.core.rem`, one WCDE solve
costs ``O(tau_max)`` for the CDF precomputation plus ``O(log tau_max)``
bisection steps — cheap enough to re-run for every job on every
scheduling event, as the RUSH feedback cycle requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.rem import rem_min_kl_from_cdf, solve_rem
from repro.estimation.pmf import Pmf

__all__ = ["WcdeResult", "solve_wcde", "worst_case_demand"]


@dataclass(frozen=True)
class WcdeResult:
    """Outcome of a WCDE solve.

    Attributes
    ----------
    eta_bin:
        The robust demand quantile in *bins*.  Multiply by the estimator's
        bin width to obtain ``eta_i`` in container-time-slots.
    reference_quantile:
        ``Phi^{-1}(theta)`` of the reference — the non-robust answer, and
        the bisection's lower anchor.  ``eta_bin >= reference_quantile``
        always: the reference itself lies inside every KL ball.
    worst_pmf:
        The adversary's boundary distribution: the REM minimizer at
        ``eta_bin - 1``, whose CDF there equals ``theta`` exactly in the
        binding case.  Any infinitesimally stronger perturbation would push
        the quantile to ``eta_bin``, which is why ``eta_bin`` slots must be
        reserved.
    worst_kl:
        Its divergence from the reference.
    iterations:
        Number of bisection steps taken.
    """

    eta_bin: int
    reference_quantile: int
    worst_pmf: Pmf
    worst_kl: float
    iterations: int


def solve_wcde(reference: Pmf, theta: float, delta: float) -> WcdeResult:
    """Solve the WCDE problem by bisection (Algorithm 2).

    Parameters
    ----------
    reference:
        Quantized reference distribution ``phi_i`` reported by the DE unit.
    theta:
        Required completion probability, in ``[0, 1]``.
    delta:
        Entropy threshold ``delta_i >= 0``; larger values concede more
        ground to the adversary and yield more conservative schedules.
    """
    if not 0.0 <= theta <= 1.0:
        raise ConfigurationError(f"theta={theta} outside [0, 1]")
    if delta < 0.0 or math.isnan(delta):
        raise ConfigurationError(f"delta={delta} must be >= 0")

    anchor = reference.quantile(theta)
    ceiling = reference.support_max()

    # Exact semantics: the adversary's quantile exceeds a bin L iff it can
    # push CDF(L) strictly below theta, which costs (arbitrarily close to)
    # the REM value g(L) whenever the reference keeps some mass above L.
    # Hence eta = 1 + max{ L < support_max : g(L) <= delta }, clamped to
    # at least the reference quantile.  Two boundary regimes short-circuit:
    # theta = 1 demands covering the whole support, and delta = 0 leaves
    # the adversary no room at all (strict improvement has positive cost).
    if theta >= 1.0:
        eta = ceiling
        iterations = 0
    elif delta == 0.0 or anchor >= ceiling:
        eta = anchor
        iterations = 0
    else:
        cdf = reference.cdf()

        def feasible(level: int) -> bool:
            return rem_min_kl_from_cdf(float(cdf[level]), theta) <= delta + 1e-12

        low = anchor - 1      # CDF(anchor - 1) < theta, so g = 0: feasible
        high = ceiling        # g(support_max) = inf: infeasible
        iterations = 0
        while high - low > 1:
            mid = (low + high) // 2
            iterations += 1
            if feasible(mid):
                low = mid
            else:
                high = mid
        eta = max(low + 1, anchor)

    boundary = max(eta - 1, 0)
    sol = solve_rem(reference, boundary, theta)
    worst = sol.pmf if sol.pmf is not None else reference
    return WcdeResult(eta_bin=eta, reference_quantile=anchor,
                      worst_pmf=worst, worst_kl=sol.kl, iterations=iterations)


def worst_case_demand(reference: Pmf, theta: float, delta: float) -> int:
    """Convenience wrapper returning only the robust demand bin."""
    return solve_wcde(reference, theta, delta).eta_bin
