"""Onion peeling — Algorithm 3 of the paper.

Once the WCDE layer has produced a robust demand ``eta_i`` (in
container-time-slots) for every job, the Time-Aware Scheduling problem is
deterministic: choose target completion-times maximizing the *lexicographic
max-min* vector of job utilities, subject to the cluster capacity ``C``.

The onion peeling method maximizes the minimum utility "layer by layer".
Within one layer it bisects on a utility level ``L``: a level is feasible
iff every job can finish by its utility deadline ``U_i^{-1}(L)``, which by
Theorem 2 reduces to the staircase capacity test (12)::

    sum_{i in N_k} eta_i + G(d_k)  <=  C * d_k        for every k,

where ``d_1 <= d_2 <= ...`` are the sorted deadlines, ``N_k`` the first
``k`` jobs and ``G(t)`` the demand already committed to previously peeled
jobs finishing by ``t``.  The job owning the first violated constraint at
the last infeasible level is the layer's *bottleneck*: its utility cannot
be improved further, so it is peeled (its completion-time frozen, its
demand folded into ``G``) and the search continues with the rest.

Deadlines are measured in slots from "now".  Re-planning an in-flight job
is supported through ``elapsed`` (slots since submission: utilities are
functions of total completion-time) and Theorem 3's continuity slack is
supported through ``compensation`` (the per-job budget reduction ``R_i``
that makes the continuous-time-slot mapping achievable).

For speed the deadline evaluation is vectorized across jobs: the built-in
utility classes (linear, sigmoid, constant, step) are grouped into numpy
parameter arrays, while arbitrary user classes fall back to a scalar call.
This keeps a full lexicographic solve for 1000 jobs within the interactive
budget the paper reports for its Java implementation (Figure 5).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Tuple)

import numpy as np
import numpy.typing as npt

from repro.errors import (ConfigurationError, InfeasiblePlanError,
                          SolverBudgetError)
from repro.obs import get_metrics, get_tracer
from repro.utility.base import UtilityFunction
from repro.utility.constant import ConstantUtility
from repro.utility.linear import LinearUtility
from repro.utility.sigmoid import SigmoidUtility
from repro.utility.step import StepUtility

__all__ = ["OnionJob", "JobTarget", "OnionResult", "LayerHint", "solve_onion",
           "default_horizon"]


def _note_solve(layers: int, checks: int) -> None:
    """Record one completed onion solve in the metrics registry."""
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_onion_solves_total",
                        help="Onion lex-max-min solves").inc()
        metrics.counter("rush_onion_feasibility_checks_total",
                        help="Staircase feasibility evaluations",
                        unit="checks").inc(checks)


@dataclass(frozen=True)
class OnionJob:
    """One job as seen by the TAS layer.

    Attributes
    ----------
    job_id:
        Opaque identifier, unique within one solve.
    demand:
        Robust remaining demand ``eta_i`` in container-time-slots.
    utility:
        The job's utility function of *total* completion-time.
    elapsed:
        Slots already spent since submission (0 for a fresh job).  The
        deadline from now for level ``L`` is ``U^{-1}(L) - elapsed``.
    compensation:
        Theorem 3 slack, normally the average container runtime ``R_i``;
        subtracted from every deadline so the continuous mapping's
        ``T_i + R_i`` bound still meets the original deadline.
    """

    job_id: str
    demand: float
    utility: UtilityFunction
    elapsed: float = 0.0
    compensation: float = 0.0

    def __post_init__(self) -> None:
        if self.demand < 0 or not math.isfinite(self.demand):
            raise ConfigurationError(
                f"job {self.job_id!r}: demand must be finite and >= 0, got {self.demand}")
        if self.elapsed < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: elapsed must be >= 0, got {self.elapsed}")
        if self.compensation < 0:
            raise ConfigurationError(
                f"job {self.job_id!r}: compensation must be >= 0, got {self.compensation}")


@dataclass(frozen=True)
class JobTarget:
    """The peeled decision for one job.

    ``target_completion`` counts slots from now; the job is expected to be
    done by then under the robust demand.  ``utility_value`` is the utility
    the planner expects at that completion (using total time
    ``elapsed + target_completion``).  ``achievable`` is false for jobs
    whose expected utility is (numerically) zero — the "red rows" of the
    paper's management interface.
    """

    job_id: str
    target_completion: int
    utility_value: float
    layer: int
    achievable: bool


@dataclass(frozen=True)
class LayerHint:
    """Warm-start record of one peeled layer, for the *next* solve.

    ``low``/``high`` is the final bisection bracket of the layer's utility
    level (``low`` verified feasible, ``high`` verified infeasible).  A
    later solve over a similar job snapshot probes these two levels first:
    when both probes confirm, the bracket collapses to tolerance width in
    two feasibility checks instead of a full bisection — and because the
    reconstructed bracket is *identical*, the layer then peels the exact
    same bottleneck, making warm replans of unchanged snapshots
    bit-stable.  ``candidate_ids``/``bottleneck_id`` additionally let a
    floor layer skip the bottleneck lookahead when the candidate set is
    unchanged.
    """

    low: float
    high: float
    candidate_ids: Optional[FrozenSet[str]] = None
    bottleneck_id: Optional[str] = None


@dataclass(frozen=True)
class OnionResult:
    """Solution of one lexicographic max-min solve."""

    targets: Dict[str, JobTarget]
    layers: int
    feasibility_checks: int
    horizon: int
    hints: Tuple[LayerHint, ...] = ()

    def utility_vector(self) -> List[float]:
        """Achieved utilities sorted non-decreasingly (the lex-max-min vector)."""
        return sorted(t.utility_value for t in self.targets.values())


def default_horizon(jobs: Sequence[OnionJob], capacity: int) -> int:
    """A horizon long enough that the bottom utility layer is feasible.

    ``ceil(total_demand / capacity)`` slots suffice to fit all demand, with
    one extra slot of slack for the integer rounding of deadlines.
    """
    total = sum(job.demand for job in jobs)
    return max(1, int(math.ceil(total / max(capacity, 1))) + 1)


class _DeadlineBank:
    """Vectorized ``U_i^{-1}(L)`` across a fixed set of jobs.

    Groups jobs of the built-in utility classes into parameter arrays so a
    level query costs a handful of numpy expressions rather than one
    Python call per job.  Unknown classes are handled by a scalar loop.
    """

    def __init__(self, jobs: Sequence[OnionJob], horizon: int,
                 demands: Optional[npt.NDArray[np.float64]] = None,
                 capacity: Optional[float] = None) -> None:
        self._n = len(jobs)
        self._horizon = horizon
        self._demands = demands
        self._capacity = capacity
        offsets = np.array([job.elapsed + job.compensation for job in jobs])
        self._offsets = offsets
        lin_idx, sig_idx, flat_idx, step_idx, other_idx = [], [], [], [], []
        for i, job in enumerate(jobs):
            u = job.utility
            if isinstance(u, LinearUtility):
                lin_idx.append(i)
            elif isinstance(u, SigmoidUtility):
                sig_idx.append(i)
            elif isinstance(u, ConstantUtility):
                flat_idx.append(i)
            elif isinstance(u, StepUtility):
                step_idx.append(i)
            else:
                other_idx.append(i)
        self._lin = np.array(lin_idx, dtype=int)
        self._sig = np.array(sig_idx, dtype=int)
        self._flat = np.array(flat_idx, dtype=int)
        self._step = np.array(step_idx, dtype=int)
        self._other = other_idx
        self._other_utils = [jobs[i].utility for i in other_idx]

        def params(idx: Sequence[int], attr: str) -> npt.NDArray[np.float64]:
            return np.array([getattr(jobs[i].utility, attr) for i in idx], dtype=float)

        self._lin_b = params(lin_idx, "budget")
        self._lin_w = params(lin_idx, "priority")
        self._lin_beta = params(lin_idx, "beta")
        self._sig_b = params(sig_idx, "budget")
        self._sig_w = params(sig_idx, "priority")
        self._sig_beta = params(sig_idx, "beta")
        with np.errstate(over="ignore"):
            self._sig_max = self._sig_w / (1.0 + np.exp(-self._sig_beta * self._sig_b))
        self._flat_w = params(flat_idx, "priority")
        self._step_b = params(step_idx, "budget")
        self._step_w = params(step_idx, "priority")
        # Utility ceilings, evaluated once: the layer loop and the
        # bottleneck lookahead take maxima over (subsets of) these
        # thousands of times per solve.
        self.max_values = np.array([job.utility.max_value() for job in jobs],
                                   dtype=float)
        self._level_memo: Dict[float, npt.NDArray[np.float64]] = {}
        self._view_memo: Dict[float, Tuple[npt.NDArray[np.intp],
                                           npt.NDArray[np.float64],
                                           npt.NDArray[np.float64]]] = {}

    def raw_deadlines(self, level: float) -> npt.NDArray[np.float64]:
        """``U_i^{-1}(level)`` for every job, before elapsed/compensation."""
        d = np.empty(self._n, dtype=float)
        if self._lin.size:
            vals = np.where(
                level <= 0.0, np.inf,
                np.where(level > self._lin_beta * self._lin_b + self._lin_w + 1e-15,
                         -np.inf,
                         self._lin_b + (self._lin_w - level) / self._lin_beta))
            d[self._lin] = vals
        if self._sig.size:
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.clip(self._sig_w / max(level, 1e-300) - 1.0, 1e-300, None)
                formula = self._sig_b + np.log(ratio) / self._sig_beta
            vals = np.where(level <= 0.0, np.inf,
                            np.where(level > self._sig_max + 1e-15, -np.inf, formula))
            d[self._sig] = vals
        if self._flat.size:
            d[self._flat] = np.where(level <= self._flat_w + 1e-15, np.inf, -np.inf)
        if self._step.size:
            d[self._step] = np.where(
                level <= 0.0, np.inf,
                np.where(level > self._step_w + 1e-15, -np.inf, self._step_b))
        for pos, util in zip(self._other, self._other_utils):
            d[pos] = util.deadline_for(level)
        return d

    def deadlines(self, level: float) -> npt.NDArray[np.float64]:
        """Integer slot deadlines from now, capped at the horizon.

        Entries are ``-inf`` when the level is unreachable for the job.
        Results are memoized per level for the lifetime of the bank: the
        bisection grids of consecutive layers and of the bottleneck
        lookahead revisit the same levels constantly, so most queries of
        one solve are dict hits.  The returned array is read-only.
        """
        cached = self._level_memo.get(level)
        if cached is not None:
            return cached
        d = self.raw_deadlines(level) - self._offsets
        d = np.minimum(d, self._horizon)
        finite = np.isfinite(d)
        d[finite] = np.floor(d[finite] + 1e-9)
        d.setflags(write=False)
        if len(self._level_memo) >= 1024:
            self._level_memo.clear()
        self._level_memo[level] = d
        return d

    def level_view(self, level: float) -> Tuple[npt.NDArray[np.intp],
                                                npt.NDArray[np.float64],
                                                npt.NDArray[np.float64]]:
        """The whole layer's deadlines at ``level``, pre-sorted once.

        Returns ``(order, deadlines_sorted * capacity, demands_sorted)``
        where ``order`` is the *stable* argsort of :meth:`deadlines` over
        every job in the bank and the two value arrays are aligned with
        it.  Feasibility checks restrict this full-set view to the active
        jobs with one boolean gather — a subsequence of a stably sorted
        array is itself stably sorted, so the restriction reproduces
        exactly the order a per-check stable argsort of the subset would
        produce.  Deadlines come back pre-multiplied by the capacity so
        the staircase's right-hand side ``capacity * d`` costs nothing
        per check; :meth:`deadlines` floors every finite entry to an
        integer, so the scaling is order-preserving and collapses no
        ties (integer-times-capacity products stay exact far beyond any
        realistic horizon).  Memoized per level: the bisection grids of
        consecutive layers and of the bottleneck lookahead revisit
        levels constantly, so one ``argsort`` typically serves many
        checks.
        """
        if self._demands is None or self._capacity is None:
            raise ConfigurationError(
                "level_view needs the bank constructed with demand and "
                "capacity")
        view = self._view_memo.get(level)
        if view is not None:
            return view
        d = self.deadlines(level)
        order = np.argsort(d, kind="stable")
        view = (order, d[order] * self._capacity, self._demands[order])
        if len(self._view_memo) >= 1024:
            self._view_memo.clear()
        self._view_memo[level] = view
        return view


class _PeeledLedger:
    """Demand committed to already-peeled jobs, by target completion-time.

    Exposes the peeled ``(T_j, eta_j)`` pairs sorted by time so the
    feasibility test can fold them into the staircase.  Note that the
    capacity condition must be verified at *every* deadline — peeled ones
    included: a peeled job finishing just after an active job's deadline
    still competes for the same early slots.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._demands: List[float] = []
        self._sorted_times: npt.NDArray[np.float64] = np.empty(0)
        self._sorted_demands: npt.NDArray[np.float64] = np.empty(0)
        self._cum: npt.NDArray[np.float64] = np.empty(0)

    def commit(self, completion: float, demand: float) -> None:
        self._times.append(completion)
        self._demands.append(demand)
        order = np.argsort(self._times, kind="stable")
        self._sorted_times = np.asarray(self._times, dtype=float)[order]
        self._sorted_demands = np.asarray(self._demands, dtype=float)[order]
        self._cum = np.cumsum(self._sorted_demands)

    @property
    def times(self) -> npt.NDArray[np.float64]:
        return self._sorted_times

    @property
    def demands(self) -> npt.NDArray[np.float64]:
        return self._sorted_demands

    def committed_by(self, times: npt.NDArray[np.float64]
                     ) -> npt.NDArray[np.float64]:
        """``G(t)`` for an array of query times (vectorized)."""
        if self._sorted_times.size == 0:
            return np.zeros(times.shape)
        idx = np.searchsorted(self._sorted_times, times, side="right")
        out = np.zeros(times.shape)
        mask = idx > 0
        out[mask] = self._cum[idx[mask] - 1]
        return out

    @property
    def total(self) -> float:
        return float(self._cum[-1]) if self._cum.size else 0.0


def solve_onion(jobs: Sequence[OnionJob], capacity: int, *,
                tolerance: float = 0.01,
                horizon: Optional[int] = None,
                lookahead: int = 4,
                warm_start: Optional[Sequence[LayerHint]] = None,
                budget_deadline: Optional[float] = None) -> OnionResult:
    """Lexicographic max-min completion-time assignment (Algorithm 3).

    Parameters
    ----------
    jobs:
        The active jobs with their robust demands.
    capacity:
        Cluster capacity ``C`` in containers.
    tolerance:
        Bisection tolerance ``Delta`` on the utility level.
    horizon:
        Scheduling horizon in slots.  Defaults to
        :func:`default_horizon`, which always admits the bottom layer.
    lookahead:
        Maximum bottleneck candidates evaluated when a layer bottoms out
        at the utility floor and several jobs could be the sacrifice (see
        the inline comment); 0 restores the paper's pure greedy rule.
    warm_start:
        Per-layer :class:`LayerHint` records from a previous solve over a
        similar job snapshot (``OnionResult.hints``).  Each hint's bracket
        is probed before bisecting; confirmed probes collapse the layer to
        two feasibility checks, and an unchanged floor-layer candidate set
        reuses the recorded bottleneck instead of re-running the
        lookahead.  Hints never bypass a feasibility check — a stale hint
        degrades to at most two wasted probes — but a *drifted* snapshot
        may peel within-tolerance different levels than a cold solve.
    budget_deadline:
        Absolute ``time.perf_counter()`` instant by which the solve must
        finish.  Checked cooperatively before every staircase evaluation
        (the solver's unit of work); exceeding it raises
        :class:`~repro.errors.SolverBudgetError` so a caller with a
        degradation policy can fall back instead of stalling.

    Raises
    ------
    InfeasiblePlanError
        If even the bottom utility layer does not fit the horizon (only
        possible with an explicit, too-short horizon or zero capacity).
    SolverBudgetError
        If ``budget_deadline`` passes mid-solve.
    """
    if capacity <= 0:
        raise InfeasiblePlanError(f"cluster capacity must be positive, got {capacity}")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("job ids must be unique within one solve")
    if horizon is None:
        horizon = default_horizon(jobs, capacity)
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")

    targets: Dict[str, JobTarget] = {}
    active: List[int] = []
    for i, job in enumerate(jobs):
        if job.demand <= 0.0:
            # Nothing left to run: the job completes "now" at full utility.
            value = job.utility.value(job.elapsed)
            targets[job.job_id] = JobTarget(
                job_id=job.job_id, target_completion=0,
                utility_value=value, layer=0, achievable=value > 0.0)
        else:
            active.append(i)

    demands = np.array([job.demand for job in jobs], dtype=float)
    bank = _DeadlineBank(jobs, horizon, demands, capacity)
    ledger = _PeeledLedger()
    checks = 0
    # Capacity-scaled ledger times, refreshed once per peel: the staircase
    # compares capacity * deadline on both sides of the merge, so frozen
    # commitments carry their scaled times alongside the raw ones.
    ledger_cap = ledger.times * capacity

    # One-slot identity cache for the active-set boolean mask: every check
    # of one layer's bisection (and of one lookahead candidate) passes the
    # same index-array object, so the mask is rebuilt only once per layer
    # and once per candidate.  Holding a strong reference to the key array
    # makes the ``is`` test safe against id reuse.
    mask_state: List[Optional[npt.NDArray[np.bool_]]] = [None, None]

    def active_mask(active_idx: npt.NDArray[np.intp]) -> npt.NDArray[np.bool_]:
        if mask_state[0] is not active_idx:
            mask = np.zeros(len(jobs), dtype=bool)
            mask[active_idx] = True
            mask_state[0] = active_idx  # type: ignore[assignment]
            mask_state[1] = mask
        return mask_state[1]  # type: ignore[return-value]

    # Preallocated scratch for the merge: merged size is at most every job
    # plus one tentative lookahead pin, so one set of buffers serves every
    # check without re-allocating on the hot path.
    n_jobs = len(jobs)
    d_buf = np.empty(n_jobs + 1)
    e_buf = np.empty(n_jobs + 1)
    s_buf = np.empty(n_jobs + 1)
    comp_buf = np.empty(n_jobs + 1, dtype=bool)
    pos_buf = np.arange(n_jobs + 1)

    def staircase(level: float, active_idx: npt.NDArray[np.intp],
                  frozen: Optional[Tuple[npt.NDArray[np.float64],
                                         npt.NDArray[np.float64]]] = None,
                  need_candidates: bool = False,
                  ) -> Tuple[bool, List[int]]:
        """Check the staircase condition (12) at *all* deadlines.

        Active jobs' deadlines come from the utility level; peeled jobs
        (plus any tentative pin the bottleneck lookahead pre-merged into
        ``frozen``) contribute their frozen targets.  The condition must
        hold at every merged deadline point: a peeled job finishing just
        after an active one still competes for the same early capacity.

        The whole layer is evaluated in one vectorized pass: the active
        jobs are a boolean-gather restriction of the bank's memoized
        per-level sorted view, merged with the (already sorted) frozen
        commitments by ``searchsorted`` position arithmetic instead of a
        per-check ``argsort``.  The merge reproduces the historical
        concatenation order exactly — on equal deadlines active entries
        precede frozen ones, and both blocks keep their internal order —
        so prefix sums accumulate in the same sequence and every
        feasibility verdict is bit-identical to the scalar path.

        On failure with ``need_candidates``, the active jobs at or before
        the first violated point — the candidate bottlenecks — are
        returned by global index, in deadline order; probe callers leave
        it false and get an empty list, skipping that bookkeeping.
        """
        nonlocal checks
        if budget_deadline is not None and time.perf_counter() > budget_deadline:
            raise SolverBudgetError(
                f"onion solve exceeded its time budget after {checks} "
                f"feasibility check(s)")
        checks += 1
        order, dcap_sorted, eta_sorted = bank.level_view(level)
        sel = active_mask(active_idx).take(order)
        d_act = dcap_sorted.compress(sel)
        eta_act = eta_sorted.compress(sel)
        if frozen is None:
            f_times, f_demands = ledger_cap, ledger.demands
        else:
            f_times, f_demands = frozen
        na, nf = d_act.size, f_times.size
        act_pos = None
        fro_pos = None
        if nf:
            m = na + nf
            comp = comp_buf[:m]
            comp[:] = True
            d_merged = d_buf[:m]
            eta_merged = e_buf[:m]
            # Merge by searching the smaller block into the larger one —
            # the complement positions take the other block via a boolean
            # scatter, so only one searchsorted runs per check.  Sides
            # reproduce the historical tie order exactly: on equal
            # deadlines every active entry precedes every frozen one.
            if na <= nf:
                act_pos = f_times.searchsorted(d_act, side="left")
                act_pos += pos_buf[:na]
                comp[act_pos] = False
                d_merged[act_pos] = d_act
                eta_merged[act_pos] = eta_act
                d_merged[comp] = f_times
                eta_merged[comp] = f_demands
            else:
                fro_pos = d_act.searchsorted(f_times, side="right")
                fro_pos += pos_buf[:nf]
                comp[fro_pos] = False
                d_merged[fro_pos] = f_times
                eta_merged[fro_pos] = f_demands
                d_merged[comp] = d_act
                eta_merged[comp] = eta_act
        else:
            d_merged = d_act
            eta_merged = eta_act
            m = na
        prefix = eta_merged.cumsum()
        slack = np.subtract(d_merged, prefix, out=s_buf[:m])
        # A min-reduce verdict: -inf and NaN slack entries compare False
        # against the tolerance, so unreachable levels stay infeasible.
        if slack.min(initial=np.inf) >= -1e-9:
            return True, []
        if not need_candidates:
            return False, []
        bad = ~(slack >= -1e-9)
        first = int(np.argmax(bad))
        if nf == 0:
            count = first + 1
        elif act_pos is not None:
            count = int(act_pos.searchsorted(first, side="right"))
        else:
            count = first + 1 - int(fro_pos.searchsorted(first, side="right"))
        if count == 0:  # pragma: no cover - defensive
            count = 1
        return False, [int(g) for g in order.compress(sel)[:count]]

    def feasibility(level: float, active_idx: npt.NDArray[np.intp]) -> bool:
        """Condition (12) as a boolean probe (no candidate bookkeeping)."""
        ok, _ = staircase(level, active_idx)
        return ok

    global_floor = min((job.utility.min_value() for job in jobs), default=0.0)
    global_floor = min(global_floor, 0.0)

    hints: List[LayerHint] = []
    layer = 0
    seed: Optional[float] = None
    tracer = get_tracer()
    # Per-layer records accumulate in a plain list and land on the solve
    # span's payload in one note() at the end: one peel per job makes a
    # per-layer trace *event* a per-job Span allocation on the planner's
    # hot path, which is what the benchmark's obs-overhead gate polices.
    trail: Optional[List[Dict[str, object]]] = [] if tracer.active else None
    with tracer.span("onion.solve", jobs=len(jobs),
                     capacity=capacity,
                     horizon=horizon) as solve_span:
        while active:
            layer += 1
            active_idx = np.array(active, dtype=int)
            ceiling = float(bank.max_values[active_idx].max())
            ok = feasibility(ceiling, active_idx)
            if ok:
                # Every remaining job attains its ceiling; peel them all.
                deadlines = bank.deadlines(ceiling)[active_idx]
                _peel_batch(jobs, active, list(active_idx), deadlines, ledger,
                            targets, layer, horizon)
                if trail is not None:
                    trail.append({"layer": layer, "level": ceiling,
                                  "peeled": "batch"})
                break
            high = ceiling
            # Seed the bracket's feasible end from the previous layer: the
            # peel invariant keeps its verified level feasible for the
            # remaining jobs, so one probe replaces the cold floor probe and
            # usually starts the bisection much closer to the fixed point.
            low = None
            if seed is not None and global_floor < seed < high:
                if feasibility(seed, active_idx):
                    low = seed
            if low is None:
                ok = feasibility(global_floor, active_idx)
                if not ok:
                    raise InfeasiblePlanError(
                        "even the minimum utility layer does not fit the horizon "
                        f"(horizon={horizon}, capacity={capacity}); "
                        "increase the horizon or drop demand")
                low = global_floor
            # Cross-plan warm start: re-probe the previous plan's final
            # bracket for this layer.  When both probes confirm (the steady
            # state), the bracket is already at tolerance width — and equal to
            # the previous one, so the layer peels identically.
            hint = (warm_start[layer - 1] if warm_start is not None
                    and layer - 1 < len(warm_start) else None)
            if hint is not None:
                if low < hint.low < high:
                    if feasibility(hint.low, active_idx):
                        low = hint.low
                    else:
                        high = hint.low
                if low < hint.high < high:
                    if not feasibility(hint.high, active_idx):
                        high = hint.high
                    else:
                        low = hint.high
            while high - low > tolerance:
                mid = 0.5 * (low + high)
                if feasibility(mid, active_idx):
                    low = mid
                else:
                    high = mid
            _, candidates = staircase(high, active_idx, need_candidates=True)
            if not candidates:  # pragma: no cover - defensive
                candidates = [active[0]]
            bottleneck = candidates[-1]  # the paper's greedy pick
            seed = low
            floor_candidates: Optional[FrozenSet[str]] = None

            # Sacrifice ambiguity (a refinement beyond the paper's greedy
            # rule): when the layer bottoms out at the utility floor, the
            # peeled job escapes the binding constraint entirely — its
            # floor-level deadline is the horizon — so WHICH prefix member is
            # sacrificed changes what later layers can achieve.  A one-step
            # lookahead picks the candidate whose sacrifice maximizes the next
            # layer's max-min level.  (At interior levels every prefix member
            # is provably capped at L*, so the greedy pick is optimal there.)
            if (lookahead > 0 and len(candidates) > 1
                    and low <= global_floor + tolerance):
                floor_candidates = frozenset(jobs[i].job_id for i in candidates)
                hinted = None
                if (hint is not None and hint.bottleneck_id is not None
                        and hint.candidate_ids == floor_candidates):
                    hinted = next((i for i in candidates
                                   if jobs[i].job_id == hint.bottleneck_id), None)
                if hinted is not None:
                    # Unchanged candidate set: reuse the recorded sacrifice
                    # instead of re-running one bisection per candidate.  Any
                    # candidate pinned at its level-``low`` deadline preserves
                    # the staircase, so a stale hint is still a *valid* peel.
                    bottleneck = hinted
                else:
                    shortlist = candidates[-lookahead:]
                    best_level = -math.inf
                    for candidate in shortlist:
                        pin = _clamp_completion(
                            float(bank.deadlines(low)[candidate]), horizon)
                        # Pre-merge the tentative pin into the frozen ledger
                        # once per candidate (historical tie order: ledger
                        # entries precede the pin on equal times) so every
                        # lookahead check skips the extra-commitment merge.
                        # Times are capacity-scaled to match the staircase's
                        # pre-scaled deadline views.
                        lt, ld = ledger.times, ledger.demands
                        ins = int(lt.searchsorted(float(pin), side="right"))
                        f_times = np.empty(lt.size + 1)
                        f_times[:ins] = ledger_cap[:ins]
                        f_times[ins] = float(pin) * capacity
                        f_times[ins + 1:] = ledger_cap[ins:]
                        f_demands = np.empty(ld.size + 1)
                        f_demands[:ins] = ld[:ins]
                        f_demands[ins] = float(demands[candidate])
                        f_demands[ins + 1:] = ld[ins:]
                        frozen = (f_times, f_demands)
                        remaining = active_idx[active_idx != candidate]
                        level = _lookahead_level(
                            staircase, remaining, frozen, global_floor,
                            float(bank.max_values[remaining].max())
                            if remaining.size else global_floor,
                            tolerance, prune_below=best_level)
                        if level > best_level + 1e-12:
                            best_level = level
                            bottleneck = candidate
                    if math.isfinite(best_level):
                        # The lookahead verified this level feasible for the
                        # remaining jobs with the winner pinned — a tighter
                        # (still exact) seed for the next layer.
                        seed = max(seed, best_level)

            deadline = float(bank.deadlines(low)[bottleneck])
            _peel_one(jobs[bottleneck], deadline, ledger, targets, layer, horizon)
            ledger_cap = ledger.times * capacity
            active.remove(bottleneck)
            hints.append(LayerHint(low=low, high=high,
                                   candidate_ids=floor_candidates,
                                   bottleneck_id=jobs[bottleneck].job_id))
            if trail is not None:
                trail.append({"layer": layer, "low": low, "high": high,
                              "peeled": jobs[bottleneck].job_id})

        solve_span.note(layers=layer, feasibility_checks=checks)
        if trail is not None:
            solve_span.note(layer_trail=trail)
    _note_solve(layer, checks)
    return OnionResult(targets=targets, layers=layer,
                       feasibility_checks=checks, horizon=horizon,
                       hints=tuple(hints))


def _peel_one(job: OnionJob, deadline: float, ledger: _PeeledLedger,
              targets: Dict[str, JobTarget], layer: int, horizon: int) -> None:
    completion = _clamp_completion(deadline, horizon)
    value = job.utility.value(job.elapsed + completion)
    ledger.commit(completion, job.demand)
    targets[job.job_id] = JobTarget(
        job_id=job.job_id, target_completion=completion,
        utility_value=value, layer=layer, achievable=value > 1e-9)


def _peel_batch(jobs: Sequence[OnionJob], active: List[int], idx: List[int],
                deadlines: npt.NDArray[np.float64], ledger: _PeeledLedger,
                targets: Dict[str, JobTarget], layer: int, horizon: int) -> None:
    for pos, i in enumerate(idx):
        _peel_one(jobs[i], float(deadlines[pos]), ledger, targets, layer, horizon)
    active.clear()


def _clamp_completion(deadline: float, horizon: int) -> int:
    if not math.isfinite(deadline):
        return horizon
    return int(min(max(deadline, 1.0), horizon))


def _lookahead_level(staircase: Callable[..., Tuple[bool, List[int]]],
                     remaining_idx: npt.NDArray[np.intp],
                     frozen: Tuple[npt.NDArray[np.float64],
                                   npt.NDArray[np.float64]],
                     floor: float, ceiling: float,
                     tolerance: float,
                     prune_below: float = -math.inf) -> float:
    """Max-min level the remaining jobs could reach after a tentative peel.

    ``staircase`` is the layer feasibility oracle; the tentative
    bottleneck's pin arrives pre-merged into the ``frozen``
    (times, demands) commitment arrays.

    ``prune_below`` is the incumbent best level of the candidate scan.
    The caller only consumes this function's result through the strict
    comparison ``level > prune_below + 1e-12``, so once the bisection's
    upper bracket falls to ``prune_below + 1e-12`` the final ``low``
    (always strictly below ``high``) can no longer win and the remaining
    probes are skipped.  The returned sentinel fails the comparison the
    same way the fully-bisected value would, keeping every peel decision
    identical to the unpruned scan.
    """
    if remaining_idx.size == 0:
        return math.inf
    if ceiling <= prune_below + 1e-12:
        return prune_below
    ok, _ = staircase(ceiling, remaining_idx, frozen)
    if ok:
        return ceiling
    ok, _ = staircase(floor, remaining_idx, frozen)
    if not ok:  # pragma: no cover - the pin never breaks the bottom layer
        return floor - 1.0
    low, high = floor, ceiling
    while high - low > tolerance:
        if high <= prune_below + 1e-12:
            return prune_below
        mid = 0.5 * (low + high)
        ok, _ = staircase(mid, remaining_idx, frozen)
        if ok:
            low = mid
        else:
            high = mid
    return low
