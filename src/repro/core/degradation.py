"""Graceful planner degradation: the fallback ladder.

A production scheduler cannot afford an unhandled solver exception or an
unbounded solve: a scheduling event fires every time a container frees,
and a planner that stalls or crashes stalls the whole cluster.  The
:class:`DegradationPolicy` encodes the ladder the RUSH scheduler walks
when its planning round fails or exceeds its time budget:

1. **primary** — the warm-started incremental solve (or a cold solve when
   incrementality is off).  Bit-identical to the exact answer; the only
   rung used in a healthy run.
2. **cold_exact** — drop all incremental state and re-solve from scratch.
   Catches corruption of the warm state and gives a failing solve a
   second, independent chance within a fresh budget.
3. **last_good** — reuse the previous round's plan unchanged.  Slightly
   stale (its first-slot allocation still reflects the last snapshot)
   but safe: it was a feasible robust plan moments ago.
4. **greedy_edf** — no plan at all; the scheduler falls back to granting
   by earliest absolute deadline, the cheapest policy that still honours
   urgency.  The floor of the ladder — always succeeds.

Every fallback is counted here, tagged on the produced plan's
:class:`~repro.core.planner.PlanStats` and recorded in the simulator's
:class:`~repro.faults.base.FaultLog` (as ``degradation:<rung>`` events),
so a chaotic run's planning story is fully observable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.core.planner import SchedulePlan
from repro.obs import get_metrics, get_tracer

__all__ = ["DegradationPolicy", "DegradationOutcome", "LADDER"]

#: The rungs, in the order they are attempted.
LADDER = ("primary", "cold_exact", "last_good", "greedy_edf")


def _note_fallback(rung: str, errors: List[str]) -> None:
    """Trace/count one degradation fallback (never called for primary)."""
    tracer = get_tracer()
    if tracer.active:
        tracer.event("degradation.fallback", rung=rung,
                     failed_rungs=len(errors))
    metrics = get_metrics()
    if metrics.active:
        metrics.counter("rush_degradation_fallbacks_total",
                        help="Planning rounds served by a fallback rung",
                        labels=("rung",)).labels(rung).inc()


class DegradationOutcome:
    """What one degraded planning round produced.

    ``plan`` is None exactly when the ladder bottomed out at
    ``greedy_edf``.  ``rung`` names the rung that served the round and
    ``errors`` the stringified failures of the rungs above it.
    """

    __slots__ = ("plan", "rung", "errors")

    def __init__(self, plan: Optional[SchedulePlan], rung: str,
                 errors: List[str]) -> None:
        self.plan = plan
        self.rung = rung
        self.errors = errors

    @property
    def degraded(self) -> bool:
        return self.rung != "primary"


class DegradationPolicy:
    """Catch solver failures and walk the fallback ladder.

    Parameters
    ----------
    time_budget:
        Wall-clock seconds allowed per *primary* planning attempt
        (cooperatively enforced inside the solver).  ``None`` disables
        budget enforcement — failures are still caught.
    cold_budget_factor:
        The cold re-solve gets ``time_budget * cold_budget_factor``
        seconds (a genuine retry deserves more room than the attempt
        that just timed out).
    """

    def __init__(self, *, time_budget: Optional[float] = None,
                 cold_budget_factor: float = 2.0) -> None:
        if time_budget is not None and time_budget <= 0.0:
            raise ConfigurationError(
                f"time_budget must be positive, got {time_budget}")
        if cold_budget_factor < 1.0:
            raise ConfigurationError(
                f"cold_budget_factor must be >= 1, got {cold_budget_factor}")
        self.time_budget = time_budget
        self.cold_budget_factor = cold_budget_factor
        #: Fallback-rung usage counts over this policy's lifetime
        #: ("primary" is never counted — it is not a fallback).
        self.counts: Dict[str, int] = {}

    @property
    def cold_time_budget(self) -> Optional[float]:
        if self.time_budget is None:
            return None
        return self.time_budget * self.cold_budget_factor

    @property
    def total_fallbacks(self) -> int:
        return sum(self.counts.values())

    def execute(self,
                attempts: Sequence[Tuple[str, Callable[[], SchedulePlan]]],
                last_good: Optional[SchedulePlan]) -> DegradationOutcome:
        """Run ``attempts`` in order; degrade to ``last_good`` then EDF.

        Each attempt callable either returns a plan or raises a
        :class:`~repro.errors.ReproError` (which includes
        ``SolverBudgetError``); anything else is a genuine bug and
        propagates.  The first success wins.
        """
        errors: List[str] = []
        for rung, attempt in attempts:
            try:
                plan = attempt()
            except ReproError as exc:
                errors.append(f"{rung}: {exc}")
                continue
            if rung != "primary":
                self.counts[rung] = self.counts.get(rung, 0) + 1
                plan.stats.fallback = rung
                _note_fallback(rung, errors)
            return DegradationOutcome(plan, rung, errors)
        if last_good is not None:
            self.counts["last_good"] = self.counts.get("last_good", 0) + 1
            last_good.stats.fallback = "last_good"
            _note_fallback("last_good", errors)
            return DegradationOutcome(last_good, "last_good", errors)
        self.counts["greedy_edf"] = self.counts.get("greedy_edf", 0) + 1
        _note_fallback("greedy_edf", errors)
        return DegradationOutcome(None, "greedy_edf", errors)
