"""ASCII Gantt rendering of container plans.

A :class:`~repro.core.mapping.ContainerPlan` is a set of per-queue task
segments; seeing it laid out on a time axis is the quickest way to sanity
check a schedule (and the closest text analogue to the allocation charts
cluster UIs draw).  Each queue becomes one row; each job is assigned a
letter; ``.`` marks idle space before a queue's horizon ends.
"""

from __future__ import annotations

import math
import string
from typing import TYPE_CHECKING, Dict, List

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mapping import ContainerPlan

__all__ = ["render_gantt", "job_legend"]

#: Symbols assigned to jobs, in first-seen order; cycles if exhausted.
_SYMBOLS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def job_legend(plan: "ContainerPlan") -> Dict[str, str]:
    """Stable job-id -> symbol assignment for a plan."""
    legend: Dict[str, str] = {}
    for segment in sorted(plan.segments, key=lambda s: (s.start, s.queue)):
        if segment.job_id not in legend:
            legend[segment.job_id] = _SYMBOLS[len(legend) % len(_SYMBOLS)]
    return legend


def render_gantt(plan: "ContainerPlan", width: int = 72) -> str:
    """Render the plan as one text row per container queue.

    ``width`` is the number of character cells the makespan is scaled
    into; each cell shows the job occupying that queue at the cell's
    midpoint time (``.`` when idle).
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    makespan = plan.makespan
    if makespan <= 0 or not plan.segments:
        return "(empty plan)"
    legend = job_legend(plan)
    scale = makespan / width

    lines: List[str] = []
    header = f"time 0 .. {makespan:.1f} slots, one row per container queue"
    lines.append(header)
    for queue in range(plan.capacity):
        segments = [s for s in plan.segments if s.queue == queue]
        segments.sort(key=lambda s: s.start)
        cells = []
        for cell in range(width):
            midpoint = (cell + 0.5) * scale
            symbol = "."
            for segment in segments:
                if segment.start <= midpoint < segment.end:
                    symbol = legend[segment.job_id]
                    break
            cells.append(symbol)
        lines.append(f"q{queue:02d} |{''.join(cells)}|")
    lines.append("")
    lines.append("legend: " + "  ".join(
        f"{symbol}={job_id}" for job_id, symbol in legend.items()))
    return "\n".join(lines)
