"""Calibration of θ-percentile completion-time predictions.

RUSH promises each job completion by its planned slot with probability at
least ``theta`` — under *every* distribution in the KL ball, not just the
estimated one.  The :class:`~repro.obs.ledger.CompletionLedger` records
those promises and the realized completions; this module scores them:

* **coverage** — the fraction of realized jobs that finished at or before
  the predicted slot.  A calibrated θ=0.9 planner should see coverage of
  at least ~0.9 (robustness typically pushes it higher: the worst-case
  quantile over-provisions against distributions that did not occur);
  coverage well *below* θ means the estimator or the δ margin is lying.
* **error** — realized minus predicted slots (negative = finished early).
  Large negative means over-conservative plans; positive means broken
  promises.

Both are reported for the *first* prediction (made from the prior, before
any task samples) and the *last* (the freshest replan before completion);
the gap between them is the value of online estimation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.obs.ledger import CompletionLedger, LedgerEntry, NullLedger

__all__ = ["CalibrationRow", "CalibrationReport", "calibration_report"]


@dataclass(frozen=True)
class CalibrationRow:
    """One job's scored promise; errors are None for unrealized jobs."""

    job_id: str
    theta: float
    first_predicted: float
    last_predicted: float
    actual: Optional[int]
    predictions: int

    @property
    def realized(self) -> bool:
        return self.actual is not None

    @property
    def first_error(self) -> Optional[float]:
        """Realized minus first-predicted slots (negative = early)."""
        if self.actual is None:
            return None
        return self.actual - self.first_predicted

    @property
    def last_error(self) -> Optional[float]:
        """Realized minus last-predicted slots (negative = early)."""
        if self.actual is None:
            return None
        return self.actual - self.last_predicted

    @property
    def covered_first(self) -> Optional[bool]:
        if self.actual is None:
            return None
        return self.actual <= self.first_predicted + 1e-9

    @property
    def covered_last(self) -> Optional[bool]:
        if self.actual is None:
            return None
        return self.actual <= self.last_predicted + 1e-9


@dataclass(frozen=True)
class CalibrationReport:
    """Scored ledger: per-job rows plus the aggregate coverage numbers."""

    theta: float
    rows: List[CalibrationRow]

    @property
    def realized_rows(self) -> List[CalibrationRow]:
        return [r for r in self.rows if r.realized]

    @property
    def coverage_first(self) -> float:
        """Fraction of realized jobs covered by their first prediction."""
        return self._coverage("covered_first")

    @property
    def coverage_last(self) -> float:
        """Fraction of realized jobs covered by their last prediction."""
        return self._coverage("covered_last")

    def _coverage(self, attr: str) -> float:
        realized = self.realized_rows
        if not realized:
            return 1.0
        return (sum(1 for r in realized if getattr(r, attr))
                / len(realized))

    @property
    def mean_error_last(self) -> float:
        """Mean realized-minus-last-predicted slots over realized jobs."""
        errors = [r.last_error for r in self.realized_rows
                  if r.last_error is not None]
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def mean_abs_error_last(self) -> float:
        errors = [abs(r.last_error) for r in self.realized_rows
                  if r.last_error is not None]
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def calibrated(self) -> bool:
        """Whether last-prediction coverage meets the θ promise."""
        return self.coverage_last >= self.theta - 1e-9

    def summary_table(self) -> str:
        """Per-job text table plus the aggregate footer line."""
        rows: List[Sequence[object]] = []
        for r in self.rows:
            rows.append([
                r.job_id,
                float(r.first_predicted),
                float(r.last_predicted),
                r.actual if r.actual is not None else "-",
                (float(r.last_error)
                 if r.last_error is not None else "-"),
                ("yes" if r.covered_last else "NO")
                if r.realized else "censored",
            ])
        table = format_table(
            ["job", "first pred", "last pred", "actual", "error",
             "covered"], rows, digits=1)
        footer = (
            f"theta={self.theta:.2f}  realized={len(self.realized_rows)}"
            f"/{len(self.rows)}  coverage first={self.coverage_first:.2f}"
            f" last={self.coverage_last:.2f}  mean error"
            f"={self.mean_error_last:+.1f} slots  "
            f"{'CALIBRATED' if self.calibrated else 'MISCALIBRATED'}")
        return table + "\n\n" + footer

    def to_dict(self) -> Dict[str, Any]:
        return {
            "theta": self.theta,
            "coverage_first": self.coverage_first,
            "coverage_last": self.coverage_last,
            "mean_error_last": self.mean_error_last,
            "mean_abs_error_last": self.mean_abs_error_last,
            "calibrated": self.calibrated,
            "jobs": [{
                "job_id": r.job_id,
                "first_predicted": r.first_predicted,
                "last_predicted": r.last_predicted,
                "actual": r.actual,
                "predictions": r.predictions,
            } for r in self.rows],
        }


def calibration_report(
        ledger: Union[CompletionLedger, NullLedger, Sequence[LedgerEntry]],
) -> CalibrationReport:
    """Score a completion ledger (or a plain entry list) into a report.

    ``theta`` is taken from the entries (they all share the scheduler's
    percentile in a normal run; the max is used if they differ, the
    conservative reading).
    """
    entries = (list(ledger) if isinstance(ledger, (list, tuple))
               else ledger.entries())
    theta = max((e.theta for e in entries), default=math.nan)
    if math.isnan(theta):
        theta = 0.0
    rows = [CalibrationRow(
        job_id=e.job_id, theta=e.theta,
        first_predicted=e.first_predicted, last_predicted=e.last_predicted,
        actual=e.actual, predictions=e.predictions) for e in entries]
    return CalibrationReport(theta=float(theta), rows=rows)
