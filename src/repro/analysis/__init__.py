"""Analysis toolkit: figure-shaped statistics and text rendering."""

from repro.analysis.calibration import (
    CalibrationReport,
    CalibrationRow,
    calibration_report,
)
from repro.analysis.chaos import ChaosPoint, ChaosReport, chaos_sweep
from repro.analysis.experiment import Experiment, ExperimentResults
from repro.analysis.gantt import job_legend, render_gantt
from repro.analysis.report import (
    format_boxplots,
    format_cdf_table,
    format_number,
    format_table,
)
from repro.analysis.scenario import (
    differential_table,
    render_scenario_text,
    save_scenario_json,
    scenario_summary_table,
)
from repro.analysis.stats import (
    BoxplotStats,
    Summary,
    boxplot_stats,
    ecdf,
    ecdf_at,
    summarize,
)

__all__ = [
    "CalibrationReport",
    "CalibrationRow",
    "calibration_report",
    "ChaosPoint",
    "ChaosReport",
    "chaos_sweep",
    "BoxplotStats",
    "boxplot_stats",
    "ecdf",
    "ecdf_at",
    "Summary",
    "summarize",
    "format_table",
    "format_boxplots",
    "format_cdf_table",
    "format_number",
    "render_gantt",
    "job_legend",
    "Experiment",
    "ExperimentResults",
    "scenario_summary_table",
    "differential_table",
    "render_scenario_text",
    "save_scenario_json",
]
