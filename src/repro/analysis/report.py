"""Plain-text rendering of tables and figure-shaped summaries.

The benchmark harness regenerates each of the paper's figures as text:
aligned tables for the numbers and quick ASCII sketches for the boxplots
and CDFs, so results are inspectable straight from the pytest output or
the files the benchmarks write.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.analysis.stats import BoxplotStats, ecdf_at

__all__ = ["format_table", "format_boxplots", "format_cdf_table", "format_number"]


def format_number(value: float, digits: int = 2) -> str:
    """Human-friendly fixed-point formatting with NaN/inf handling."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 digits: int = 2) -> str:
    """Render an aligned text table with a header rule."""
    rendered = [[h for h in headers]]
    for row in rows:
        rendered.append([
            format_number(cell, digits) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines: List[str] = []
    for idx, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_boxplots(stats: Mapping[str, BoxplotStats], digits: int = 1) -> str:
    """Tabulate boxplot summaries, one labelled row per series (Figure 4)."""
    headers = ["series", "n", "whisk-lo", "q1", "median", "q3", "whisk-hi",
               "mean", "#outliers"]
    rows = []
    for label, s in stats.items():
        rows.append([label, s.n, s.whisker_low, s.q1, s.median, s.q3,
                     s.whisker_high, s.mean, len(s.outliers)])
    return format_table(headers, rows, digits=digits)


def format_cdf_table(series: Mapping[str, Sequence[float]],
                     grid: Sequence[float], digits: int = 2) -> str:
    """Tabulate empirical CDFs of several series on a common grid (Figure 6).

    Each row is a grid point ``x``; each column the fraction of that
    series' values <= ``x``.
    """
    labels = list(series)
    headers = ["x"] + labels
    rows: List[List[object]] = []
    for x in grid:
        rows.append([float(x)] + [ecdf_at(series[label], x) for label in labels])
    return format_table(headers, rows, digits=digits)
