"""Chaos sweeps: fault-intensity degradation curves.

``rush chaos`` replays one workload under one policy while dialling a
:class:`~repro.faults.plan.FaultPlan` through a ladder of intensities.
Because the plan's decision streams are monotone-coupled (see
``repro.faults.plan``), every sweep point replays the *same* fault draw
sequence with a scaled firing threshold — the curve measures the policy's
response to progressively harsher conditions, not run-to-run noise.

Each sweep point is one bounded simulation (``max_slots`` caps it); jobs
still incomplete at the cap are censored and score their capped utility,
which is exactly the degradation signal high intensities should produce.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.cluster.job import JobSpec
from repro.cluster.metrics import SimulationResult
from repro.cluster.simulator import run_simulation
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.schedulers.base import Scheduler

__all__ = ["ChaosPoint", "ChaosReport", "chaos_sweep"]


@dataclass(frozen=True)
class ChaosPoint:
    """One intensity's outcome in a chaos sweep."""

    intensity: float
    total_utility: float
    min_utility: float
    completed: int
    jobs: int
    on_time_fraction: float
    zero_utility_fraction: float
    fault_events: int
    fault_counts: Dict[str, int]
    fallbacks: Dict[str, int]
    task_failures: int
    timed_out: bool
    slots_simulated: int

    @classmethod
    def from_result(cls, intensity: float,
                    result: SimulationResult) -> "ChaosPoint":
        counts: Dict[str, int] = {}
        for event in result.fault_events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return cls(
            intensity=intensity,
            total_utility=result.total_utility(),
            min_utility=result.min_utility(),
            completed=result.completed_count,
            jobs=len(result.records),
            on_time_fraction=result.on_time_fraction,
            zero_utility_fraction=result.zero_utility_fraction,
            fault_events=len(result.fault_events),
            fault_counts=counts,
            fallbacks=dict(result.fallbacks),
            task_failures=result.task_failures,
            timed_out=result.timed_out,
            slots_simulated=result.slots_simulated,
        )

    def to_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "total_utility": self.total_utility,
            "min_utility": self.min_utility,
            "completed": self.completed,
            "jobs": self.jobs,
            "on_time_fraction": self.on_time_fraction,
            "zero_utility_fraction": self.zero_utility_fraction,
            "fault_events": self.fault_events,
            "fault_counts": dict(self.fault_counts),
            "fallbacks": dict(self.fallbacks),
            "task_failures": self.task_failures,
            "timed_out": self.timed_out,
            "slots_simulated": self.slots_simulated,
        }


@dataclass
class ChaosReport:
    """A full sweep: the degradation curve plus its provenance."""

    scheduler_name: str
    capacity: int
    max_slots: int
    fault_spec: dict
    points: List[ChaosPoint] = field(default_factory=list)

    @property
    def baseline(self) -> Optional[ChaosPoint]:
        """The lowest-intensity point (the curve's reference)."""
        if not self.points:
            return None
        return min(self.points, key=lambda p: p.intensity)

    def utility_retention(self) -> Dict[float, float]:
        """Per-intensity total utility as a fraction of the baseline's."""
        base = self.baseline
        if base is None or base.total_utility <= 0.0:
            return {p.intensity: math.nan for p in self.points}
        return {p.intensity: p.total_utility / base.total_utility
                for p in self.points}

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler_name,
            "capacity": self.capacity,
            "max_slots": self.max_slots,
            "fault_spec": self.fault_spec,
            "points": [p.to_dict() for p in self.points],
        }

    def save_json(self, path: Union[str, Path]) -> None:
        def clean(obj):
            if isinstance(obj, float) and not math.isfinite(obj):
                return None
            if isinstance(obj, dict):
                return {k: clean(v) for k, v in obj.items()}
            if isinstance(obj, list):
                return [clean(v) for v in obj]
            return obj

        Path(path).write_text(
            json.dumps(clean(self.to_dict()), indent=2, sort_keys=True),
            encoding="utf-8")

    def summary_table(self) -> str:
        retention = self.utility_retention()
        rows = []
        for p in sorted(self.points, key=lambda q: q.intensity):
            kept = retention.get(p.intensity, math.nan)
            rows.append([
                p.intensity, p.fault_events,
                f"{p.completed}/{p.jobs}",
                p.total_utility,
                "-" if math.isnan(kept) else f"{kept:.0%}",
                p.on_time_fraction,
                sum(p.fallbacks.values()),
                "yes" if p.timed_out else "no",
            ])
        table = format_table(
            ["intensity", "faults", "completed", "utility", "kept",
             "on-time", "fallbacks", "censored"], rows, digits=2)
        return (f"chaos sweep — policy={self.scheduler_name}, "
                f"capacity={self.capacity}, "
                f"max {self.max_slots} slots/point\n\n{table}")


def chaos_sweep(specs: Sequence[JobSpec], capacity: int,
                scheduler_factory: Callable[[], Scheduler],
                plan: FaultPlan,
                intensities: Sequence[float],
                *, seed: int = 0,
                max_slots: int = 20_000) -> ChaosReport:
    """Replay one workload across a ladder of fault intensities.

    ``scheduler_factory`` builds a *fresh* scheduler per point (scheduler
    state — estimator posteriors, degradation counts — must not leak
    between points).  ``plan`` is the template; each point runs its
    ``scaled(intensity)`` copy so all points share the plan's seed and
    draw sequence.
    """
    if not intensities:
        raise ConfigurationError("chaos sweep needs at least one intensity")
    for intensity in intensities:
        if intensity < 0.0:
            raise ConfigurationError(
                f"intensity must be >= 0, got {intensity}")
    if max_slots < 1:
        raise ConfigurationError(f"max_slots must be >= 1, got {max_slots}")

    first = scheduler_factory()
    report = ChaosReport(scheduler_name=first.name, capacity=capacity,
                         max_slots=max_slots, fault_spec=plan.to_spec())
    schedulers = [first] + [scheduler_factory()
                            for _ in range(len(intensities) - 1)]
    for intensity, scheduler in zip(intensities, schedulers):
        result = run_simulation(
            specs, capacity, scheduler, max_slots=max_slots, seed=seed,
            faults=plan.scaled(intensity))
        report.points.append(ChaosPoint.from_result(intensity, result))
    return report
