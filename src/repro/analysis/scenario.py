"""Text and JSON rendering of scenario-library runs (`rush scenarios`).

This module is the analysis-side counterpart of
:mod:`repro.workload.scenarios`: it turns a
:class:`~repro.workload.scenarios.ScenarioOutcome` into the per-policy
differential table, the calibration footer, and the JSON artifact the
CI ``scenarios-smoke`` lane uploads.  Everything rendered here is
deterministic — the digest is part of the output precisely so two runs
of ``rush scenarios run <name> --seed N`` can be compared byte-for-byte
(wall-clock planner timings are excluded from both text and JSON).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List, Sequence, Union

from repro.analysis.report import format_table

if TYPE_CHECKING:  # rendering only consumes the outcome's surface
    from repro.workload.scenarios import ScenarioOutcome

__all__ = [
    "scenario_summary_table",
    "differential_table",
    "render_scenario_text",
    "save_scenario_json",
]


def scenario_summary_table(outcome: "ScenarioOutcome") -> str:
    """Per-policy outcome table over the held-out suffix."""
    rows: List[Sequence[object]] = []
    for policy in sorted(outcome.results):
        result = outcome.results[policy]
        n = len(result.records)
        rows.append([
            policy.upper(),
            f"{result.completed_count}/{n}",
            float(result.utilization),
            float(outcome.mean_utility(policy)),
            float(result.total_utility()),
            float(result.zero_utility_fraction),
        ])
    return format_table(
        ["policy", "completed", "utilization", "mean utility",
         "total utility", "zero-utility frac"], rows, digits=3)


def differential_table(outcome: "ScenarioOutcome") -> str:
    """RUSH's mean-utility margin over each baseline (positive = ahead)."""
    margins = outcome.utility_margins()
    rows: List[Sequence[object]] = []
    for policy in sorted(margins):
        margin = margins[policy]
        rows.append([
            policy.upper(),
            float(outcome.mean_utility(policy)),
            float(margin),
            "ahead" if margin >= 0 else "BEHIND",
        ])
    return format_table(
        ["baseline", "mean utility", "rush margin", "verdict"],
        rows, digits=3)


def render_scenario_text(outcome: "ScenarioOutcome") -> str:
    """The full `rush scenarios run` report body."""
    scenario = outcome.scenario
    variant = "fast" if outcome.fast else "full"
    lines = [
        f"scenario {scenario.name} ({variant}, seed={outcome.seed}): "
        f"{scenario.description}",
        f"warm-up jobs={outcome.warmup_jobs}  "
        f"held-out jobs={outcome.holdout_jobs}  "
        f"capacity={scenario.capacity(outcome.fast)}  "
        f"fitted classes={len(outcome.fit_summary)}",
        "",
        scenario_summary_table(outcome),
        "",
        differential_table(outcome),
    ]
    report = outcome.calibration
    if report is not None and report.rows:
        lines += ["", (
            f"calibration: theta={report.theta:.2f}  "
            f"coverage last={report.coverage_last:.2f}  "
            f"mean error={report.mean_error_last:+.1f} slots  "
            f"{'CALIBRATED' if report.calibrated else 'MISCALIBRATED'}")]
    lines += ["", f"digest: {outcome.digest()}"]
    return "\n".join(lines)


def save_scenario_json(outcome: "ScenarioOutcome",
                       path: Union[str, "object"]) -> None:
    """Write the scenario's JSON artifact (sorted keys, trailing newline)."""
    with open(str(path), "w", encoding="utf-8") as handle:
        json.dump(outcome.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
