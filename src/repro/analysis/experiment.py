"""Experiment runner: policy × seed matrices over one workload config.

The paper's evaluation repeatedly runs the same generated workload under
several schedulers and aggregates per-class latencies and utilities.
This module packages that loop so examples, benchmarks and downstream
users do not re-implement it: build an :class:`Experiment`, call
:meth:`Experiment.run`, and query the pooled metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.stats import boxplot_stats
from repro.cluster.metrics import SimulationResult, lexicographic_compare
from repro.cluster.simulator import run_simulation
from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

__all__ = ["Experiment", "ExperimentResults"]

SchedulerFactory = Callable[[], Scheduler]


@dataclass
class ExperimentResults:
    """Results of one policy × seed matrix."""

    config: WorkloadConfig
    runs: Dict[Tuple[str, int], SimulationResult] = field(default_factory=dict)

    @property
    def policies(self) -> List[str]:
        return sorted({policy for policy, _ in self.runs})

    @property
    def seeds(self) -> List[int]:
        return sorted({seed for _, seed in self.runs})

    def results_for(self, policy: str) -> List[SimulationResult]:
        matches = [result for (name, _), result in sorted(self.runs.items())
                   if name == policy]
        if not matches:
            raise ConfigurationError(f"no runs recorded for policy {policy!r}")
        return matches

    def latencies(self, policy: str, *classes: str) -> List[float]:
        """Latency samples pooled over seeds, optionally class-filtered."""
        values: List[float] = []
        for result in self.results_for(policy):
            values.extend(result.latencies(*classes))
        return values

    def utilities(self, policy: str, *classes: str) -> List[float]:
        values: List[float] = []
        for result in self.results_for(policy):
            values.extend(result.utilities(*classes))
        return values

    def lexicographic_ranking(self) -> List[str]:
        """Policies sorted best-first under the paper's RS objective."""
        import functools

        vectors = {policy: sorted(self.utilities(policy))
                   for policy in self.policies}
        return sorted(vectors,
                      key=functools.cmp_to_key(
                          lambda a, b: lexicographic_compare(vectors[a],
                                                             vectors[b])),
                      reverse=True)

    def summary_table(self, *latency_classes: str) -> str:
        """One row per policy: latency quartiles + utility aggregates."""
        classes = latency_classes or ("critical", "sensitive")
        rows = []
        for policy in self.policies:
            stats = boxplot_stats(self.latencies(policy, *classes))
            utilities = self.utilities(policy)
            zero = sum(1 for u in utilities if u <= 1e-9) / len(utilities)
            rows.append([policy, stats.median, stats.q3, stats.whisker_high,
                         sum(utilities), zero])
        return format_table(
            ["policy", "lat median", "lat q3", "lat whisk-hi",
             "total utility", "zero-utility frac"], rows)


@dataclass
class Experiment:
    """A reproducible policy × seed matrix over one workload config.

    Parameters
    ----------
    config:
        The workload to generate (identically, per seed) for every policy.
    policies:
        Mapping of display name to a zero-argument scheduler factory —
        factories, not instances, because a scheduler binds to exactly
        one simulator.
    seeds:
        Workload seeds; results are pooled across them.
    max_slots:
        Safety bound per simulation.
    """

    config: WorkloadConfig
    policies: Mapping[str, SchedulerFactory]
    seeds: Sequence[int] = (0,)
    max_slots: int = 1_000_000

    def run(self) -> ExperimentResults:
        if not self.policies:
            raise ConfigurationError("at least one policy is required")
        if not self.seeds:
            raise ConfigurationError("at least one seed is required")
        results = ExperimentResults(config=self.config)
        for seed in self.seeds:
            specs = WorkloadGenerator(self.config, seed=seed).generate()
            for name, factory in self.policies.items():
                results.runs[(name, seed)] = run_simulation(
                    specs, self.config.capacity, factory(),
                    max_slots=self.max_slots, seed=seed)
        return results
