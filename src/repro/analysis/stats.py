"""Statistics helpers backing the paper's figures.

Figure 4 is a boxplot (median, quartiles, whiskers, outliers) of job
latencies; Figure 6 plots empirical CDFs of job utilities.  This module
computes those summaries with the standard Tukey conventions so the text
renderings in :mod:`repro.analysis.report` — and any assertions the
benchmarks make about them — are unambiguous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BoxplotStats", "boxplot_stats", "ecdf", "ecdf_at", "Summary", "summarize"]


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey boxplot summary of one sample."""

    n: int
    mean: float
    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float], whisker: float = 1.5) -> BoxplotStats:
    """Compute Tukey boxplot statistics.

    Whiskers extend to the most extreme data point within
    ``whisker * IQR`` of the quartiles; anything beyond is an outlier.
    """
    arr = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if arr.size == 0:
        raise ConfigurationError("boxplot_stats needs at least one value")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - whisker * iqr
    hi_fence = q3 + whisker * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    outliers = tuple(sorted(float(v) for v in arr[(arr < lo_fence) | (arr > hi_fence)]))
    # When no data sits between a quartile and its fence, the whisker
    # collapses onto the quartile (matplotlib's convention).
    whisker_low = min(float(inside.min()), float(q1)) if inside.size else float(q1)
    whisker_high = max(float(inside.max()), float(q3)) if inside.size else float(q3)
    return BoxplotStats(n=int(arr.size), mean=float(arr.mean()), median=float(med),
                        q1=float(q1), q3=float(q3),
                        whisker_low=whisker_low,
                        whisker_high=whisker_high,
                        outliers=outliers)


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted values, cumulative fractions)``."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ConfigurationError("ecdf needs at least one value")
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions


def ecdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of ``values`` that are <= ``x``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("ecdf_at needs at least one value")
    return float(np.mean(arr <= x))


@dataclass(frozen=True)
class Summary:
    """Compact numeric summary of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Mean/std and the five-number summary of a sample."""
    arr = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if arr.size == 0:
        raise ConfigurationError("summarize needs at least one value")
    p25, med, p75 = np.percentile(arr, [25, 50, 75])
    return Summary(n=int(arr.size), mean=float(arr.mean()),
                   std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                   minimum=float(arr.min()), p25=float(p25), median=float(med),
                   p75=float(p75), maximum=float(arr.max()))
