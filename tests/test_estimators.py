"""Tests for the distribution estimator (DE) classes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EstimationError
from repro.estimation import (
    DemandEstimate,
    EmpiricalEstimator,
    GaussianEstimator,
    MeanTimeEstimator,
    Pmf,
)


class TestDemandEstimate:
    def test_validation(self):
        pmf = Pmf.impulse(3)
        with pytest.raises(ConfigurationError):
            DemandEstimate(pmf, bin_width=0, container_runtime=1, sample_count=0)
        with pytest.raises(ConfigurationError):
            DemandEstimate(pmf, bin_width=1, container_runtime=0, sample_count=0)
        with pytest.raises(ConfigurationError):
            DemandEstimate(pmf, bin_width=1, container_runtime=1, sample_count=-1)

    def test_demand_conversions(self):
        est = DemandEstimate(Pmf.impulse(10), bin_width=5.0,
                             container_runtime=3.0, sample_count=4)
        assert est.demand_at(10) == 50.0
        assert est.mean_demand() == pytest.approx(50.0)
        assert est.quantile_demand(0.9) == pytest.approx(50.0)


class TestObservation:
    def test_rejects_bad_runtimes(self):
        de = MeanTimeEstimator(prior_runtime=10)
        with pytest.raises(EstimationError):
            de.observe(0.0)
        with pytest.raises(EstimationError):
            de.observe(-5.0)
        with pytest.raises(EstimationError):
            de.observe(float("inf"))

    def test_sample_bookkeeping(self):
        de = MeanTimeEstimator(prior_runtime=10)
        de.observe_many([3.0, 4.0])
        assert de.sample_count == 2
        assert de.samples == [3.0, 4.0]
        de.samples.append(99.0)  # returned list is a copy
        assert de.sample_count == 2

    def test_negative_pending_rejected(self):
        de = MeanTimeEstimator(prior_runtime=10)
        with pytest.raises(EstimationError):
            de.estimate(-1)


class TestMeanTimeEstimator:
    def test_impulse_at_mean_times_pending(self):
        de = MeanTimeEstimator()
        de.observe_many([10.0, 20.0])
        est = de.estimate(pending_tasks=4)
        assert est.pmf.support_min() == est.pmf.support_max() == 60
        assert est.container_runtime == pytest.approx(15.0)
        assert est.sample_count == 2

    def test_prior_fallback(self):
        de = MeanTimeEstimator(prior_runtime=12.0)
        est = de.estimate(pending_tasks=2)
        assert est.mean_demand() == pytest.approx(24.0)
        assert est.sample_count == 0

    def test_no_samples_no_prior(self):
        with pytest.raises(EstimationError):
            MeanTimeEstimator().estimate(1)

    def test_bad_prior(self):
        with pytest.raises(EstimationError):
            MeanTimeEstimator(prior_runtime=-1.0)

    def test_zero_pending(self):
        de = MeanTimeEstimator(prior_runtime=10.0)
        est = de.estimate(0)
        assert est.mean_demand() == 0.0
        assert est.pmf[0] == 1.0

    def test_bin_width_coarsens_for_huge_demand(self):
        de = MeanTimeEstimator(prior_runtime=1e5)
        est = de.estimate(pending_tasks=10)
        assert est.bin_width > 1.0
        assert est.pmf.tau_max <= de.max_bins
        assert est.mean_demand() == pytest.approx(1e6, rel=0.01)


class TestGaussianEstimator:
    def test_clt_scaling(self):
        de = GaussianEstimator(min_samples=2)
        rng = np.random.default_rng(1)
        de.observe_many(rng.normal(60, 20, size=200).clip(min=1.0))
        est = de.estimate(pending_tasks=100)
        mean, std = de.task_moments()
        assert est.mean_demand() == pytest.approx(100 * mean, rel=0.02)
        assert est.pmf.std() * est.bin_width == pytest.approx(
            10 * std, rel=0.05)

    def test_prior_used_before_min_samples(self):
        de = GaussianEstimator(prior_mean=50.0, prior_std=5.0, min_samples=3)
        de.observe(100.0)  # one sample is below min_samples
        est = de.estimate(pending_tasks=4)
        assert est.mean_demand() == pytest.approx(200.0, rel=0.02)

    def test_samples_without_prior_use_default_cv(self):
        de = GaussianEstimator(min_samples=5, default_cv=0.5)
        de.observe(40.0)
        mean, std = de.task_moments()
        assert mean == 40.0 and std == 20.0

    def test_no_information_raises(self):
        with pytest.raises(EstimationError):
            GaussianEstimator().estimate(1)

    def test_validation(self):
        with pytest.raises(EstimationError):
            GaussianEstimator(prior_mean=-1)
        with pytest.raises(EstimationError):
            GaussianEstimator(prior_mean=1, prior_std=-1)
        with pytest.raises(EstimationError):
            GaussianEstimator(min_samples=0)
        with pytest.raises(EstimationError):
            GaussianEstimator(default_cv=-0.5)

    def test_identical_samples_collapse_to_impulse(self):
        de = GaussianEstimator(min_samples=2)
        de.observe_many([30.0, 30.0, 30.0])
        est = de.estimate(pending_tasks=2)
        assert est.pmf.support_min() == est.pmf.support_max() == 60

    def test_zero_pending(self):
        de = GaussianEstimator(prior_mean=10.0)
        est = de.estimate(0)
        assert est.mean_demand() == 0.0

    def test_more_samples_tighten_the_estimate(self):
        rng = np.random.default_rng(2)
        truth = rng.normal(60, 20, size=500).clip(min=1.0)
        few = GaussianEstimator(prior_mean=60, prior_std=40, min_samples=2)
        few.observe_many(truth[:3])
        many = GaussianEstimator(prior_mean=60, prior_std=40, min_samples=2)
        many.observe_many(truth)
        est_few = few.estimate(50)
        est_many = many.estimate(50)
        # both should be near the true total, many-samples much closer
        true_total = 50 * truth.mean()
        assert abs(est_many.mean_demand() - true_total) <= \
            abs(est_few.mean_demand() - true_total) + 1e-6


class TestEmpiricalEstimator:
    def test_exact_convolution_small_n(self):
        de = EmpiricalEstimator(convolution_limit=4, smoothing=0.0)
        de.observe_many([2.0, 4.0])
        est = de.estimate(pending_tasks=2)
        # sum of two iid uniform{2,4}: {4: .25, 6: .5, 8: .25}
        assert est.pmf[4] == pytest.approx(0.25)
        assert est.pmf[6] == pytest.approx(0.5)
        assert est.pmf[8] == pytest.approx(0.25)

    def test_clt_fallback_large_n(self):
        de = EmpiricalEstimator(convolution_limit=4)
        de.observe_many([2.0, 4.0] * 10)
        est = de.estimate(pending_tasks=100)
        assert est.mean_demand() == pytest.approx(300.0, rel=0.05)

    def test_smoothing_fills_support_gaps(self):
        de = EmpiricalEstimator(smoothing=0.2)
        de.observe_many([2.0, 6.0])
        task = de.task_pmf()
        assert task[4] > 0.0  # interior gap smoothed

    def test_prior_impulse(self):
        de = EmpiricalEstimator(prior_runtime=5.0)
        est = de.estimate(pending_tasks=3)
        assert est.mean_demand() == pytest.approx(15.0)

    def test_no_information_raises(self):
        with pytest.raises(EstimationError):
            EmpiricalEstimator().estimate(2)

    def test_validation(self):
        with pytest.raises(EstimationError):
            EmpiricalEstimator(prior_runtime=0)
        with pytest.raises(EstimationError):
            EmpiricalEstimator(convolution_limit=0)
        with pytest.raises(EstimationError):
            EmpiricalEstimator(smoothing=1.0)


class TestEstimatorConvergence:
    """Figure 3's premise: estimates stabilize as samples accumulate."""

    @pytest.mark.parametrize("estimator_factory", [
        lambda: GaussianEstimator(min_samples=2),
        lambda: EmpiricalEstimator(),
    ])
    def test_quantile_approaches_truth(self, estimator_factory):
        rng = np.random.default_rng(42)
        samples = rng.normal(60, 20, size=400).clip(min=1.0)
        de = estimator_factory()
        de.observe_many(samples)
        est = de.estimate(pending_tasks=100)
        # true total: N(6000, 200^2); its 90th percentile ~ 6256
        q90 = est.quantile_demand(0.9)
        assert 5800 <= q90 <= 6800
