"""Tests for the closed-form REM solver (Algorithm 1 / Theorem 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.errors import ConfigurationError
from repro.core.rem import rem_min_kl, rem_min_kl_from_cdf, solve_rem
from repro.estimation.pmf import Pmf, kl_divergence


def reference_pmfs(max_size: int = 15):
    return st.lists(st.floats(min_value=0.01, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=max_size)


class TestValidation:
    def test_bad_theta(self):
        pmf = Pmf([0.5, 0.5])
        with pytest.raises(ConfigurationError):
            solve_rem(pmf, 0, 1.5)
        with pytest.raises(ConfigurationError):
            solve_rem(pmf, 0, -0.1)

    def test_bad_target_bin(self):
        with pytest.raises(ConfigurationError):
            solve_rem(Pmf([1.0]), -1, 0.5)


class TestSlackConstraint:
    def test_reference_already_feasible(self):
        """When Phi(L) <= theta the reference itself is optimal (kl = 0)."""
        pmf = Pmf([0.1, 0.1, 0.8])
        sol = solve_rem(pmf, 1, theta=0.5)
        assert sol.feasible
        assert sol.kl == 0.0
        assert sol.pmf == pmf

    def test_theta_one_always_slack(self):
        pmf = Pmf([0.9, 0.1])
        sol = solve_rem(pmf, 1, theta=1.0)
        assert sol.feasible and sol.kl == 0.0


class TestBindingConstraint:
    def test_two_sided_rescaling(self):
        """The optimum keeps the reference's shape on both sides of L."""
        pmf = Pmf([0.4, 0.4, 0.1, 0.1])
        sol = solve_rem(pmf, 1, theta=0.5)
        assert sol.feasible
        p = sol.pmf.probs
        # head rescaled to total theta, preserving proportions 0.4 : 0.4
        assert p[0] == pytest.approx(0.25)
        assert p[1] == pytest.approx(0.25)
        # tail rescaled to 1 - theta, preserving proportions 0.1 : 0.1
        assert p[2] == pytest.approx(0.25)
        assert p[3] == pytest.approx(0.25)

    def test_kl_matches_explicit_divergence(self):
        pmf = Pmf([0.4, 0.4, 0.1, 0.1])
        sol = solve_rem(pmf, 1, theta=0.5)
        assert sol.kl == pytest.approx(kl_divergence(sol.pmf, pmf))

    def test_constraint_satisfied_with_equality(self):
        pmf = Pmf([0.6, 0.2, 0.2])
        sol = solve_rem(pmf, 0, theta=0.3)
        assert float(sol.pmf.probs[0]) == pytest.approx(0.3)

    def test_theta_zero_moves_all_mass_up(self):
        pmf = Pmf([0.5, 0.3, 0.2])
        sol = solve_rem(pmf, 0, theta=0.0)
        assert sol.feasible
        assert sol.pmf.probs[0] == 0.0
        assert sol.pmf.cdf_at(2) == pytest.approx(1.0)
        assert sol.kl == pytest.approx(math.log(1.0 / 0.5))


class TestInfeasible:
    def test_no_tail_mass(self):
        """The adversary cannot conjure mass above the reference support."""
        pmf = Pmf([0.5, 0.5])
        sol = solve_rem(pmf, 1, theta=0.4)
        assert not sol.feasible
        assert sol.kl == math.inf
        assert sol.pmf is None

    def test_target_beyond_support(self):
        pmf = Pmf([1.0])
        sol = solve_rem(pmf, 5, theta=0.5)
        assert not sol.feasible


class TestClosedFormKl:
    def test_matches_solution_kl(self):
        pmf = Pmf([0.3, 0.3, 0.2, 0.2])
        for target in range(3):
            sol = solve_rem(pmf, target, theta=0.25)
            assert rem_min_kl(pmf, target, 0.25) == pytest.approx(sol.kl)

    def test_monotone_in_target(self, gaussian_pmf):
        values = [rem_min_kl(gaussian_pmf, t, 0.9)
                  for t in range(0, gaussian_pmf.tau_max, 7)]
        finite = [v for v in values if math.isfinite(v)]
        assert finite == sorted(finite)

    def test_cdf_edge_cases(self):
        assert rem_min_kl_from_cdf(0.3, theta=0.5) == 0.0
        assert rem_min_kl_from_cdf(1.0, theta=0.5) == math.inf
        assert rem_min_kl_from_cdf(1.0, theta=1.0) == 0.0
        assert rem_min_kl_from_cdf(0.9, theta=0.0) == pytest.approx(math.log(10.0))


class TestTheorem1OptimalityAgainstNumericSolver:
    """Theorem 1: the closed form equals a direct numeric minimization."""

    @settings(max_examples=25, deadline=None)
    @given(reference_pmfs(max_size=8),
           st.integers(min_value=0, max_value=6),
           st.floats(min_value=0.05, max_value=0.95))
    def test_closed_form_is_optimal(self, raw, target, theta):
        phi = np.asarray(raw) / np.sum(raw)
        target = min(target, len(phi) - 2)  # keep some tail mass
        pmf = Pmf(phi)
        sol = solve_rem(pmf, target, theta)
        assert sol.feasible

        # Numeric check: minimize KL over the simplex with the tail constraint.
        def objective(x):
            x = np.clip(x, 1e-12, None)
            x = x / x.sum()
            return float(np.sum(x * np.log(x / phi)))

        cons = [
            {"type": "eq", "fun": lambda x: np.sum(x) - 1.0},
            {"type": "ineq", "fun": lambda x: theta - np.sum(x[: target + 1])},
        ]
        best = math.inf
        for start in (phi, np.ones_like(phi) / len(phi)):
            res = minimize(objective, start, constraints=cons,
                           bounds=[(1e-12, 1.0)] * len(phi), method="SLSQP")
            if res.success:
                best = min(best, objective(res.x))
        if math.isfinite(best):
            assert sol.kl <= best + 1e-4
