"""Tests for the job configuration interface (dict + XML)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utility import (
    ConstantUtility,
    LinearUtility,
    PiecewiseUtility,
    SigmoidUtility,
    StepUtility,
    register_utility_class,
    utility_from_config,
    utility_from_xml,
    utility_to_config,
)


class TestFromConfig:
    def test_linear(self):
        u = utility_from_config({"class": "linear", "budget": 100,
                                 "priority": 5, "beta": 0.5})
        assert isinstance(u, LinearUtility)
        assert u.budget == 100 and u.priority == 5 and u.beta == 0.5

    def test_sigmoid_defaults(self):
        u = utility_from_config({"class": "sigmoid", "budget": 50})
        assert isinstance(u, SigmoidUtility)
        assert u.priority == 1.0 and u.beta == 0.5

    def test_constant(self):
        u = utility_from_config({"class": "constant", "priority": 2})
        assert isinstance(u, ConstantUtility)

    def test_step(self):
        u = utility_from_config({"class": "step", "budget": 10, "priority": 3})
        assert isinstance(u, StepUtility)

    def test_piecewise(self):
        u = utility_from_config({"class": "piecewise",
                                 "points": [(0, 5), (10, 0)]})
        assert isinstance(u, PiecewiseUtility)

    def test_case_insensitive_class(self):
        u = utility_from_config({"class": " Sigmoid ", "budget": 50})
        assert isinstance(u, SigmoidUtility)

    def test_missing_class(self):
        with pytest.raises(ConfigurationError, match="class"):
            utility_from_config({"budget": 1})

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError, match="unknown utility class"):
            utility_from_config({"class": "exotic"})

    def test_missing_parameter(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            utility_from_config({"class": "linear"})

    def test_bad_parameter_value(self):
        with pytest.raises(ConfigurationError):
            utility_from_config({"class": "linear", "budget": "soon"})

    def test_piecewise_needs_points(self):
        with pytest.raises(ConfigurationError, match="points"):
            utility_from_config({"class": "piecewise"})


class TestRoundTrip:
    @pytest.mark.parametrize("utility", [
        LinearUtility(100, 5, 0.5),
        SigmoidUtility(60, 3, 0.1),
        ConstantUtility(2),
        StepUtility(30, 4),
        PiecewiseUtility([(0, 5), (10, 1)]),
    ])
    def test_config_roundtrip(self, utility):
        rebuilt = utility_from_config(utility_to_config(utility))
        for t in (0, 5, 30, 60, 120):
            assert rebuilt.value(t) == pytest.approx(utility.value(t))

    def test_unknown_type_rejected(self):
        from repro.utility.base import UtilityFunction

        class Custom(UtilityFunction):
            def value(self, completion_time):
                return 1.0

            def max_value(self):
                return 1.0

            def min_value(self):
                return 1.0

        with pytest.raises(ConfigurationError):
            utility_to_config(Custom())


class TestXml:
    def test_nested_job_element(self):
        doc = """
        <job>
          <utility class="sigmoid">
            <budget>600</budget>
            <priority>5</priority>
            <beta>0.8</beta>
          </utility>
        </job>
        """
        u = utility_from_xml(doc)
        assert isinstance(u, SigmoidUtility)
        assert u.budget == 600 and u.priority == 5 and u.beta == 0.8

    def test_root_utility_element(self):
        u = utility_from_xml('<utility class="constant"><priority>2</priority></utility>')
        assert isinstance(u, ConstantUtility)
        assert u.priority == 2

    def test_piecewise_points(self):
        doc = """
        <utility class="piecewise">
          <points>
            <point time="0" value="5"/>
            <point time="10" value="0"/>
          </points>
        </utility>
        """
        u = utility_from_xml(doc)
        assert isinstance(u, PiecewiseUtility)
        assert u.value(5) == pytest.approx(2.5)

    def test_malformed_xml(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            utility_from_xml("<job><utility>")

    def test_missing_utility_element(self):
        with pytest.raises(ConfigurationError, match="no <utility>"):
            utility_from_xml("<job></job>")

    def test_missing_class_attribute(self):
        with pytest.raises(ConfigurationError, match="class attribute"):
            utility_from_xml("<utility><budget>5</budget></utility>")


class TestRegistration:
    def test_custom_class(self):
        register_utility_class("always-seven", lambda cfg: ConstantUtility(7.0))
        u = utility_from_config({"class": "always-seven"})
        assert u.value(123) == 7.0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_utility_class("  ", lambda cfg: ConstantUtility(1.0))
