"""Hypothesis-driven chaos properties: invariants under injected faults.

The fault subsystem may crash containers, stretch tasks, kill jobs,
corrupt samples and starve the solver — but it must never be able to
break the cluster's structural invariants:

* capacity conservation — never more busy containers than exist, and a
  revoked container never runs work while offline;
* no lost or duplicated tasks — every logical task of every completed
  job completes exactly once, regardless of crash/kill/retry churn;
* monotone degradation — under the plans' monotone coupling, raising the
  fault intensity never *improves* a straggler-afflicted job's runtime;
* incremental/cold equivalence — the warm-started incremental planner
  stays bit-identical to cold re-solves under fault churn;
* graceful degradation everywhere — no fault intensity can surface an
  unhandled solver exception; every failed solve lands on a recorded
  ladder rung.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSimulator, JobSpec, run_simulation
from repro.cluster.task import TaskState
from repro.faults import (
    ContainerCrashInjector,
    FaultPlan,
    JobKillInjector,
    SpecFailureInjector,
    StragglerInjector,
    default_chaos_plan,
)
from repro.schedulers import FifoScheduler, RushScheduler
from repro.utility import LinearUtility

# The chaos battery runs hundreds of seeded fault-injected simulations;
# the fast CI lane deselects it (-m "not slow"), the full lane runs it.
pytestmark = pytest.mark.slow

# ---------------------------------------------------------------------------
# strategies


def spec(job_id, durations, arrival=0, failure_prob=0.0, budget=100.0):
    return JobSpec(job_id=job_id, arrival=arrival,
                   task_durations=tuple(durations),
                   utility=LinearUtility(budget, 1.0),
                   budget=budget, failure_prob=failure_prob)


workloads = st.lists(
    st.tuples(st.lists(st.integers(1, 6), min_size=1, max_size=3),
              st.integers(0, 8),        # arrival
              st.floats(0.0, 0.6)),     # failure_prob
    min_size=1, max_size=4)

chaos_plans = st.builds(
    lambda seed, intensity: default_chaos_plan(seed=seed,
                                               intensity=intensity),
    seed=st.integers(0, 2**16), intensity=st.floats(0.0, 3.0))


def make_specs(workload):
    return [spec(f"j{k}", durations, arrival, failure_prob)
            for k, (durations, arrival, failure_prob)
            in enumerate(workload)]


# ---------------------------------------------------------------------------
# capacity conservation


class TestCapacityConservation:
    @settings(max_examples=15, deadline=None)
    @given(workload=workloads, seed=st.integers(0, 2**16),
           intensity=st.floats(0.0, 4.0))
    def test_faults_never_oversubscribe_containers(self, workload, seed,
                                                   intensity):
        plan = FaultPlan([ContainerCrashInjector(rate=0.2, revoke_slots=3),
                          StragglerInjector(rate=0.2),
                          JobKillInjector(rate=0.1),
                          SpecFailureInjector()],
                         seed=seed, intensity=intensity)
        sim = ClusterSimulator(2, FifoScheduler(), faults=plan)
        for s in make_specs(workload):
            sim.submit(s)
        for _ in range(300):
            if not (sim._pending_arrivals or sim._active):
                break
            sim.step()
            busy = sum(1 for c in sim.containers if c.task is not None)
            assert busy <= sim.capacity
            running = sum(j.running_count for j in sim.active_jobs)
            assert running == busy
            for c in sim.containers:
                # a crash clears its task the same slot, so a container
                # still inside its revocation window must be empty — the
                # scheduler can never place work on revoked capacity
                if c.offline_until > sim.now:
                    assert c.task is None


# ---------------------------------------------------------------------------
# no lost or duplicated tasks


class TestNoLostOrDuplicatedTasks:
    @settings(max_examples=15, deadline=None)
    @given(workload=workloads, plan=chaos_plans)
    def test_every_logical_task_completes_exactly_once(self, workload, plan):
        specs = make_specs(workload)
        sim = ClusterSimulator(2, FifoScheduler(), faults=plan)
        for s in specs:
            sim.submit(s)
        result = sim.run(max_slots=4000)
        for s in specs:
            job = sim.job(s.job_id)
            completed = [t for t in job.tasks
                         if t.state is TaskState.COMPLETED]
            by_logical = {}
            for t in completed:
                by_logical[t.logical_id] = by_logical.get(t.logical_id, 0) + 1
            # never a duplicated completion, even with kill/crash churn
            assert all(n == 1 for n in by_logical.values())
            if not result.timed_out:
                # and never a lost one: all logical tasks accounted for
                assert len(by_logical) == len(s.task_durations)
                assert job.is_complete


# ---------------------------------------------------------------------------
# monotone degradation under coupled intensities


class TestMonotoneDegradation:
    @settings(max_examples=20, deadline=None)
    @given(duration=st.integers(4, 40), seed=st.integers(0, 2**16),
           rate=st.floats(0.05, 0.5),
           low=st.floats(0.1, 2.0), bump=st.floats(0.1, 2.0))
    def test_straggler_runtime_nondecreasing_in_intensity(
            self, duration, seed, rate, low, bump):
        # Single job, single container, straggler only: the decision
        # draws align across intensities (one per running slot), so the
        # higher intensity strikes no later — runtime never shrinks.
        def runtime(intensity):
            plan = FaultPlan([StragglerInjector(rate=rate, slowdown=2.0)],
                             seed=seed, intensity=intensity)
            result = run_simulation([spec("j", (duration,))], 1,
                                    FifoScheduler(), faults=plan,
                                    max_slots=4000)
            assert not result.timed_out
            return result.records[0].runtime

        assert runtime(low) <= runtime(low + bump)


# ---------------------------------------------------------------------------
# incremental vs cold equivalence under fault churn


def _comparable(result):
    d = result.to_dict()
    d.pop("planner_seconds", None)  # wall-clock
    return d


class TestIncrementalColdEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(workload=workloads, seed=st.integers(0, 2**16),
           intensity=st.floats(0.0, 2.0))
    def test_bit_identical_under_fault_churn(self, workload, seed,
                                             intensity):
        specs = make_specs(workload)

        def once(incremental):
            return run_simulation(
                specs, 2, RushScheduler(incremental=incremental),
                faults=default_chaos_plan(seed=seed, intensity=intensity),
                max_slots=2000)

        assert _comparable(once(True)) == _comparable(once(False))


# ---------------------------------------------------------------------------
# graceful degradation: no unhandled solver exceptions, ever


class TestNoUnhandledSolverFailures:
    @settings(max_examples=10, deadline=None)
    @given(workload=workloads, seed=st.integers(0, 2**16),
           intensity=st.floats(0.0, 6.0),
           budget=st.sampled_from([None, 1e-12, 1e-3, 10.0]))
    def test_every_intensity_runs_to_result(self, workload, seed,
                                            intensity, budget):
        scheduler = RushScheduler(plan_time_budget=budget)
        result = run_simulation(
            make_specs(workload), 2, scheduler,
            faults=default_chaos_plan(seed=seed, intensity=intensity),
            max_slots=1500)
        # the run produced a result (no exception escaped the ladder) and
        # every failed solve is accounted for on a recorded rung
        assert result.fallback_count == scheduler.degradation.total_fallbacks
        degradations = sum(1 for e in result.fault_events
                           if e.kind.startswith("degradation:"))
        assert degradations == result.fallback_count
