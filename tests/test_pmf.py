"""Unit and property tests for the quantized PMF toolkit."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.estimation.pmf import Pmf, kl_divergence


def pmf_vectors(max_size: int = 40):
    """Hypothesis strategy for raw probability vectors (not yet normalized)."""
    return st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=max_size).filter(lambda v: sum(v) > 1e-6)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            Pmf([])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            Pmf([0.5, -0.1, 0.6])

    def test_rejects_nan(self):
        with pytest.raises(DistributionError):
            Pmf([0.5, float("nan"), 0.5])

    def test_rejects_infinite(self):
        with pytest.raises(DistributionError):
            Pmf([0.5, float("inf")])

    def test_rejects_zero_mass(self):
        with pytest.raises(DistributionError):
            Pmf([0.0, 0.0, 0.0])

    def test_rejects_unnormalized_without_flag(self):
        with pytest.raises(DistributionError):
            Pmf([0.5, 0.9])

    def test_normalize_flag(self):
        pmf = Pmf([1.0, 3.0], normalize=True)
        assert pmf[0] == pytest.approx(0.25)
        assert pmf[1] == pytest.approx(0.75)

    def test_small_rounding_noise_is_fixed(self):
        pmf = Pmf([0.5, 0.5 + 1e-9])
        assert float(pmf.probs.sum()) == pytest.approx(1.0, abs=1e-15)

    def test_probs_are_read_only(self):
        pmf = Pmf([0.5, 0.5])
        with pytest.raises(ValueError):
            # rushlint: disable=RL005 (negative test: this write is the
            # read-only-view violation the assertion proves impossible)
            pmf.probs[0] = 1.0

    @given(pmf_vectors())
    def test_always_sums_to_one(self, raw):
        pmf = Pmf(raw, normalize=True)
        assert float(pmf.probs.sum()) == pytest.approx(1.0, abs=1e-9)


class TestImpulse:
    def test_impulse_mass(self):
        pmf = Pmf.impulse(5)
        assert pmf.tau_max == 5
        assert pmf[5] == 1.0
        assert pmf.mean() == 5.0
        assert pmf.std() == 0.0

    def test_impulse_padded(self):
        pmf = Pmf.impulse(2, tau_max=10)
        assert pmf.tau_max == 10
        assert pmf[2] == 1.0

    def test_impulse_negative_rejected(self):
        with pytest.raises(DistributionError):
            Pmf.impulse(-1)

    def test_impulse_tau_too_small(self):
        with pytest.raises(DistributionError):
            Pmf.impulse(5, tau_max=3)


class TestFromSamples:
    def test_counts(self):
        pmf = Pmf.from_samples([1, 1, 2, 3])
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.25)
        assert pmf[3] == pytest.approx(0.25)

    def test_rounding(self):
        pmf = Pmf.from_samples([1.4, 1.6])
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            Pmf.from_samples([])

    def test_rejects_negative_samples(self):
        with pytest.raises(DistributionError):
            Pmf.from_samples([-1.0, 2.0])

    def test_tau_max_too_small(self):
        with pytest.raises(DistributionError):
            Pmf.from_samples([5.0], tau_max=3)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=50))
    def test_mean_matches_sample_mean(self, samples):
        pmf = Pmf.from_samples(samples)
        assert pmf.mean() == pytest.approx(float(np.mean(samples)), abs=1e-9)


class TestGaussian:
    def test_mean_location(self):
        pmf = Pmf.from_gaussian(50.0, 10.0)
        assert pmf.mean() == pytest.approx(50.0, abs=0.5)
        assert pmf.std() == pytest.approx(10.0, rel=0.1)

    def test_zero_std_is_impulse(self):
        pmf = Pmf.from_gaussian(7.0, 0.0)
        assert pmf[7] == 1.0

    def test_tails_absorbed(self):
        pmf = Pmf.from_gaussian(3.0, 5.0, tau_max=10)
        # mass below 0 lands in bin 0, and the vector still normalizes
        assert pmf[0] > 0.2
        assert float(pmf.probs.sum()) == pytest.approx(1.0, abs=1e-9)

    def test_negative_params_rejected(self):
        with pytest.raises(DistributionError):
            Pmf.from_gaussian(-1.0, 5.0)
        with pytest.raises(DistributionError):
            Pmf.from_gaussian(5.0, -1.0)


class TestQuantile:
    def test_simple(self):
        pmf = Pmf([0.2, 0.3, 0.5])
        assert pmf.quantile(0.0) == 0
        assert pmf.quantile(0.2) == 0
        assert pmf.quantile(0.21) == 1
        assert pmf.quantile(0.5) == 1
        assert pmf.quantile(0.51) == 2
        assert pmf.quantile(1.0) == 2

    def test_out_of_range(self):
        pmf = Pmf([1.0])
        with pytest.raises(DistributionError):
            pmf.quantile(1.5)
        with pytest.raises(DistributionError):
            pmf.quantile(-0.1)

    @given(pmf_vectors(), st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_definition(self, raw, theta):
        pmf = Pmf(raw, normalize=True)
        q = pmf.quantile(theta)
        assert pmf.cdf_at(q) >= theta - 1e-9
        if q > 0:
            assert pmf.cdf_at(q - 1) < theta + 1e-9

    @given(pmf_vectors())
    def test_quantile_monotone_in_theta(self, raw):
        pmf = Pmf(raw, normalize=True)
        qs = [pmf.quantile(t) for t in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)


class TestSupport:
    def test_support_bounds(self):
        pmf = Pmf([0.0, 0.5, 0.5, 0.0])
        assert pmf.support_min() == 1
        assert pmf.support_max() == 2

    def test_cdf_at_extremes(self):
        pmf = Pmf([0.4, 0.6])
        assert pmf.cdf_at(-1) == 0.0
        assert pmf.cdf_at(10) == 1.0


class TestTransforms:
    def test_padded(self):
        pmf = Pmf([0.5, 0.5]).padded(4)
        assert pmf.tau_max == 4
        assert pmf[4] == 0.0
        assert pmf[1] == pytest.approx(0.5)

    def test_padded_shrink_rejected(self):
        with pytest.raises(DistributionError):
            Pmf([0.25] * 4).padded(1)

    def test_rebinned(self):
        pmf = Pmf([0.1, 0.2, 0.3, 0.4]).rebinned(2)
        assert pmf.tau_max == 1
        assert pmf[0] == pytest.approx(0.3)
        assert pmf[1] == pytest.approx(0.7)

    def test_rebinned_identity(self):
        pmf = Pmf([0.4, 0.6])
        assert pmf.rebinned(1) is pmf

    def test_rebinned_bad_factor(self):
        with pytest.raises(DistributionError):
            Pmf([1.0]).rebinned(0)

    def test_mixture(self):
        a = Pmf([1.0, 0.0])
        b = Pmf([0.0, 1.0])
        mix = a.mixed_with(b, 0.25)
        assert mix[0] == pytest.approx(0.75)
        assert mix[1] == pytest.approx(0.25)

    def test_mixture_weight_validation(self):
        with pytest.raises(DistributionError):
            Pmf([1.0]).mixed_with(Pmf([1.0]), 1.5)

    def test_mixture_pads_supports(self):
        a = Pmf([1.0])
        b = Pmf([0.0, 0.0, 1.0])
        mix = a.mixed_with(b, 0.5)
        assert mix.tau_max == 2
        assert mix[0] == pytest.approx(0.5)
        assert mix[2] == pytest.approx(0.5)


class TestKlDivergence:
    def test_identical_is_zero(self):
        pmf = Pmf([0.3, 0.7])
        assert kl_divergence(pmf, pmf) == pytest.approx(0.0)

    def test_known_value(self):
        p = Pmf([0.5, 0.5])
        q = Pmf([0.25, 0.75])
        expected = 0.5 * math.log(0.5 / 0.25) + 0.5 * math.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_infinite_when_support_escapes(self):
        p = Pmf([0.5, 0.5])
        q = Pmf([1.0, 0.0], normalize=True)
        assert kl_divergence(p, q) == math.inf

    def test_zero_p_bins_ignored(self):
        p = Pmf([1.0, 0.0], normalize=True)
        q = Pmf([0.5, 0.5])
        assert math.isfinite(kl_divergence(p, q))

    def test_mismatched_sizes_padded(self):
        p = Pmf([1.0])
        q = Pmf([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(math.log(2.0))

    @settings(max_examples=60)
    @given(pmf_vectors(max_size=20), pmf_vectors(max_size=20))
    def test_non_negative(self, raw_p, raw_q):
        p = Pmf(raw_p, normalize=True)
        q = Pmf(raw_q, normalize=True)
        assert kl_divergence(p, q) >= -1e-9

    @settings(max_examples=60)
    @given(pmf_vectors(max_size=20))
    def test_self_divergence_zero(self, raw):
        p = Pmf(raw, normalize=True)
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)


class TestDunder:
    def test_len_and_getitem(self):
        pmf = Pmf([0.25, 0.75])
        assert len(pmf) == 2
        assert pmf[1] == pytest.approx(0.75)

    def test_equality(self):
        assert Pmf([0.5, 0.5]) == Pmf([0.5, 0.5])
        assert Pmf([0.5, 0.5]) != Pmf([0.4, 0.6])
        assert Pmf([0.5, 0.5]).__eq__(42) is NotImplemented

    def test_mean_var(self):
        pmf = Pmf([0.5, 0.0, 0.5])
        assert pmf.mean() == pytest.approx(1.0)
        assert pmf.var() == pytest.approx(1.0)
