"""Durability battery: graceful shutdown, retry-safe clients, crash smoke.

The journal's crash-point sweeps live in ``tests/test_journal.py``; this
file covers the operational surface around it — the real ``rush serve``
subprocess under SIGTERM, the HTTP idempotency contract through a live
daemon, and the client's transport-failure hardening (connection
refused, mid-body EOF, the never-retry rule for ``/tick``).
"""

from __future__ import annotations

import asyncio
import signal
import socket
from contextlib import asynccontextmanager

import pytest

from repro.service import (ServiceClient, ServiceConfig, ServiceDaemon,
                           ServiceEngine, ServiceUnavailableError,
                           open_journal)
from repro.service.smoke import (_crash_payload, _spawn_server,
                                 _wait_for_banner, run_crash_smoke)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _config(**kw) -> ServiceConfig:
    base = dict(capacity=3, policy="fifo", seed=0)
    base.update(kw)
    return ServiceConfig(**base)


def _free_port() -> int:
    """A port that was just free — used to provoke connection refused."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# Satellite 1: SIGTERM drains and flushes, exercised on a real subprocess.
# ---------------------------------------------------------------------------


def test_sigterm_drains_flushes_and_recovers(tmp_path):
    journal_dir = str(tmp_path / "wal")
    proc = _spawn_server(journal_dir)
    try:
        port = _wait_for_banner(proc)

        async def submit_some():
            client = ServiceClient("127.0.0.1", port, retries=2)
            ids = []
            for index in range(3):
                status = await client.submit(
                    _crash_payload(index), idempotency_key=f"sig-{index}")
                ids.append(str(status["job_id"]))
            await client.tick(2)
            return ids

        job_ids = asyncio.run(submit_some())
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        proc.wait(timeout=30)
        raise

    assert proc.returncode == 0, out
    assert "stopped: drained and journal flushed" in out

    # Everything acked before SIGTERM survives a cold restart.
    engine, writer = open_journal(journal_dir)
    try:
        recovered = {str(job["job_id"]) for job in engine.list_jobs()}
        assert set(job_ids) <= recovered
        assert engine.slot == 2
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Satellite 2: client hardening — typed unavailability, retry discipline.
# ---------------------------------------------------------------------------


def test_connection_refused_raises_typed_error_with_attempts():
    async def scenario():
        client = ServiceClient("127.0.0.1", _free_port(), retries=2,
                               backoff_base=0.001)
        with pytest.raises(ServiceUnavailableError) as err:
            await client.healthz()
        return err.value

    error = asyncio.run(scenario())
    assert error.attempts == 3  # retries + 1
    assert "3 attempts" in str(error)


def test_tick_is_never_retried():
    async def scenario():
        client = ServiceClient("127.0.0.1", _free_port(), retries=5,
                               backoff_base=0.001)
        with pytest.raises(ServiceUnavailableError) as err:
            await client.tick(1)
        return err.value

    assert asyncio.run(scenario()).attempts == 1


def test_mid_body_eof_is_retried_until_a_full_response():
    """First response dies mid-body; the keyed retry gets the real one."""
    hits = {"count": 0}
    body = b'{"ok": true}'

    async def flaky(reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        await reader.readuntil(b"\r\n\r\n")
        hits["count"] += 1
        if hits["count"] == 1:
            # Advertise the full body, send half, hang up.
            writer.write(b"HTTP/1.1 200 OK\r\nContent-Type: application/json"
                         b"\r\nContent-Length: %d\r\n\r\n" % len(body))
            writer.write(body[: len(body) // 2])
        else:
            writer.write(b"HTTP/1.1 200 OK\r\nContent-Type: application/json"
                         b"\r\nContent-Length: %d\r\n\r\n" % len(body) + body)
        await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(flaky, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = ServiceClient("127.0.0.1", port, retries=2,
                                   backoff_base=0.001)
            return await client.request_json("GET", "/healthz")
        finally:
            server.close()
            await server.wait_closed()

    assert asyncio.run(scenario()) == {"ok": True}
    assert hits["count"] == 2  # one truncated attempt + one clean retry


def test_mid_body_eof_without_retries_is_typed():
    async def dead(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter) -> None:
        await reader.readuntil(b"\r\n\r\n")
        writer.write(b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\n{")
        await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(dead, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = ServiceClient("127.0.0.1", port)
            with pytest.raises(ServiceUnavailableError) as err:
                await client.healthz()
            return err.value
        finally:
            server.close()
            await server.wait_closed()

    error = asyncio.run(scenario())
    assert error.attempts == 1
    assert "truncated body" in str(error)


# ---------------------------------------------------------------------------
# Idempotency keys over the wire: dedup through a live daemon.
# ---------------------------------------------------------------------------


@asynccontextmanager
async def serving(config=None):
    engine = ServiceEngine(config or _config())
    daemon = ServiceDaemon(engine)
    await daemon.start()
    try:
        yield ServiceClient("127.0.0.1", daemon.port)
    finally:
        await daemon.stop()


def test_http_resubmit_with_same_key_deduplicates():
    async def scenario():
        async with serving() as client:
            first = await client.submit(_crash_payload(0),
                                        idempotency_key="dup-1")
            again = await client.submit(_crash_payload(0),
                                        idempotency_key="dup-1")
            jobs = await client.jobs()
            return first, again, jobs

    first, again, jobs = asyncio.run(scenario())
    assert not first.get("deduplicated")
    assert again["deduplicated"] is True
    assert again["job_id"] == first["job_id"]
    assert len(jobs) == 1


def test_auto_keys_are_distinct_across_submits():
    """A retries-enabled client must never dedup two *different* submits."""

    async def scenario():
        async with serving() as raw:
            client = ServiceClient(raw.host, raw.port, retries=2)
            one = await client.submit(_crash_payload(0))
            two = await client.submit(_crash_payload(1))
            return one, two, await client.jobs()

    one, two, jobs = asyncio.run(scenario())
    assert one["job_id"] != two["job_id"]
    assert len(jobs) == 2


def test_blank_idempotency_key_is_rejected():
    async def scenario():
        from repro.service import ServiceRequestError

        async with serving() as client:
            with pytest.raises(ServiceRequestError) as err:
                await client.submit(_crash_payload(0), idempotency_key="")
            return err.value

    error = asyncio.run(scenario())
    assert error.status == 400


# ---------------------------------------------------------------------------
# Satellite 5 (in-repo half): the full crash-smoke battery.
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_crash_smoke_battery(tmp_path):
    report = run_crash_smoke(str(tmp_path / "smoke-wal"), jobs=4, seed=7)
    assert report["recovered_jobs"] == 4
    assert report["deduplicated"] == 4
    assert report["graceful_exit"] == 0
