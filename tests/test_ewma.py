"""Tests for the exponentially-weighted Gaussian estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import EwmaGaussianEstimator, GaussianEstimator


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator(alpha=0.0)
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator(alpha=1.5)

    def test_bad_priors(self):
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator(prior_mean=-1)
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator(prior_std=-1)
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator(min_std_fraction=-0.1)

    def test_no_information_raises(self):
        with pytest.raises(EstimationError):
            EwmaGaussianEstimator().estimate(1)


class TestMoments:
    def test_prior_used_before_samples(self):
        de = EwmaGaussianEstimator(prior_mean=50.0, prior_std=5.0)
        mean, std = de.task_moments()
        assert mean == 50.0 and std == 5.0

    def test_single_sample_sets_mean(self):
        de = EwmaGaussianEstimator(alpha=0.2)
        de.observe(30.0)
        mean, std = de.task_moments()
        assert mean == 30.0
        assert std >= 0.05 * 30.0  # the min-std floor

    def test_stationary_convergence(self):
        rng = np.random.default_rng(0)
        de = EwmaGaussianEstimator(alpha=0.05)
        de.observe_many(rng.normal(60, 10, size=500).clip(min=1.0))
        mean, std = de.task_moments()
        assert mean == pytest.approx(60.0, rel=0.1)
        assert std == pytest.approx(10.0, rel=0.4)

    def test_alpha_one_tracks_last_sample(self):
        de = EwmaGaussianEstimator(alpha=1.0)
        de.observe_many([10.0, 50.0])
        mean, _ = de.task_moments()
        assert mean == 50.0


class TestDriftTracking:
    def test_tracks_regime_change_better_than_plain_gaussian(self):
        """After a runtime regime shift, the EWMA mean is closer to the
        new regime than the all-history Gaussian mean."""
        rng = np.random.default_rng(1)
        old = rng.normal(30, 5, size=200).clip(min=1.0)
        new = rng.normal(90, 5, size=60).clip(min=1.0)

        ewma = EwmaGaussianEstimator(alpha=0.1)
        plain = GaussianEstimator(min_samples=2)
        for sample in np.concatenate([old, new]):
            ewma.observe(float(sample))
            plain.observe(float(sample))

        ewma_mean, _ = ewma.task_moments()
        plain_mean, _ = plain.task_moments()
        assert abs(ewma_mean - 90.0) < abs(plain_mean - 90.0)
        assert ewma_mean > 75.0

    def test_demand_scales_with_pending(self):
        de = EwmaGaussianEstimator(alpha=0.2)
        de.observe_many([10.0, 12.0, 11.0])
        small = de.estimate(5)
        large = de.estimate(50)
        assert large.mean_demand() == pytest.approx(
            10 * small.mean_demand(), rel=0.05)

    def test_zero_pending(self):
        de = EwmaGaussianEstimator(prior_mean=10.0)
        assert de.estimate(0).mean_demand() == 0.0
