"""Tests for the Experiment runner."""

from __future__ import annotations

import pytest

from repro import Experiment, FifoScheduler, RushScheduler
from repro.errors import ConfigurationError
from repro.workload import WorkloadConfig

SMALL = WorkloadConfig(n_jobs=6, capacity=4, mean_interarrival=120.0,
                       budget_ratio=1.5, size_gb_range=(0.5, 1.0),
                       time_scale=0.25)


@pytest.fixture(scope="module")
def results():
    experiment = Experiment(
        config=SMALL,
        policies={"FIFO": FifoScheduler, "RUSH": RushScheduler},
        seeds=(0, 1))
    return experiment.run()


class TestValidation:
    def test_needs_policies(self):
        with pytest.raises(ConfigurationError):
            Experiment(config=SMALL, policies={}, seeds=(0,)).run()

    def test_needs_seeds(self):
        with pytest.raises(ConfigurationError):
            Experiment(config=SMALL, policies={"FIFO": FifoScheduler},
                       seeds=()).run()

    def test_unknown_policy_query(self, results):
        with pytest.raises(ConfigurationError):
            results.results_for("Quincy")


class TestResults:
    def test_matrix_shape(self, results):
        assert results.policies == ["FIFO", "RUSH"]
        assert results.seeds == [0, 1]
        assert len(results.runs) == 4

    def test_pooled_metrics_sizes(self, results):
        # 6 jobs x 2 seeds, all classes
        assert len(results.utilities("FIFO")) == 12
        lat = results.latencies("FIFO", "critical", "sensitive")
        assert 0 < len(lat) <= 12

    def test_identical_workload_across_policies(self, results):
        fifo = results.results_for("FIFO")
        rush = results.results_for("RUSH")
        assert (sum(r.busy_container_slots for r in fifo)
                == sum(r.busy_container_slots for r in rush))

    def test_summary_table_mentions_all_policies(self, results):
        table = results.summary_table()
        assert "FIFO" in table and "RUSH" in table
        assert "lat q3" in table

    def test_lexicographic_ranking_complete(self, results):
        ranking = results.lexicographic_ranking()
        assert sorted(ranking) == ["FIFO", "RUSH"]
