"""Tests for the WCDE bisection search (Algorithm 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.wcde import solve_wcde, worst_case_demand
from repro.estimation.pmf import Pmf, kl_divergence


def reference_pmfs(max_size: int = 25):
    return st.lists(st.floats(min_value=0.01, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=max_size)


class TestValidation:
    def test_bad_theta(self, gaussian_pmf):
        with pytest.raises(ConfigurationError):
            solve_wcde(gaussian_pmf, 1.2, 0.5)

    def test_bad_delta(self, gaussian_pmf):
        with pytest.raises(ConfigurationError):
            solve_wcde(gaussian_pmf, 0.9, -0.5)
        with pytest.raises(ConfigurationError):
            solve_wcde(gaussian_pmf, 0.9, float("nan"))


class TestAnchors:
    def test_zero_delta_returns_reference_quantile(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 0.9, 0.0)
        assert result.eta_bin == gaussian_pmf.quantile(0.9)
        assert result.eta_bin == result.reference_quantile

    def test_huge_delta_hits_support_max(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 0.9, 1e9)
        assert result.eta_bin == gaussian_pmf.support_max()

    def test_theta_one_hits_support_max(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 1.0, 0.1)
        assert result.eta_bin == gaussian_pmf.support_max()
        assert result.iterations == 0

    def test_impulse_reference_is_fixed_point(self):
        """An impulse has single-point support: no robustness margin exists."""
        pmf = Pmf.impulse(10, tau_max=20)
        result = solve_wcde(pmf, 0.9, 5.0)
        assert result.eta_bin == 10

    def test_eta_never_below_reference_quantile(self, skewed_pmf):
        for delta in (0.0, 0.1, 0.5, 2.0):
            result = solve_wcde(skewed_pmf, 0.9, delta)
            assert result.eta_bin >= result.reference_quantile


class TestMonotonicity:
    def test_monotone_in_delta(self, gaussian_pmf):
        etas = [solve_wcde(gaussian_pmf, 0.9, d).eta_bin
                for d in (0.0, 0.1, 0.3, 0.7, 1.3, 3.0)]
        assert etas == sorted(etas)

    def test_monotone_in_theta(self, gaussian_pmf):
        etas = [solve_wcde(gaussian_pmf, t, 0.7).eta_bin
                for t in (0.1, 0.5, 0.9, 0.99)]
        assert etas == sorted(etas)

    @settings(max_examples=40, deadline=None)
    @given(reference_pmfs(),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=2.0),
           st.floats(min_value=0.0, max_value=2.0))
    def test_monotone_in_delta_property(self, raw, theta, d1, d2):
        pmf = Pmf(raw, normalize=True)
        lo, hi = sorted((d1, d2))
        assert (solve_wcde(pmf, theta, lo).eta_bin
                <= solve_wcde(pmf, theta, hi).eta_bin)


class TestWorstDistribution:
    def test_worst_pmf_within_ball(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 0.9, 0.7)
        assert kl_divergence(result.worst_pmf, gaussian_pmf) <= 0.7 + 1e-6

    def test_worst_pmf_sits_on_the_boundary(self, gaussian_pmf):
        """The adversary's distribution has CDF(eta - 1) exactly theta."""
        theta = 0.9
        result = solve_wcde(gaussian_pmf, theta, 0.7)
        if result.eta_bin > result.reference_quantile:
            assert result.worst_pmf.cdf_at(result.eta_bin - 1) == pytest.approx(
                theta, abs=1e-6)

    def test_worst_kl_reported(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 0.9, 0.7)
        assert result.worst_kl == pytest.approx(
            kl_divergence(result.worst_pmf, gaussian_pmf), abs=1e-9)
        assert result.worst_kl <= 0.7 + 1e-9


class TestBisectionBehaviour:
    def test_iteration_count_logarithmic(self, gaussian_pmf):
        result = solve_wcde(gaussian_pmf, 0.9, 0.7)
        assert result.iterations <= math.ceil(math.log2(len(gaussian_pmf))) + 1

    def test_worst_case_demand_wrapper(self, gaussian_pmf):
        assert worst_case_demand(gaussian_pmf, 0.9, 0.7) == \
            solve_wcde(gaussian_pmf, 0.9, 0.7).eta_bin

    @settings(max_examples=40, deadline=None)
    @given(reference_pmfs(),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=3.0))
    def test_eta_within_support(self, raw, theta, delta):
        pmf = Pmf(raw, normalize=True)
        result = solve_wcde(pmf, theta, delta)
        assert 0 <= result.eta_bin <= pmf.support_max()

    @settings(max_examples=40, deadline=None)
    @given(reference_pmfs(),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.01, max_value=3.0))
    def test_eta_is_maximal(self, raw, theta, delta):
        """The adversary cannot push the quantile past eta."""
        from repro.core.rem import rem_min_kl

        pmf = Pmf(raw, normalize=True)
        result = solve_wcde(pmf, theta, delta)
        if result.eta_bin < pmf.support_max():
            # Pushing the quantile beyond eta needs CDF(eta) < theta, which
            # costs more than the entropy budget.
            assert rem_min_kl(pmf, result.eta_bin, theta) > delta - 1e-9


class TestRobustnessSemantics:
    def test_coverage_improves_with_delta(self):
        """Allocating the robust eta covers a perturbed true distribution.

        Build a reference that underestimates the truth; the plain
        theta-quantile of the reference misses the true quantile, while a
        sufficiently robust eta covers it — the scenario of Figure 3.
        """
        reference = Pmf.from_gaussian(90.0, 10.0, tau_max=220)
        truth = Pmf.from_gaussian(100.0, 15.0, tau_max=220)
        theta = 0.9
        true_quantile = truth.quantile(theta)
        naive = reference.quantile(theta)
        assert naive < true_quantile  # the naive allocation under-covers
        divergence = kl_divergence(truth, reference)
        robust = solve_wcde(reference, theta, divergence + 0.05).eta_bin
        assert robust >= true_quantile
