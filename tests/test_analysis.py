"""Tests for the analysis toolkit (boxplots, CDFs, tables)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.analysis import (
    boxplot_stats,
    ecdf,
    ecdf_at,
    format_boxplots,
    format_cdf_table,
    format_number,
    format_table,
    summarize,
)

samples = st.lists(st.floats(min_value=-1e4, max_value=1e4,
                             allow_nan=False), min_size=1, max_size=50)


class TestBoxplotStats:
    def test_simple(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q1 == 2 and stats.q3 == 4
        assert stats.whisker_low == 1 and stats.whisker_high == 5
        assert stats.outliers == ()
        assert stats.iqr == 2

    def test_outlier_detection(self):
        stats = boxplot_stats([1, 2, 3, 4, 5, 100])
        assert 100 in stats.outliers
        assert stats.whisker_high <= 5

    def test_nan_filtered(self):
        stats = boxplot_stats([1.0, float("nan"), 3.0])
        assert stats.n == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            boxplot_stats([])

    @settings(max_examples=50)
    @given(samples)
    def test_ordering_invariants(self, values):
        stats = boxplot_stats(values)
        assert (stats.whisker_low <= stats.q1 <= stats.median
                <= stats.q3 <= stats.whisker_high)
        assert stats.n == len(values)


class TestEcdf:
    def test_values_and_fractions(self):
        xs, fs = ecdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(fs) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_ecdf_at(self):
        values = [1, 2, 3, 4]
        assert ecdf_at(values, 0) == 0.0
        assert ecdf_at(values, 2) == 0.5
        assert ecdf_at(values, 10) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ecdf([])
        with pytest.raises(ConfigurationError):
            ecdf_at([], 0.0)

    @settings(max_examples=50)
    @given(samples, st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_monotone(self, values, x):
        assert ecdf_at(values, x) <= ecdf_at(values, x + 1.0) + 1e-12


class TestSummarize:
    def test_five_numbers(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5
        assert s.median == 3 and s.mean == 3
        assert s.n == 5

    def test_single_value_std_zero(self):
        assert summarize([7.0]).std == 0.0


class TestFormatting:
    def test_format_number(self):
        assert format_number(1.234, 2) == "1.23"
        assert format_number(float("nan")) == "-"
        assert format_number(float("inf")) == "inf"
        assert format_number(-float("inf")) == "-inf"
        assert format_number(7) == "7"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_format_boxplots(self):
        stats = {"RUSH": boxplot_stats([1, 2, 3]),
                 "FIFO": boxplot_stats([4, 5, 6])}
        text = format_boxplots(stats)
        assert "RUSH" in text and "FIFO" in text
        assert "median" in text

    def test_format_cdf_table(self):
        text = format_cdf_table({"a": [1, 2, 3], "b": [2, 3, 4]}, grid=[2, 4])
        lines = text.splitlines()
        assert lines[0].split() == ["x", "a", "b"]
        assert "0.67" in text  # P(a <= 2)
