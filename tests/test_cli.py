"""Tests for the `rush` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workload import load_trace


def run_cli(*argv):
    return main(list(argv))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--trace", "x", "--policy", "quincy"])


class TestGenerate:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = run_cli("generate", "--out", str(out), "--jobs", "5",
                       "--capacity", "4", "--time-scale", "0.25",
                       "--interarrival", "100")
        assert code == 0
        assert "wrote 5 jobs" in capsys.readouterr().out
        specs = load_trace(out)
        assert len(specs) == 5

    def test_failure_prob_propagates(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        run_cli("generate", "--out", str(out), "--jobs", "3",
                "--time-scale", "0.25", "--failure-prob", "0.1")
        assert all(s.failure_prob == 0.1 for s in load_trace(out))

    def test_bad_config_is_reported(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = run_cli("generate", "--out", str(out), "--jobs", "0")
        assert code == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture
def small_trace(tmp_path):
    out = tmp_path / "trace.jsonl"
    run_cli("generate", "--out", str(out), "--jobs", "5", "--capacity", "4",
            "--time-scale", "0.25", "--interarrival", "150", "--seed", "3")
    return out


class TestSimulate:
    @pytest.mark.parametrize("policy", ["fifo", "edf", "fair", "capacity",
                                        "rrh", "rush"])
    def test_each_policy_runs(self, small_trace, capsys, policy):
        code = run_cli("simulate", "--trace", str(small_trace),
                       "--capacity", "4", "--policy", policy)
        assert code == 0
        out = capsys.readouterr().out
        assert "completed=5/5" in out

    def test_profile_prints_planner_costs(self, small_trace, capsys):
        code = run_cli("simulate", "--trace", str(small_trace),
                       "--capacity", "4", "--policy", "rush", "--profile")
        assert code == 0
        out = capsys.readouterr().out
        assert "planner profile:" in out
        assert "WCDE memo:" in out
        assert "onion peeling" in out

    def test_profile_with_non_planning_policy_is_graceful(self, small_trace,
                                                          capsys):
        code = run_cli("simulate", "--trace", str(small_trace),
                       "--capacity", "4", "--policy", "fifo", "--profile")
        assert code == 0
        assert "nothing to report" in capsys.readouterr().out

    def test_missing_trace_reports_error(self, tmp_path, capsys):
        with pytest.raises(FileNotFoundError):
            run_cli("simulate", "--trace", str(tmp_path / "nope.jsonl"))


class TestCompare:
    def test_summary_and_ranking(self, capsys):
        code = run_cli("compare", "--jobs", "5", "--capacity", "4",
                       "--seeds", "0", "--policies", "fifo", "rush")
        assert code == 0
        out = capsys.readouterr().out
        assert "FIFO" in out and "RUSH" in out
        assert "lexicographic max-min ranking" in out


class TestPlan:
    def test_prints_status_table(self, small_trace, capsys):
        code = run_cli("plan", "--trace", str(small_trace),
                       "--capacity", "4")
        assert code == 0
        out = capsys.readouterr().out
        assert "RUSH scheduler status" in out
        assert "job-0000" in out

    def test_writes_html(self, small_trace, tmp_path, capsys):
        page = tmp_path / "status.html"
        code = run_cli("plan", "--trace", str(small_trace),
                       "--capacity", "4", "--html", str(page))
        assert code == 0
        assert page.read_text().startswith("<!DOCTYPE html>")
