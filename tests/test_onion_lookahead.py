"""Tests for the floor-level sacrifice lookahead (and its greedy fallback)."""

from __future__ import annotations

import pytest

from repro.core.onion import OnionJob, solve_onion
from repro.core.tas_lp import solve_tas_lp
from repro.cluster.metrics import lexicographic_compare
from repro.utility import LinearUtility

#: The instance from the brute-force counterexample: total demand 18 on
#: C = 2 means one of j0/j1 must be sacrificed; sacrificing j0 lets j1
#: reach utility 0.88, sacrificing j1 leaves j0 at only 0.26.
COUNTEREXAMPLE = [
    OnionJob("j0", 7.0, LinearUtility(5.0, 0.0, beta=0.263)),
    OnionJob("j1", 4.0, LinearUtility(6.0, 0.0, beta=0.220)),
    OnionJob("j2", 7.0, LinearUtility(8.0, 3.0, beta=0.111)),
]


class TestSacrificeLookahead:
    def test_lookahead_picks_the_better_sacrifice(self):
        result = solve_onion(COUNTEREXAMPLE, 2, tolerance=1e-4, horizon=12)
        assert not result.targets["j0"].achievable  # j0 is sacrificed
        assert result.targets["j1"].utility_value == pytest.approx(0.88, abs=0.05)

    def test_greedy_mode_reproduces_papers_rule(self):
        """lookahead=0 restores the (suboptimal here) greedy behaviour."""
        result = solve_onion(COUNTEREXAMPLE, 2, tolerance=1e-4, horizon=12,
                             lookahead=0)
        assert not result.targets["j1"].achievable  # greedy sacrifices j1

    def test_lookahead_never_worse_than_greedy(self):
        smart = solve_onion(COUNTEREXAMPLE, 2, tolerance=1e-4, horizon=12)
        greedy = solve_onion(COUNTEREXAMPLE, 2, tolerance=1e-4, horizon=12,
                             lookahead=0)
        assert lexicographic_compare(smart.utility_vector(),
                                     greedy.utility_vector()) >= 0

    def test_lp_solver_agrees_with_lookahead(self):
        onion = solve_onion(COUNTEREXAMPLE, 2, tolerance=1e-3, horizon=12)
        lp = solve_tas_lp(COUNTEREXAMPLE, 2, tolerance=1e-3, horizon=12)
        for job_id in ("j0", "j1", "j2"):
            assert (lp.targets[job_id].utility_value
                    == pytest.approx(onion.targets[job_id].utility_value,
                                     abs=0.05))

    def test_interior_levels_unaffected_by_lookahead(self):
        """When nobody is sacrificed, lookahead changes nothing."""
        jobs = [
            OnionJob("a", 6.0, LinearUtility(20.0, 1.0, beta=0.2)),
            OnionJob("b", 6.0, LinearUtility(25.0, 1.0, beta=0.2)),
        ]
        smart = solve_onion(jobs, 2, tolerance=1e-4, horizon=30)
        greedy = solve_onion(jobs, 2, tolerance=1e-4, horizon=30, lookahead=0)
        for job_id in ("a", "b"):
            assert (smart.targets[job_id].target_completion
                    == greedy.targets[job_id].target_completion)
